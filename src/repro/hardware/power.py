"""Network-level power estimation at iso-throughput (Fig. 5).

The paper compares the MAC power of three deployments of each network at
the *same* inference throughput:

* unquantized (fp32 everywhere),
* partially quantized (``fp-4b-fp`` / ``fp-2b-fp``: full-precision first
  and last layers, uniform low precision in between),
* fully quantized mixed precision (CCQ's output, with moderate first/last
  bits such as 6/2, 6/6 or 8/3).

At iso-throughput the power of a layer is (MACs per inference) x
(energy per MAC at its precision) x (inferences per second), so the
full-precision edges dominate whenever they exist — the paper measures
4–56x more power in the fp first/last pair than in the entire quantized
remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..nn.modules import Module
from .designware import NODE_32NM, TechnologyNode, mac_energy_pj
from .mac import LayerMACs, trace_layer_macs

__all__ = ["LayerPower", "PowerReport", "network_power", "power_of_config"]


@dataclass(frozen=True)
class LayerPower:
    """Power draw of one layer at the configured precision."""

    name: str
    macs: int
    w_bits: Optional[int]
    a_bits: Optional[int]
    power_watts: float


@dataclass(frozen=True)
class PowerReport:
    """Whole-network power breakdown at iso-throughput."""

    layers: Tuple[LayerPower, ...]
    fps: float
    node: str

    @property
    def total_watts(self) -> float:
        return sum(layer.power_watts for layer in self.layers)

    @property
    def edge_watts(self) -> float:
        """Power of the first + last layers."""
        if len(self.layers) < 2:
            return self.total_watts
        return self.layers[0].power_watts + self.layers[-1].power_watts

    @property
    def middle_watts(self) -> float:
        """Power of everything except the first and last layers."""
        return self.total_watts - self.edge_watts

    @property
    def edge_to_middle_ratio(self) -> float:
        """The paper's 4–56x statistic: fp edges vs quantized middle."""
        middle = self.middle_watts
        return self.edge_watts / middle if middle > 0 else float("inf")

    def by_layer(self) -> Dict[str, LayerPower]:
        return {layer.name: layer for layer in self.layers}

    def record(self, telemetry: object, step: Optional[int] = None) -> None:
        """Push this report into a telemetry handle as gauges.

        ``telemetry`` is a :class:`repro.telemetry.Telemetry` (duck
        typed so the hardware model stays importable without it).
        Writes ``power.total_watts`` / ``power.edge_watts`` /
        ``power.middle_watts`` plus one labeled ``power.layer_watts``
        gauge per layer, and — when ``step`` is given — a
        ``power_sample`` event so the per-step energy trajectory can be
        reconstructed from ``events.jsonl``.
        """
        if not getattr(telemetry, "enabled", False):
            return
        telemetry.gauge("power.total_watts").set(self.total_watts)
        telemetry.gauge("power.edge_watts").set(self.edge_watts)
        telemetry.gauge("power.middle_watts").set(self.middle_watts)
        for layer in self.layers:
            telemetry.gauge("power.layer_watts", layer=layer.name).set(
                layer.power_watts
            )
        if step is not None:
            telemetry.event(
                "power_sample",
                step=step,
                total_watts=self.total_watts,
                edge_watts=self.edge_watts,
                middle_watts=self.middle_watts,
                fps=self.fps,
                node=self.node,
            )


def _layer_power(
    entry: LayerMACs,
    w_bits: Optional[int],
    a_bits: Optional[int],
    fps: float,
    node: TechnologyNode,
) -> LayerPower:
    energy_pj = mac_energy_pj(w_bits, a_bits, node=node)
    watts = entry.macs * energy_pj * 1e-12 * fps
    return LayerPower(
        name=entry.name,
        macs=entry.macs,
        w_bits=w_bits,
        a_bits=a_bits,
        power_watts=watts,
    )


def network_power(
    model: Module,
    input_shape: Tuple[int, int, int],
    fps: float = 30.0,
    node: TechnologyNode = NODE_32NM,
) -> PowerReport:
    """Power of ``model`` at its *current* bit configuration."""
    entries = trace_layer_macs(model, input_shape)
    layers = tuple(
        _layer_power(e, e.w_bits, e.a_bits, fps, node) for e in entries
    )
    return PowerReport(layers=layers, fps=fps, node=node.name)


def power_of_config(
    model: Module,
    input_shape: Tuple[int, int, int],
    bit_config: Sequence[Tuple[Optional[int], Optional[int]]],
    fps: float = 30.0,
    node: TechnologyNode = NODE_32NM,
) -> PowerReport:
    """Power of ``model`` under a hypothetical per-layer bit assignment.

    ``bit_config`` lists ``(w_bits, a_bits)`` in layer traversal order
    (``None`` = fp32), letting Fig. 5 evaluate fp-4b-fp / fp-2b-fp /
    fully-quantized variants without touching the model's actual state.
    """
    entries = trace_layer_macs(model, input_shape)
    if len(bit_config) != len(entries):
        raise ValueError(
            f"bit_config has {len(bit_config)} entries for "
            f"{len(entries)} compute layers"
        )
    layers = tuple(
        _layer_power(e, w, a, fps, node)
        for e, (w, a) in zip(entries, bit_config)
    )
    return PowerReport(layers=layers, fps=fps, node=node.name)
