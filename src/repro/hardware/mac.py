"""Per-layer MAC counting via shape tracing.

Counting multiply-accumulates needs each layer's *input* spatial size,
which depends on the whole network topology (strides, pooling, shortcut
paths).  Rather than re-deriving shapes analytically, we run one dummy
forward pass with instrumented layers and record the observed shapes —
robust to any composition of modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..nn import no_grad
from ..nn.functional import conv_output_size
from ..nn.modules import Conv2d, Linear, Module
from ..nn.tensor import Tensor
from ..quantization.qmodules import QuantConv2d, QuantLinear

__all__ = ["LayerMACs", "trace_layer_macs"]


@dataclass(frozen=True)
class LayerMACs:
    """MAC count and current precision of one compute layer."""

    name: str
    macs: int
    w_bits: "int | None"
    a_bits: "int | None"
    n_params: int


def _conv_macs(layer: "Conv2d | QuantConv2d", in_shape: Tuple[int, ...]) -> int:
    _, c_in, h, w = in_shape
    k = layer.kernel_size
    oh = conv_output_size(h, k, layer.stride, layer.padding)
    ow = conv_output_size(w, k, layer.stride, layer.padding)
    return oh * ow * k * k * c_in * layer.out_channels


def _linear_macs(layer: "Linear | QuantLinear") -> int:
    return layer.in_features * layer.out_features


def trace_layer_macs(
    model: Module, input_shape: Tuple[int, int, int]
) -> List[LayerMACs]:
    """MACs per inference for every conv/linear layer of ``model``.

    ``input_shape`` is ``(C, H, W)`` of a single sample.  The model is run
    once on a zero batch with per-instance forward wrappers that record
    input shapes; wrappers are removed afterwards.
    """
    records: Dict[int, Tuple[str, Module, Tuple[int, ...]]] = {}
    patched: List[Tuple[Module, object]] = []

    def instrument(name: str, layer: Module) -> None:
        original = layer.forward

        def wrapper(x: Tensor, _name=name, _layer=layer, _orig=original):
            records[id(_layer)] = (_name, _layer, x.shape)
            return _orig(x)

        object.__setattr__(layer, "forward", wrapper)
        patched.append((layer, original))

    for name, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear, QuantConv2d, QuantLinear)):
            instrument(name, module)

    try:
        dummy = Tensor(np.zeros((1, *input_shape)))
        was_training = model.training
        model.eval()
        with no_grad():
            model(dummy)
        if was_training:
            model.train()
    finally:
        for layer, original in patched:
            object.__setattr__(layer, "forward", original)

    results: List[LayerMACs] = []
    for name, module in model.named_modules():
        entry = records.get(id(module))
        if entry is None:
            continue
        _, layer, in_shape = entry
        if isinstance(layer, (Conv2d, QuantConv2d)):
            macs = _conv_macs(layer, in_shape)
        else:
            macs = _linear_macs(layer)
        w_bits = getattr(layer, "w_bits", None)
        a_bits = getattr(layer, "a_bits", None)
        results.append(
            LayerMACs(
                name=name,
                macs=macs,
                w_bits=w_bits,
                a_bits=a_bits,
                n_params=layer.weight.size,
            )
        )
    return results
