"""Energy characterization of MAC units vs. operand bit width.

The paper synthesized a DesignWare MAC at the 32nm node and measured power
at iso-throughput (Section IV-h).  Without the proprietary library, we use
the standard analytic energy model behind HAQ/Eyeriss-style estimators,
anchored to published per-operation energy measurements (Horowitz, ISSCC
2014, 45nm integer/float ops) and scaled to 32nm:

* an integer array multiplier's switched capacitance grows with the
  partial-product count, i.e. ``E_mult ∝ w_bits * a_bits``;
* the accumulator is a ripple/carry-lookahead adder whose energy grows
  linearly with the accumulator width ``w_bits + a_bits + guard``;
* a full-precision (fp32) MAC pays a fixed, much higher cost (mantissa
  multiplier + exponent logic + normalization).

The anchors reproduce the published ratios (int32/int8 multiply = 16x,
fp32 MAC / int8 MAC = 20x), which is the relative structure Fig. 5's
conclusion rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TechnologyNode", "NODE_32NM", "NODE_32NM_SYNTH", "NODE_45NM", "mac_energy_pj"]


@dataclass(frozen=True)
class TechnologyNode:
    """Anchored energy coefficients for one process node."""

    name: str
    # E_mult = mult_coeff * w_bits * a_bits   [pJ]
    mult_coeff: float
    # E_add  = add_coeff * acc_width          [pJ]
    add_coeff: float
    # register/clocking overhead per MAC      [pJ]
    overhead: float
    # fp32 MAC energy (multiplier + adder + normalize) [pJ]
    fp32_mac: float
    # accumulator guard bits (log2 of the reduction length)
    guard_bits: int = 10


# 45nm anchors from Horowitz ISSCC 2014:
#   int8 mult 0.2pJ  -> coeff = 0.2 / 64 ≈ 0.0031
#   int32 add 0.1pJ  -> coeff = 0.1 / 32 ≈ 0.0031
#   fp32 mult 3.7pJ + fp32 add 0.9pJ ≈ 4.6pJ per MAC
NODE_45NM = TechnologyNode(
    name="45nm",
    mult_coeff=0.0031,
    add_coeff=0.0031,
    overhead=0.01,
    fp32_mac=4.6,
)

# 32nm: ~0.65x capacitance/energy scaling from 45nm (classic Dennard-ish
# scaling for one full node step).
_SCALE_32 = 0.65
NODE_32NM = TechnologyNode(
    name="32nm",
    mult_coeff=NODE_45NM.mult_coeff * _SCALE_32,
    add_coeff=NODE_45NM.add_coeff * _SCALE_32,
    overhead=NODE_45NM.overhead * _SCALE_32,
    fp32_mac=NODE_45NM.fp32_mac * _SCALE_32,
)

# Standalone-synthesis calibration (the Fig. 5 setting).  The paper
# synthesized an isolated DesignWare MAC: a standalone pipelined fp32 unit
# pays registers, normalization and clocking on every cycle, costing far
# more than the datapath-optimal 4.6pJ anchor.  Modelling power as
# proportional to switched gate count — an fp32 MAC is ~25k gate
# equivalents vs ~(5 * w * a + acc_width) for a small integer MAC — puts
# the fp32 unit near 28pJ at 45nm.  This node reproduces the paper's
# observed 4–56x edge-vs-middle power band; NODE_32NM keeps the
# conservative datapath anchor for users who prefer it.
NODE_32NM_SYNTH = TechnologyNode(
    name="32nm-synth",
    mult_coeff=NODE_45NM.mult_coeff * _SCALE_32,
    add_coeff=NODE_45NM.add_coeff * _SCALE_32,
    overhead=NODE_45NM.overhead * _SCALE_32,
    fp32_mac=28.0 * _SCALE_32,
)


def mac_energy_pj(
    w_bits: Optional[int],
    a_bits: Optional[int],
    node: TechnologyNode = NODE_32NM,
) -> float:
    """Energy of one multiply-accumulate at the given operand widths (pJ).

    ``None`` for either operand selects the full-precision fp32 MAC, which
    is how unquantized first/last layers are modelled.
    """
    if w_bits is None or a_bits is None:
        return node.fp32_mac
    if w_bits < 1 or a_bits < 1:
        raise ValueError(f"bit widths must be >= 1, got {w_bits}/{a_bits}")
    if w_bits >= 32 and a_bits >= 32:
        return node.fp32_mac
    acc_width = w_bits + a_bits + node.guard_bits
    return (
        node.mult_coeff * w_bits * a_bits
        + node.add_coeff * acc_width
        + node.overhead
    )
