"""``repro.hardware`` — bit-width-aware MAC energy/power modelling (Fig. 5).

Replaces the paper's DesignWare 32nm RTL synthesis with an analytic MAC
energy model anchored to published per-op energy measurements; see
DESIGN.md for the substitution rationale.
"""

from .designware import NODE_32NM, NODE_32NM_SYNTH, NODE_45NM, TechnologyNode, mac_energy_pj
from .mac import LayerMACs, trace_layer_macs
from .power import LayerPower, PowerReport, network_power, power_of_config

__all__ = [
    "TechnologyNode",
    "NODE_32NM",
    "NODE_32NM_SYNTH",
    "NODE_45NM",
    "mac_energy_pj",
    "LayerMACs",
    "trace_layer_macs",
    "LayerPower",
    "PowerReport",
    "network_power",
    "power_of_config",
]
