"""Live monitoring of an in-progress run: ``repro watch``.

A CCQ run continuously appends to ``events.jsonl`` and atomically
rewrites ``metrics.json`` once per step, so an *observer process* can
reconstruct the live state of a run it does not own purely from the
filesystem — no sockets, no shared memory, no cooperation from the run
beyond ``--telemetry-dir``.

:class:`RunMonitor` is that observer: an incremental tailer that keeps
a byte offset into ``events.jsonl`` (tolerating torn final lines — a
partial line stays buffered until its newline arrives), folds each
event into a :class:`MonitorState`, and refreshes gauges/counters from
the latest ``metrics.json``.  On top of it sit

* :func:`watch` — the terminal loop behind ``repro watch <run-dir>``,
  re-rendering a one-screen panel (step, stage, accuracy/compression,
  bit map, expert weights, divergence/retry/pool-health counters);
* :func:`serve_metrics` — an opt-in stdlib-only HTTP endpoint serving
  the current snapshot in Prometheus text format (``/metrics``) and as
  JSON (``/state``), for scraping a long run from elsewhere.

Everything here is read-only with respect to the run directory and
uses no RNG: watching a run can never perturb it.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from .core import EVENTS_FILE, METRICS_FILE
from .metrics import prometheus_text

__all__ = ["MonitorState", "RunMonitor", "watch", "serve_metrics"]

# Span names treated as "the run is now in stage X" for the live view.
_STAGE_NAMES = {
    "initialize", "probe", "probe_fanout", "recover", "recover_fanout",
    "eval", "snapshot", "account", "checkpoint",
}


class MonitorState:
    """The live view of a run, folded from its event stream + metrics."""

    def __init__(self) -> None:
        self.events_seen = 0
        self.status = "waiting"  # waiting | running | complete | interrupted
        self.step: Optional[int] = None
        self.stage: Optional[str] = None
        self.last_event_ts: Optional[float] = None
        self.last_step: Dict[str, Any] = {}
        self.last_fanout: Dict[str, Any] = {}
        self.last_warning: Optional[str] = None
        self.accuracy: Optional[float] = None
        self.compression: Optional[float] = None
        self.bit_map: Dict[str, float] = {}
        self.expert_weights: Dict[str, float] = {}
        self.counters: Dict[str, float] = {}
        self.pool_workers: Optional[float] = None
        self.recover_active_shards: Optional[float] = None
        self.recover_allreduce_round: Optional[float] = None

    # -- event folding --------------------------------------------------

    def observe(self, event: Dict[str, Any]) -> None:
        self.events_seen += 1
        ts = event.get("ts")
        if ts is not None:
            self.last_event_ts = float(ts)
        kind = event.get("type")
        if kind == "span":
            name = event.get("name")
            # Spans are emitted at *exit*: the most recent stage span is
            # the last stage known to have finished, which is the best
            # available proxy for "where the run is".
            if name in _STAGE_NAMES:
                self.stage = name
                if self.status == "waiting":
                    self.status = "running"
            elif name == "run":
                self.status = (
                    "complete" if self.status != "interrupted"
                    else self.status
                )
        elif kind == "event":
            name = event.get("name")
            fields = event.get("fields", {})
            if name == "step_complete":
                self.last_step = dict(fields)
                if fields.get("step") is not None:
                    self.step = int(fields["step"])
                if fields.get("recovered_accuracy") is not None:
                    self.accuracy = float(fields["recovered_accuracy"])
                if fields.get("compression") is not None:
                    self.compression = float(fields["compression"])
                layer = fields.get("layer")
                if layer is not None and fields.get("to_bits") is not None:
                    self.bit_map[str(layer)] = float(fields["to_bits"])
                self.status = "running"
            elif name == "fanout_report":
                self.last_fanout = dict(fields)
            elif name == "run_complete":
                self.status = "complete"
            elif name == "interrupted":
                self.status = "interrupted"
            elif name == "resumed":
                self.status = "running"
                if fields.get("step") is not None:
                    self.step = int(fields["step"])
        elif kind == "log":
            if event.get("level") in ("warning", "error"):
                self.last_warning = str(event.get("msg"))

    # -- metrics folding ------------------------------------------------

    def update_metrics(self, snapshot: Dict[str, Any]) -> None:
        for entry in snapshot.get("gauges", []):
            name = entry.get("name")
            value = entry.get("value")
            labels = entry.get("labels", {})
            if value is None:
                continue
            if name == "hedge.expert_weight" and "expert" in labels:
                self.expert_weights[labels["expert"]] = float(value)
            elif name == "ccq.layer_bits" and "layer" in labels:
                self.bit_map[labels["layer"]] = float(value)
            elif name == "ccq.accuracy":
                self.accuracy = float(value)
            elif name == "ccq.compression":
                self.compression = float(value)
            elif name == "ccq.probe_pool_workers":
                self.pool_workers = float(value)
            elif name == "ccq.recover_active_shards":
                self.recover_active_shards = float(value)
            elif name == "ccq.recover_allreduce_round":
                self.recover_allreduce_round = float(value)
        for entry in snapshot.get("counters", []):
            if entry.get("labels"):
                continue
            self.counters[entry["name"]] = float(entry.get("value", 0.0))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump for the ``/state`` HTTP endpoint."""
        return {
            "status": self.status,
            "step": self.step,
            "stage": self.stage,
            "events_seen": self.events_seen,
            "last_event_ts": self.last_event_ts,
            "accuracy": self.accuracy,
            "compression": self.compression,
            "bit_map": dict(self.bit_map),
            "expert_weights": dict(self.expert_weights),
            "counters": dict(self.counters),
            "pool_workers": self.pool_workers,
            "recover_active_shards": self.recover_active_shards,
            "recover_allreduce_round": self.recover_allreduce_round,
            "last_step": dict(self.last_step),
            "last_fanout": dict(self.last_fanout),
            "last_warning": self.last_warning,
        }


class RunMonitor:
    """Incremental tailer over one run directory.

    ``poll()`` consumes whatever bytes ``events.jsonl`` gained since
    the last call (buffering a torn final line until it completes) and
    re-reads ``metrics.json`` if present; each call is cheap enough for
    a sub-second refresh loop.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.events_path = self.directory / EVENTS_FILE
        self.metrics_path = self.directory / METRICS_FILE
        self.state = MonitorState()
        self._offset = 0
        self._partial = b""
        self.metrics_snapshot: Dict[str, Any] = {}

    def poll(self) -> int:
        """Consume new telemetry; returns the number of new events."""
        consumed = self._poll_events()
        self._poll_metrics()
        return consumed

    def _poll_events(self) -> int:
        try:
            size = self.events_path.stat().st_size
        except OSError:
            return 0
        if size < self._offset:
            # Truncated/replaced (e.g. the directory was reused for a
            # fresh run): start over rather than mis-splice streams.
            self._offset = 0
            self._partial = b""
            self.state = MonitorState()
        if size == self._offset:
            return 0
        try:
            with open(self.events_path, "rb") as f:
                f.seek(self._offset)
                chunk = f.read(size - self._offset)
        except OSError:
            return 0
        self._offset += len(chunk)
        data = self._partial + chunk
        lines = data.split(b"\n")
        # The final piece is complete only if the chunk ended in \n
        # (in which case it is empty anyway).
        self._partial = lines.pop()
        consumed = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue  # a torn line from a crashed writer
            self.state.observe(event)
            consumed += 1
        return consumed

    def _poll_metrics(self) -> None:
        try:
            with open(self.metrics_path, "r", encoding="utf-8") as f:
                snapshot = json.load(f)
        except (OSError, json.JSONDecodeError):
            return  # keep the previous snapshot
        self.metrics_snapshot = snapshot
        self.state.update_metrics(snapshot)

    # -- rendering ------------------------------------------------------

    def render(self, width: int = 78) -> str:
        """The one-screen panel ``repro watch`` redraws."""
        s = self.state
        lines: List[str] = []
        lines.append(f"watching {self.directory}")
        age = ""
        if s.last_event_ts is not None:
            age = f"  (last event {time.time() - s.last_event_ts:.0f}s ago)"
        lines.append(
            f"status: {s.status:<12} step: "
            f"{s.step if s.step is not None else '-':<5} stage: "
            f"{s.stage or '-'}{age}"
        )
        acc = f"{s.accuracy:.3f}" if s.accuracy is not None else "-"
        compr = (
            f"{s.compression:.2f}x" if s.compression is not None else "-"
        )
        lines.append(f"accuracy: {acc}   compression: {compr}")
        if s.last_step:
            step_fields = s.last_step
            lines.append(
                f"last step: {step_fields.get('layer')} "
                f"{step_fields.get('from_bits')}b->"
                f"{step_fields.get('to_bits')}b  "
                f"valley {_fmt(step_fields.get('post_quant_accuracy'))} "
                f"peak {_fmt(step_fields.get('recovered_accuracy'))} "
                f"epochs {step_fields.get('recovery_epochs', '-')}"
            )
        if s.bit_map:
            parts = [
                f"{layer}={bits:g}b"
                for layer, bits in sorted(s.bit_map.items())
            ]
            lines.extend(_wrap("bits: ", parts, width))
        if s.expert_weights:
            top = sorted(
                s.expert_weights.items(), key=lambda kv: -kv[1]
            )[:6]
            parts = [f"{name}={w:.3f}" for name, w in top]
            lines.extend(_wrap("hedge top: ", parts, width))
        pool_bits: List[str] = []
        if s.pool_workers:
            pool_bits.append(f"workers={s.pool_workers:g}")
        for key, label in (
            ("ccq.pool_respawns", "respawns"),
            ("ccq.pool_salvaged_results", "salvaged"),
            ("ccq.pool_requeued", "requeued"),
            ("ccq.quarantined_candidates", "quarantined"),
            ("ccq.probe_pool_fallbacks", "fallbacks"),
        ):
            value = s.counters.get(key)
            if value:
                pool_bits.append(f"{label}={value:g}")
        if s.last_fanout:
            fanout = s.last_fanout
            pool_bits.append(
                f"last round {fanout.get('completed', '?')}/"
                f"{fanout.get('attempted', '?')} ok"
            )
            if fanout.get("deadline_s") is not None:
                pool_bits.append(
                    f"deadline {float(fanout['deadline_s']):.1f}s"
                )
        if pool_bits:
            lines.append("pool: " + "  ".join(pool_bits))
        recover_bits: List[str] = []
        if s.recover_active_shards is not None:
            recover_bits.append(f"shards={s.recover_active_shards:g}")
        if s.recover_allreduce_round is not None:
            recover_bits.append(
                f"allreduce-round={s.recover_allreduce_round:g}"
            )
        for key, label in (
            ("ccq.spec_probe_hits", "spec-hits"),
            ("ccq.spec_probe_discarded", "spec-discarded"),
            ("ccq.recover_pool_fallbacks", "fallbacks"),
        ):
            value = s.counters.get(key)
            if value:
                recover_bits.append(f"{label}={value:g}")
        if recover_bits:
            lines.append("recover fan-out: " + "  ".join(recover_bits))
        resilience: List[str] = []
        for key, label in (
            ("ccq.probe_divergence", "probe-div"),
            ("ccq.recovery_retry", "retries"),
            ("ccq.expert_skipped", "skipped"),
            ("ccq.fatal_divergence", "fatal-div"),
            ("ccq.checkpoint_integrity_failures", "ckpt-fail"),
        ):
            value = s.counters.get(key)
            if value is not None:
                resilience.append(f"{label}={value:g}")
        if resilience:
            lines.append("resilience: " + "  ".join(resilience))
        if s.last_warning:
            lines.append(f"last warning: {s.last_warning[:width]}")
        lines.append(f"events: {s.events_seen}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    try:
        return f"{float(value):.3f}"
    except (TypeError, ValueError):
        return str(value)


def _wrap(prefix: str, parts: List[str], width: int) -> List[str]:
    lines: List[str] = []
    current = prefix
    indent = " " * len(prefix)
    for part in parts:
        if current in (prefix, indent):
            candidate = current + part
        else:
            candidate = current + " " + part
        if len(candidate) > width and current not in (prefix, indent):
            lines.append(current)
            current = indent + part
        else:
            current = candidate
    if current.strip():
        lines.append(current)
    return lines


def watch(
    directory: Union[str, Path],
    interval_s: float = 1.0,
    once: bool = False,
    stream: Optional[TextIO] = None,
    follow_until_complete: bool = False,
    max_seconds: Optional[float] = None,
) -> MonitorState:
    """The ``repro watch`` loop: poll, redraw, repeat.

    ``once`` renders a single snapshot and returns (what the smoke
    tests use); ``follow_until_complete`` exits on its own when the run
    emits ``run_complete``/``interrupted``; ``max_seconds`` bounds the
    watch unconditionally.  Returns the final state either way.
    """
    stream = stream if stream is not None else sys.stdout
    monitor = RunMonitor(directory)
    started = time.monotonic()
    interactive = hasattr(stream, "isatty") and stream.isatty()
    while True:
        monitor.poll()
        panel = monitor.render()
        if interactive:
            # Clear + home, then the panel: a flicker-free-enough
            # redraw without any terminal library.
            stream.write("\x1b[2J\x1b[H" + panel + "\n")
        else:
            stream.write(panel + "\n")
        stream.flush()
        if once:
            break
        if (
            follow_until_complete
            and monitor.state.status in ("complete", "interrupted")
        ):
            break
        if (
            max_seconds is not None
            and time.monotonic() - started >= max_seconds
        ):
            break
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            break
    return monitor.state


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` (Prometheus text) and ``/state`` (JSON)."""

    # Set by serve_metrics on the server object.
    server: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 (stdlib interface)
        monitor = self.server.monitor
        with self.server.lock:
            monitor.poll()
            if self.path in ("/metrics", "/"):
                body = prometheus_text(monitor.metrics_snapshot).encode(
                    "utf-8"
                )
                content_type = "text/plain; version=0.0.4"
            elif self.path == "/state":
                body = json.dumps(monitor.state.snapshot()).encode(
                    "utf-8"
                )
                content_type = "application/json"
            else:
                self.send_response(404)
                self.end_headers()
                return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: Any) -> None:
        pass  # scrapes are not diagnostics; stay quiet


class MetricsServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared monitor + its lock."""

    daemon_threads = True

    def __init__(self, address: Any, monitor: RunMonitor) -> None:
        super().__init__(address, _MetricsHandler)
        self.monitor = monitor
        self.lock = threading.Lock()


def serve_metrics(
    directory: Union[str, Path],
    port: int = 0,
    host: str = "127.0.0.1",
) -> MetricsServer:
    """Start the opt-in HTTP endpoint for one run directory.

    Binds loopback by default, picks a free port with ``port=0`` (read
    it back from ``server.server_address``).  The caller drives it:
    ``server.serve_forever()`` inline, or on a daemon thread next to a
    ``watch`` loop.  Close with ``server.shutdown()``/``.server_close()``.
    """
    return MetricsServer((host, port), RunMonitor(directory))
