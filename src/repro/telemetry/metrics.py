"""The metrics registry: counters, gauges, histograms and timers.

A dependency-free (stdlib-only) metrics layer in the spirit of a
Prometheus client, sized for a single long-running CCQ search rather
than a fleet: metrics live in one in-process :class:`MetricsRegistry`,
series are keyed by ``(name, labels)``, and the whole registry
snapshots to JSON (``metrics.json``) or CSV for post-hoc analysis by
``repro report-run``.

Design constraints:

* **Bounded memory** — histograms keep raw observations (a CCQ run
  produces thousands, not millions, of samples), but label cardinality
  per metric name is capped; series beyond the cap collapse into a
  single ``overflow="true"`` series instead of growing without bound.
* **Never kill the run** — recording a metric must not raise in normal
  operation; telemetry is an observer, not a participant.
"""

from __future__ import annotations

import csv
import io
import json
import math
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value = (self.value or 0.0) + float(delta)


class Histogram:
    """A distribution summarized by count/sum/min/max/mean and percentiles.

    Raw observations are kept (bounded by run length, not traffic), so
    percentiles are exact up to linear interpolation between order
    statistics — no bucket-boundary error.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isfinite(value):
            self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> Optional[float]:
        """Exact percentile ``q`` in [0, 100], linearly interpolated."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return None
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, Any]:
        if not self.values:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "p50": None, "p90": None, "p99": None}
        total = sum(self.values)
        return {
            "count": len(self.values),
            "sum": total,
            "min": min(self.values),
            "max": max(self.values),
            "mean": total / len(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        if self._start is not None:
            self.histogram.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Labeled metric series, created on first use.

    ``registry.counter("ccq.retries", layer="conv1").inc()`` — the
    ``(name, labels)`` pair identifies one series; asking for the same
    pair again returns the same metric object.  Requesting an existing
    name with a different metric *type* raises, which catches the
    classic "histogram and counter share a name" bug at the call site.
    """

    METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self, max_series_per_name: int = 512) -> None:
        if max_series_per_name < 1:
            raise ValueError("max_series_per_name must be >= 1")
        self.max_series_per_name = max_series_per_name
        self._series: Dict[str, Dict[LabelKey, Any]] = {}
        self._types: Dict[str, str] = {}
        self.dropped_series = 0

    def _get(self, kind: str, name: str, labels: Dict[str, Any]) -> Any:
        existing = self._types.get(name)
        if existing is None:
            self._types[name] = kind
        elif existing != kind:
            raise TypeError(
                f"metric {name!r} is a {existing}, requested as {kind}"
            )
        series = self._series.setdefault(name, {})
        key = _label_key(labels)
        metric = series.get(key)
        if metric is None:
            if len(series) >= self.max_series_per_name:
                # Cardinality guard: collapse the overflow into one
                # shared series instead of growing without bound (or
                # killing the run it is observing).
                self.dropped_series += 1
                key = _label_key({"overflow": "true"})
                metric = series.get(key)
                if metric is None:
                    metric = self.METRIC_TYPES[kind]()
                    series[key] = metric
                return metric
            metric = self.METRIC_TYPES[kind]()
            series[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def timer(self, name: str, **labels: Any) -> Timer:
        return Timer(self._get("histogram", name, labels))

    # -- export ---------------------------------------------------------

    def series(self) -> Iterable[Tuple[str, str, Dict[str, str], Any]]:
        """Yield ``(name, kind, labels, metric)`` for every series."""
        for name in sorted(self._series):
            kind = self._types[name]
            for key in sorted(self._series[name]):
                yield name, kind, dict(key), self._series[name][key]

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as JSON-ready values (stable ordering)."""
        out: Dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for name, kind, labels, metric in self.series():
            entry: Dict[str, Any] = {"name": name, "labels": labels}
            if kind == "counter":
                entry["value"] = metric.value
                out["counters"].append(entry)
            elif kind == "gauge":
                entry["value"] = metric.value
                out["gauges"].append(entry)
            else:
                entry.update(metric.summary())
                out["histograms"].append(entry)
        if self.dropped_series:
            out["dropped_series"] = self.dropped_series
        return out

    def write_json(self, path: Union[str, Path]) -> None:
        payload = dict(self.snapshot())
        payload["written_at"] = time.time()
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)

    def to_csv(self) -> str:
        """Flat CSV: one row per scalar (histograms expand to summaries)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["name", "labels", "type", "field", "value"])
        for name, kind, labels, metric in self.series():
            label_text = ",".join(f"{k}={v}" for k, v in labels.items())
            if kind in ("counter", "gauge"):
                writer.writerow([name, label_text, kind, "value",
                                 metric.value])
            else:
                for field, value in metric.summary().items():
                    writer.writerow([name, label_text, kind, field, value])
        return buf.getvalue()

    def write_csv(self, path: Union[str, Path]) -> None:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as f:
            f.write(self.to_csv())
