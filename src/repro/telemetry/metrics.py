"""The metrics registry: counters, gauges, histograms and timers.

A dependency-free (stdlib-only) metrics layer in the spirit of a
Prometheus client, sized for a single long-running CCQ search rather
than a fleet: metrics live in one in-process :class:`MetricsRegistry`,
series are keyed by ``(name, labels)``, and the whole registry
snapshots to JSON (``metrics.json``) or CSV for post-hoc analysis by
``repro report-run``.

Design constraints:

* **Bounded memory** — histograms keep raw observations (a CCQ run
  produces thousands, not millions, of samples), but label cardinality
  per metric name is capped; series beyond the cap collapse into a
  single ``overflow="true"`` series instead of growing without bound.
* **Never kill the run** — recording a metric must not raise in normal
  operation; telemetry is an observer, not a participant.
"""

from __future__ import annotations

import csv
import io
import json
import math
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "DROPPED_SERIES_METRIC",
    "prometheus_text",
]

# Self-metric incremented whenever the per-name label-cardinality cap
# collapses a new series into the overflow bucket, so the drop is
# visible in scrapes and merged reports, not just the raw attribute.
DROPPED_SERIES_METRIC = "telemetry.dropped_series"

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value = (self.value or 0.0) + float(delta)


class Histogram:
    """A distribution summarized by count/sum/min/max/mean and percentiles.

    Raw observations are kept (bounded by run length, not traffic), so
    percentiles are exact up to linear interpolation between order
    statistics — no bucket-boundary error.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isfinite(value):
            self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> Optional[float]:
        """Exact percentile ``q`` in [0, 100], linearly interpolated."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return None
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, Any]:
        if not self.values:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "p50": None, "p90": None, "p99": None}
        total = sum(self.values)
        return {
            "count": len(self.values),
            "sum": total,
            "min": min(self.values),
            "max": max(self.values),
            "mean": total / len(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        if self._start is not None:
            self.histogram.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Labeled metric series, created on first use.

    ``registry.counter("ccq.retries", layer="conv1").inc()`` — the
    ``(name, labels)`` pair identifies one series; asking for the same
    pair again returns the same metric object.  Requesting an existing
    name with a different metric *type* raises, which catches the
    classic "histogram and counter share a name" bug at the call site.
    """

    METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self, max_series_per_name: int = 512) -> None:
        if max_series_per_name < 1:
            raise ValueError("max_series_per_name must be >= 1")
        self.max_series_per_name = max_series_per_name
        self._series: Dict[str, Dict[LabelKey, Any]] = {}
        self._types: Dict[str, str] = {}
        self.dropped_series = 0
        self._overflow_logged: set = set()
        self._in_overflow = False

    def _get(self, kind: str, name: str, labels: Dict[str, Any]) -> Any:
        existing = self._types.get(name)
        if existing is None:
            self._types[name] = kind
        elif existing != kind:
            raise TypeError(
                f"metric {name!r} is a {existing}, requested as {kind}"
            )
        series = self._series.setdefault(name, {})
        key = _label_key(labels)
        metric = series.get(key)
        if metric is None:
            if len(series) >= self.max_series_per_name:
                # Cardinality guard: collapse the overflow into one
                # shared series instead of growing without bound (or
                # killing the run it is observing).
                self.dropped_series += 1
                self._note_overflow(name)
                key = _label_key({"overflow": "true"})
                metric = series.get(key)
                if metric is None:
                    metric = self.METRIC_TYPES[kind]()
                    series[key] = metric
                return metric
            metric = self.METRIC_TYPES[kind]()
            series[key] = metric
        return metric

    def _note_overflow(self, name: str) -> None:
        """Record a dropped series visibly: self-metric + one-shot log.

        The re-entrancy guard keeps the self-metric from recursing into
        the cardinality check it is reporting on.
        """
        if self._in_overflow or name == DROPPED_SERIES_METRIC:
            return
        self._in_overflow = True
        try:
            self._get("counter", DROPPED_SERIES_METRIC,
                      {"metric": name}).inc()
            if name not in self._overflow_logged:
                self._overflow_logged.add(name)
                import sys
                sys.stderr.write(
                    f"[telemetry] metric {name!r} hit the label-cardinality "
                    f"cap ({self.max_series_per_name} series); further "
                    f"label sets collapse into overflow=true "
                    f"(logged once per metric)\n"
                )
        finally:
            self._in_overflow = False

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def timer(self, name: str, **labels: Any) -> Timer:
        return Timer(self._get("histogram", name, labels))

    # -- merge / full-fidelity state ------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s series into this registry, in place.

        Series with the same ``(name, labels)`` combine by kind:
        counters add, gauges take the other side's value when set
        (last-writer-wins, matching :meth:`Gauge.set`), histograms
        concatenate raw observations so post-merge percentiles stay
        exact.  A name carrying a different metric *type* on the two
        sides raises ``TypeError``, same as at the call site.
        """
        for name, kind, labels, metric in other.series():
            mine = self._get(kind, name, labels)
            if kind == "counter":
                mine.value += metric.value
            elif kind == "gauge":
                if metric.value is not None:
                    mine.value = metric.value
            else:
                mine.values.extend(metric.values)
        self.dropped_series += other.dropped_series
        return self

    def state(self) -> Dict[str, Any]:
        """Full-fidelity JSON-ready dump (raw histogram observations).

        Unlike :meth:`snapshot` this loses nothing: a registry rebuilt
        via :meth:`from_state` merges exactly like the original.  Used
        by pool workers to ship their registry across process exit.
        """
        metrics: List[Dict[str, Any]] = []
        for name, kind, labels, metric in self.series():
            entry: Dict[str, Any] = {
                "name": name, "kind": kind, "labels": labels,
            }
            if kind == "histogram":
                entry["values"] = list(metric.values)
            else:
                entry["value"] = metric.value
            metrics.append(entry)
        return {
            "format": "metrics-state-v1",
            "dropped_series": self.dropped_series,
            "metrics": metrics,
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, Any], max_series_per_name: int = 512
    ) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`state` dump."""
        fmt = state.get("format")
        if fmt != "metrics-state-v1":
            raise ValueError(
                f"not a metrics state dump (format={fmt!r})"
            )
        registry = cls(max_series_per_name=max_series_per_name)
        for entry in state.get("metrics", []):
            kind = entry.get("kind")
            if kind not in cls.METRIC_TYPES:
                continue
            metric = registry._get(kind, entry["name"],
                                   dict(entry.get("labels", {})))
            if kind == "histogram":
                metric.values.extend(
                    float(v) for v in entry.get("values", [])
                )
            elif kind == "counter":
                metric.value = float(entry.get("value") or 0.0)
            else:
                value = entry.get("value")
                metric.value = None if value is None else float(value)
        registry.dropped_series = int(state.get("dropped_series", 0))
        return registry

    def write_state(self, path: Union[str, Path]) -> None:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(path).with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(self.state(), f)
        tmp.replace(path)

    @classmethod
    def read_state(cls, path: Union[str, Path]) -> "MetricsRegistry":
        with open(path, "r", encoding="utf-8") as f:
            return cls.from_state(json.load(f))

    # -- export ---------------------------------------------------------

    def series(self) -> Iterable[Tuple[str, str, Dict[str, str], Any]]:
        """Yield ``(name, kind, labels, metric)`` for every series."""
        for name in sorted(self._series):
            kind = self._types[name]
            for key in sorted(self._series[name]):
                yield name, kind, dict(key), self._series[name][key]

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as JSON-ready values (stable ordering)."""
        out: Dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for name, kind, labels, metric in self.series():
            entry: Dict[str, Any] = {"name": name, "labels": labels}
            if kind == "counter":
                entry["value"] = metric.value
                out["counters"].append(entry)
            elif kind == "gauge":
                entry["value"] = metric.value
                out["gauges"].append(entry)
            else:
                entry.update(metric.summary())
                out["histograms"].append(entry)
        if self.dropped_series:
            out["dropped_series"] = self.dropped_series
        return out

    def write_json(self, path: Union[str, Path]) -> None:
        payload = dict(self.snapshot())
        payload["written_at"] = time.time()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace: the run rewrites this file every step and
        # ``repro watch`` reads it concurrently — a reader must never
        # see a half-written snapshot.
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
        tmp.replace(path)

    def to_csv(self) -> str:
        """Flat CSV: one row per scalar (histograms expand to summaries)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["name", "labels", "type", "field", "value"])
        for name, kind, labels, metric in self.series():
            label_text = ",".join(f"{k}={v}" for k, v in labels.items())
            if kind in ("counter", "gauge"):
                writer.writerow([name, label_text, kind, "value",
                                 metric.value])
            else:
                for field, value in metric.summary().items():
                    writer.writerow([name, label_text, kind, field, value])
        return buf.getvalue()

    def write_csv(self, path: Union[str, Path]) -> None:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as f:
            f.write(self.to_csv())


# -- Prometheus exposition ----------------------------------------------


def _prom_name(name: str) -> str:
    """Sanitize to the Prometheus metric-name charset."""
    cleaned = "".join(
        c if (c.isascii() and (c.isalnum() or c in "_:")) else "_"
        for c in name
    )
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    parts = []
    for k, v in sorted(labels.items()):
        value = (
            str(v).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{_prom_name(str(k))}="{value}"')
    return "{" + ",".join(parts) + "}"


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus
    text exposition format (version 0.0.4).

    Counters and gauges map directly; histograms expose as summaries
    (``quantile`` labels plus ``_sum``/``_count``).  Operates on the
    snapshot dict rather than the registry so it works on a
    ``metrics.json`` read off disk, which is how the ``repro watch``
    HTTP endpoint serves runs it does not own.
    """
    lines: List[str] = []
    seen_types: set = set()

    def type_line(name: str, prom_type: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {prom_type}")

    for entry in snapshot.get("counters", []):
        name = _prom_name(entry["name"])
        type_line(name, "counter")
        lines.append(
            f"{name}{_prom_labels(entry.get('labels', {}))} "
            f"{float(entry.get('value') or 0.0):g}"
        )
    for entry in snapshot.get("gauges", []):
        if entry.get("value") is None:
            continue
        name = _prom_name(entry["name"])
        type_line(name, "gauge")
        lines.append(
            f"{name}{_prom_labels(entry.get('labels', {}))} "
            f"{float(entry['value']):g}"
        )
    for entry in snapshot.get("histograms", []):
        if not entry.get("count"):
            continue
        name = _prom_name(entry["name"])
        type_line(name, "summary")
        labels = dict(entry.get("labels", {}))
        for q, field in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
            value = entry.get(field)
            if value is None:
                continue
            q_labels = dict(labels)
            q_labels["quantile"] = f"{q:g}"
            lines.append(f"{name}{_prom_labels(q_labels)} {value:g}")
        lines.append(
            f"{name}_sum{_prom_labels(labels)} "
            f"{float(entry.get('sum') or 0.0):g}"
        )
        lines.append(
            f"{name}_count{_prom_labels(labels)} {int(entry['count'])}"
        )
    if snapshot.get("dropped_series"):
        type_line("telemetry_dropped_series_total", "counter")
        lines.append(
            f"telemetry_dropped_series_total "
            f"{int(snapshot['dropped_series'])}"
        )
    return "\n".join(lines) + "\n"
