"""Wall-clock span tracing for the stages of a CCQ run.

A *span* is a named, attributed, nested timing: ``with tracer.span(
"probe", expert="conv1"):`` measures one probe evaluation; the spans it
opens while active become its children.  One event is emitted per span
at exit (spans of a crashed run are lost only for the frames that never
exited — everything completed before the crash is already on disk).

Span events carry ``id`` / ``parent`` / ``depth`` so a reporter can
rebuild the tree and compute *exclusive* stage totals without double
counting nested stages — see :mod:`repro.telemetry.report`.

The disabled path matters as much as the enabled one: a CCQ step may
open hundreds of spans, so :class:`NullTracer` returns one shared,
allocation-free context manager.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from .events import EventSink

__all__ = ["SpanTracer", "NullTracer", "Span"]


class Span:
    """One live span; becomes an event when it exits."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "depth", "start_mono", "start_wall", "error")

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        attrs: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
        depth: int,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start_mono = 0.0
        self.start_wall = 0.0
        self.error: Optional[str] = None

    def __enter__(self) -> "Span":
        self.start_mono = time.perf_counter()
        self.start_wall = time.time()
        self.tracer._stack.append(self.span_id)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self.start_mono
        # Unwind even if an inner frame failed to pop (defensive).
        stack = self.tracer._stack
        while stack and stack[-1] != self.span_id:
            stack.pop()
        if stack:
            stack.pop()
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self.tracer._emit(self, duration)
        return False  # never swallow exceptions


class SpanTracer:
    """Produces nested spans and writes them to an event sink."""

    def __init__(self, sink: EventSink) -> None:
        self.sink = sink
        self._stack: List[int] = []
        self._next_id = 0

    def span(self, name: str, **attrs: Any) -> Span:
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return Span(
            tracer=self,
            name=name,
            attrs=attrs,
            span_id=span_id,
            parent_id=parent,
            depth=len(self._stack),
        )

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    def _emit(self, span: Span, duration: float) -> None:
        event: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "ts": span.start_wall,
            "mono": span.start_mono,
            "duration_s": duration,
        }
        if span.attrs:
            event["attrs"] = span.attrs
        if span.error is not None:
            event["error"] = span.error
        self.sink.emit(event)


class _NullSpan:
    """Shared no-op context manager for the telemetry-off path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Allocation-free tracer: every span is the same no-op object."""

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    @property
    def active_depth(self) -> int:
        return 0
