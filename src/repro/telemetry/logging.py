"""Structured, leveled logging and the live progress line.

The runtime used to narrate itself with bare ``print()``; this module
replaces that with:

* :class:`StructuredLogger` — leveled (``debug`` < ``info`` <
  ``warning`` < ``error`` < ``silent``) human-readable lines with
  ``key=value`` fields, optionally mirrored as structured ``log``
  events into the telemetry sink so post-hoc analysis sees what the
  operator saw;
* :class:`ProgressLine` — a single carriage-return-updated status line
  (step, layer/bits, accuracy, compression, ETA) for interactive runs.

Errors go to ``error_stream`` (stderr by default when a separate one is
given) so data output piped from stdout stays clean.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

from .events import EventSink

__all__ = ["LEVELS", "StructuredLogger", "ProgressLine", "format_eta"]

LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
    "silent": 100,
}


def _level_value(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
        ) from None


def format_eta(seconds: float) -> str:
    """``MM:SS`` (or ``H:MM:SS``) for a non-negative duration."""
    seconds = max(int(seconds), 0)
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    if h:
        return f"{h}:{m:02d}:{s:02d}"
    return f"{m:02d}:{s:02d}"


class StructuredLogger:
    """Leveled logger writing human lines and (optionally) sink events."""

    def __init__(
        self,
        level: str = "info",
        stream: Optional[TextIO] = None,
        error_stream: Optional[TextIO] = None,
        sink: Optional[EventSink] = None,
    ) -> None:
        self._level = _level_value(level)
        self.level = level
        self.stream = stream if stream is not None else sys.stderr
        self.error_stream = (
            error_stream if error_stream is not None else self.stream
        )
        self.sink = sink

    def enabled_for(self, level: str) -> bool:
        return _level_value(level) >= self._level

    def log(self, level: str, msg: str, **fields: Any) -> None:
        if not self.enabled_for(level):
            return
        now = time.time()
        if self.sink is not None:
            self.sink.emit({
                "type": "log", "level": level, "ts": now,
                "msg": msg, **({"fields": fields} if fields else {}),
            })
        stamp = time.strftime("%H:%M:%S", time.localtime(now))
        suffix = "".join(
            f" {key}={_render(value)}" for key, value in fields.items()
        )
        stream = (
            self.error_stream if _level_value(level) >= LEVELS["warning"]
            else self.stream
        )
        stream.write(f"{stamp} {level.upper():<7} {msg}{suffix}\n")
        stream.flush()

    def debug(self, msg: str, **fields: Any) -> None:
        self.log("debug", msg, **fields)

    def info(self, msg: str, **fields: Any) -> None:
        self.log("info", msg, **fields)

    def warning(self, msg: str, **fields: Any) -> None:
        self.log("warning", msg, **fields)

    def error(self, msg: str, **fields: Any) -> None:
        self.log("error", msg, **fields)


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class ProgressLine:
    """One live, overwritten status line for interactive CCQ runs.

    ``update()`` rewrites the line in place (``\\r``); ``close()``
    terminates it with a newline.  When ``enabled`` is false every call
    is a no-op, so callers never need to guard.
    """

    def __init__(
        self, stream: Optional[TextIO] = None, enabled: bool = True
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._started: Optional[float] = None
        self._last_width = 0
        self._wrote = False

    def update(
        self,
        step: int,
        total: Optional[int] = None,
        **stats: Any,
    ) -> None:
        if not self.enabled:
            return
        now = time.perf_counter()
        if self._started is None:
            self._started = now
        parts = [f"step {step}" + (f"/{total}" if total else "")]
        parts += [f"{key} {_render(value)}" for key, value in stats.items()]
        if total and step > 0:
            per_step = (now - self._started) / step
            parts.append(f"eta {format_eta(per_step * (total - step))}")
        line = " | ".join(parts)
        pad = max(self._last_width - len(line), 0)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._last_width = len(line)
        self._wrote = True

    def close(self) -> None:
        if self.enabled and self._wrote:
            self.stream.write("\n")
            self.stream.flush()
            self._wrote = False
            self._last_width = 0
