"""Op-level deterministic profiler for the numpy compute substrate.

Every differentiable op dispatches through ``Function.apply``
(:mod:`repro.nn.autograd`), which makes that one choke point the place
to measure: while a profiler is installed, each forward dispatch is
timed and fed here together with its raw inputs/output, from which the
profiler derives

* per-op **wall-clock** totals and call counts,
* **FLOPs estimates** from analytic per-op cost models (conv and GEMM
  get exact expressions; everything else falls back to one op per
  output element),
* **bytes moved** (sum of input + output array sizes — a proxy for
  memory-bandwidth pressure),
* the **scratch-arena high-water mark** reported by the per-backend
  :class:`repro.nn.backends.arena.ScratchArena` on fresh allocations,
  and
* a per-kernel **(backend, kernel) timing table** fed by the ``@kernel``
  wrapper in :mod:`repro.nn.backends.base`.  Composite kernels
  (``conv2d_forward``) call leaf kernels (``im2col``, ``gemm``), so
  kernel times overlap — read the table as a flattened call tree, not
  as disjoint buckets.

Determinism: call counts, FLOPs and bytes are pure functions of the
model and batch shape — identical on every run — so benchmarks can
assert on them; only the wall-clock columns vary.  Installing a
profiler never changes what an op computes, so it is trajectory-neutral
by construction.  Only *forward* dispatches are profiled (the backward
tape runs through ``Function.backward`` directly, not ``apply``); for
the inference-heavy CCQ probe path that is the whole story.

Usage::

    profiler = OpProfiler()
    with profiler:
        model(x)
    print(profiler.format_table())

or, end to end on a task model, :func:`profile_model` (the engine of
the ``repro profile`` CLI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "OpStats",
    "KernelStats",
    "OpProfiler",
    "profile_model",
    "estimate_flops",
]


@dataclass
class OpStats:
    """Accumulated totals for one op name."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    flops: int = 0
    bytes: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    @property
    def gflops_per_s(self) -> float:
        return (
            self.flops / self.total_s / 1e9 if self.total_s > 0 else 0.0
        )


@dataclass
class KernelStats:
    """Accumulated totals for one ``(backend, kernel)`` entry point."""

    backend: str
    kernel: str
    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


def _op_name(fn: type) -> str:
    return fn.__name__.lstrip("_").lower()


def _nbytes(value: Any) -> int:
    return int(value.nbytes) if isinstance(value, np.ndarray) else 0


def _conv_flops(raw_args: Sequence[Any], out: np.ndarray) -> int:
    # args: x, weight[, bias]; weight is (F, C, KH, KW); out (N, F, OH, OW)
    weight = raw_args[1]
    n, _, oh, ow = out.shape
    f, c, kh, kw = weight.shape
    flops = 2 * n * oh * ow * f * c * kh * kw
    if len(raw_args) > 2 and isinstance(raw_args[2], np.ndarray):
        flops += out.size  # bias add
    return int(flops)


def _matmul_flops(raw_args: Sequence[Any], out: np.ndarray) -> int:
    # a @ b with numpy broadcasting; k is a's last axis.
    a = raw_args[0]
    k = int(a.shape[-1]) if getattr(a, "ndim", 0) >= 1 else 1
    return int(2 * out.size * k)


def _pool_flops(raw_args: Sequence[Any], out: np.ndarray) -> int:
    # One comparison/add per kernel element per output element.  The
    # kernel rides in kwargs, which the estimator does not see — charge
    # the conservative elementwise cost instead.
    return int(out.size)


# Analytic cost models by op name; anything absent falls back to one
# FLOP per output element (the right order for elementwise kernels).
_FLOPS_ESTIMATORS: Dict[
    str, Callable[[Sequence[Any], np.ndarray], int]
] = {
    "conv2d": _conv_flops,
    "conv2dnobias": _conv_flops,
    # The fused op's dispatch signature matches conv2d's (x, weight,
    # bias, ...) and the conv dominates; the in-kernel weight
    # quantization is O(weight.size) and not modeled.
    "fusedquantconv2d": _conv_flops,
    "matmul": _matmul_flops,
    "maxpool2d": _pool_flops,
    "avgpool2d": _pool_flops,
}


def estimate_flops(
    name: str, raw_args: Sequence[Any], out: np.ndarray
) -> int:
    """FLOPs estimate for one dispatch (analytic model or elementwise)."""
    estimator = _FLOPS_ESTIMATORS.get(name)
    if estimator is not None:
        try:
            return estimator(raw_args, out)
        except (AttributeError, IndexError, TypeError, ValueError):
            pass  # malformed shapes: fall through to the generic cost
    return int(out.size)


class OpProfiler:
    """Collects per-op statistics while installed as the active profiler.

    Context-manager install/uninstall nests correctly (the previous
    profiler is restored on exit) and also arms the scratch-arena
    notification in :mod:`repro.nn.functional`.
    """

    def __init__(self) -> None:
        self.ops: Dict[str, OpStats] = {}
        self.kernels: Dict[Tuple[str, str], KernelStats] = {}
        self.scratch_high_water_bytes = 0
        self.scratch_allocations = 0
        self._previous: Optional["OpProfiler"] = None

    # -- hook API (called from Function.apply) --------------------------

    def record(
        self,
        fn: type,
        raw_args: Sequence[Any],
        out: Any,
        elapsed_s: float,
    ) -> None:
        name = _op_name(fn)
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpStats(name)
        stats.calls += 1
        stats.total_s += elapsed_s
        stats.max_s = max(stats.max_s, elapsed_s)
        if isinstance(out, np.ndarray):
            stats.flops += estimate_flops(name, raw_args, out)
            stats.bytes += _nbytes(out) + sum(
                _nbytes(a) for a in raw_args
            )

    def note_scratch(self, nbytes: int, arena_bytes: int) -> None:
        """One scratch-arena allocation of ``nbytes`` (arena now holds
        ``arena_bytes`` total) — called by
        :meth:`repro.nn.backends.arena.ScratchArena.get` on misses."""
        self.scratch_allocations += 1
        self.scratch_high_water_bytes = max(
            self.scratch_high_water_bytes, int(arena_bytes)
        )

    def record_kernel(
        self, backend: str, kernel: str, elapsed_s: float
    ) -> None:
        """One backend kernel call — fed by the ``@kernel`` wrapper."""
        key = (backend, kernel)
        stats = self.kernels.get(key)
        if stats is None:
            stats = self.kernels[key] = KernelStats(backend, kernel)
        stats.calls += 1
        stats.total_s += elapsed_s
        stats.max_s = max(stats.max_s, elapsed_s)

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "OpProfiler":
        from ..nn import autograd

        self._previous = autograd.set_active_profiler(self)
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        from ..nn import autograd

        autograd.set_active_profiler(self._previous)
        self._previous = None
        return False

    # -- reporting ------------------------------------------------------

    @property
    def total_s(self) -> float:
        return sum(s.total_s for s in self.ops.values())

    @property
    def total_flops(self) -> int:
        return sum(s.flops for s in self.ops.values())

    def sorted_ops(self) -> List[OpStats]:
        """Ops by total wall-clock, descending (name breaks ties)."""
        return sorted(
            self.ops.values(), key=lambda s: (-s.total_s, s.name)
        )

    def sorted_kernels(self) -> List[KernelStats]:
        """Kernel entries by total wall-clock, descending."""
        return sorted(
            self.kernels.values(),
            key=lambda s: (-s.total_s, s.backend, s.kernel),
        )

    def summary(self) -> Dict[str, Any]:
        """JSON-ready dump (stable op ordering by time)."""
        return {
            "total_s": self.total_s,
            "total_flops": self.total_flops,
            "scratch_high_water_bytes": self.scratch_high_water_bytes,
            "scratch_allocations": self.scratch_allocations,
            "kernels": [
                {
                    "backend": s.backend,
                    "kernel": s.kernel,
                    "calls": s.calls,
                    "total_s": s.total_s,
                    "mean_s": s.mean_s,
                    "max_s": s.max_s,
                }
                for s in self.sorted_kernels()
            ],
            "ops": [
                {
                    "name": s.name,
                    "calls": s.calls,
                    "total_s": s.total_s,
                    "mean_s": s.mean_s,
                    "max_s": s.max_s,
                    "flops": s.flops,
                    "bytes": s.bytes,
                    "gflops_per_s": s.gflops_per_s,
                }
                for s in self.sorted_ops()
            ],
        }

    def format_table(self) -> str:
        """Plain-text per-op table for the ``repro profile`` CLI."""
        lines = [
            f"{'op':<16} {'calls':>7} {'total s':>9} {'mean ms':>9} "
            f"{'GFLOP':>9} {'GFLOP/s':>9} {'MB moved':>9} {'share':>7}"
        ]
        total = self.total_s
        for s in self.sorted_ops():
            share = s.total_s / total if total > 0 else 0.0
            lines.append(
                f"{s.name:<16} {s.calls:>7d} {s.total_s:>9.4f} "
                f"{s.mean_s * 1e3:>9.4f} {s.flops / 1e9:>9.3f} "
                f"{s.gflops_per_s:>9.2f} {s.bytes / 1e6:>9.1f} "
                f"{share:>6.1%}"
            )
        lines.append(
            f"{'total':<16} "
            f"{sum(s.calls for s in self.ops.values()):>7d} "
            f"{total:>9.4f} {'':>9} {self.total_flops / 1e9:>9.3f} "
            f"{(self.total_flops / total / 1e9) if total > 0 else 0.0:>9.2f}"
        )
        if self.scratch_allocations:
            lines.append(
                f"scratch arena: {self.scratch_allocations} "
                f"allocation(s), high water "
                f"{self.scratch_high_water_bytes / 1e6:.2f} MB"
            )
        if self.kernels:
            lines.append("")
            lines.append(
                f"{'backend kernel':<28} {'calls':>7} {'total s':>9} "
                f"{'mean ms':>9}"
            )
            # Kernel times overlap (composite kernels call leaf
            # kernels), so there is deliberately no total row here.
            for k in self.sorted_kernels():
                label = f"{k.backend}.{k.kernel}"
                lines.append(
                    f"{label:<28} {k.calls:>7d} {k.total_s:>9.4f} "
                    f"{k.mean_s * 1e3:>9.4f}"
                )
        return "\n".join(lines)


def profile_model(
    model: Any,
    images: np.ndarray,
    labels: Optional[np.ndarray] = None,
    train: bool = False,
    repeats: int = 1,
    warmup: int = 1,
) -> OpProfiler:
    """Profile forward passes of ``model`` on one batch.

    ``train=True`` (requires ``labels``) runs grad-mode forwards
    through a cross-entropy loss plus backward, so the grad-path
    dispatch cost is visible too (backward kernels themselves are not
    per-op attributed; see module docstring).  Warmup iterations run
    outside the profiler so one-time scratch allocation does not skew
    small measurements.
    """
    from ..nn.autograd import backward, no_grad
    from ..nn.functional import cross_entropy
    from ..nn.tensor import Tensor

    images = np.asarray(images)

    def one_pass() -> None:
        x = Tensor(images)
        if train:
            if labels is None:
                raise ValueError("train=True requires labels")
            loss = cross_entropy(model(x), np.asarray(labels))
            backward(loss)
        else:
            with no_grad():
                model(x)

    for _ in range(max(0, warmup)):
        one_pass()
    profiler = OpProfiler()
    with profiler:
        for _ in range(max(1, repeats)):
            one_pass()
    return profiler
