"""The :class:`Telemetry` facade: one handle bundling the whole layer.

Everything the runtime touches goes through this object — metrics,
spans, structured events, the logger and the progress line — so
instrumented code needs exactly one optional parameter, and the
disabled path is one shared :data:`NULL_TELEMETRY` singleton whose
every operation is a no-op.

Typical construction::

    telemetry = Telemetry.create("out/run1", log_level="info")
    ccq = CCQQuantizer(model, train, val, telemetry=telemetry)
    ccq.run()
    telemetry.close()          # flushes events.jsonl, writes metrics.json

Files written under the directory::

    events.jsonl    spans + structured events + mirrored log lines
    metrics.json    registry snapshot (counters/gauges/histograms)
    metrics.csv     the same snapshot, flat
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Optional, TextIO, Union

from .events import EventSink, JsonlSink, MemorySink, NullSink, StampingSink
from .logging import ProgressLine, StructuredLogger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .spans import NullTracer, SpanTracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "worker_events_file",
    "worker_metrics_file",
]

EVENTS_FILE = "events.jsonl"
METRICS_FILE = "metrics.json"
METRICS_CSV_FILE = "metrics.csv"


def worker_events_file(worker_id: int) -> str:
    """Per-worker event file name (``events-w<id>.jsonl``)."""
    return f"events-w{worker_id}.jsonl"


def worker_metrics_file(worker_id: int) -> str:
    """Per-worker full-fidelity metrics state (``metrics-w<id>.json``)."""
    return f"metrics-w{worker_id}.json"


class _NullMetric:
    """Accepts every metric operation and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullMetric":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_METRIC = _NullMetric()


class Telemetry:
    """Bundle of registry + tracer + sink + logger + progress line."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        sink: Optional[EventSink] = None,
        logger: Optional[StructuredLogger] = None,
        progress: Optional[ProgressLine] = None,
        directory: Optional[Union[str, Path]] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.directory = Path(directory) if directory is not None else None
        self.sink = sink if sink is not None else NullSink()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer(self.sink)
        self.logger = logger if logger is not None else StructuredLogger(
            level="silent"
        )
        self.progress = progress if progress is not None else ProgressLine(
            enabled=False
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def null(cls) -> "Telemetry":
        """The shared do-nothing instance (see :data:`NULL_TELEMETRY`)."""
        return cls(
            sink=NullSink(),
            tracer=NullTracer(),  # type: ignore[arg-type]
            logger=StructuredLogger(level="silent"),
            progress=ProgressLine(enabled=False),
            enabled=False,
        )

    @classmethod
    def create(
        cls,
        directory: Optional[Union[str, Path]] = None,
        log_level: str = "info",
        log_stream: Optional[TextIO] = None,
        error_stream: Optional[TextIO] = None,
        progress: bool = False,
        progress_stream: Optional[TextIO] = None,
    ) -> "Telemetry":
        """A live telemetry handle.

        With ``directory`` every span/event/log lands in
        ``<directory>/events.jsonl`` and ``close()`` snapshots the
        metrics registry to ``metrics.json`` + ``metrics.csv``; without
        it only the logger and progress line are active (no files).
        """
        sink: EventSink
        if directory is not None:
            Path(directory).mkdir(parents=True, exist_ok=True)
            sink = JsonlSink(Path(directory) / EVENTS_FILE)
        else:
            sink = NullSink()
        logger = StructuredLogger(
            level=log_level, stream=log_stream,
            error_stream=error_stream, sink=sink,
        )
        return cls(
            sink=sink,
            logger=logger,
            progress=ProgressLine(stream=progress_stream, enabled=progress),
            directory=directory,
        )

    @classmethod
    def in_memory(cls, **kwargs: Any) -> "Telemetry":
        """Telemetry backed by a :class:`MemorySink` (tests, notebooks)."""
        return cls(sink=MemorySink(), **kwargs)

    @classmethod
    def for_worker(
        cls, directory: Union[str, Path], worker_id: int
    ) -> "Telemetry":
        """A telemetry handle for one pool worker process.

        Spans/events land in ``events-w<id>.jsonl`` stamped with the
        worker id and pid.  ``directory`` is deliberately *not* set on
        the handle: ``flush()``/``close()`` in the worker must never
        clobber the parent's ``metrics.json``.  The worker's registry
        ships via :meth:`write_worker_metrics` to ``metrics-w<id>.json``
        instead, in full fidelity so the aggregator can merge exact
        histograms.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        sink = StampingSink(
            JsonlSink(directory / worker_events_file(worker_id)),
            worker=int(worker_id),
            pid=os.getpid(),
        )
        handle = cls(sink=sink, directory=None)
        handle.worker_id = int(worker_id)
        handle.worker_directory = directory
        return handle

    def write_worker_metrics(self) -> None:
        """Snapshot the worker registry to its ``metrics-w<id>.json``.

        Atomic (write + rename) so the parent never reads a torn file;
        called after every sync barrier and on shutdown so a killed
        worker still leaves its last consistent snapshot behind.
        """
        directory = getattr(self, "worker_directory", None)
        worker_id = getattr(self, "worker_id", None)
        if directory is None or worker_id is None:
            return
        self.registry.write_state(
            Path(directory) / worker_metrics_file(worker_id)
        )

    # -- paths ----------------------------------------------------------

    @property
    def events_path(self) -> Optional[Path]:
        return (
            self.directory / EVENTS_FILE
            if self.directory is not None else None
        )

    @property
    def metrics_path(self) -> Optional[Path]:
        return (
            self.directory / METRICS_FILE
            if self.directory is not None else None
        )

    # -- instrumentation API --------------------------------------------

    def span(self, name: str, **attrs: Any) -> Any:
        return self.tracer.span(name, **attrs)

    def counter(self, name: str, **labels: Any) -> "Counter | _NullMetric":
        if not self.enabled:
            return _NULL_METRIC
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> "Gauge | _NullMetric":
        if not self.enabled:
            return _NULL_METRIC
        return self.registry.gauge(name, **labels)

    def histogram(
        self, name: str, **labels: Any
    ) -> "Histogram | _NullMetric":
        if not self.enabled:
            return _NULL_METRIC
        return self.registry.histogram(name, **labels)

    def timer(self, name: str, **labels: Any) -> "Timer | _NullMetric":
        if not self.enabled:
            return _NULL_METRIC
        return self.registry.timer(name, **labels)

    def event(self, name: str, **fields: Any) -> None:
        """Emit one structured (non-span, non-log) event."""
        if not self.enabled:
            return
        self.sink.emit({
            "type": "event", "name": name, "ts": time.time(),
            "mono": time.perf_counter(), "fields": fields,
        })

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Flush the sink and snapshot metrics to disk (if file-backed)."""
        self.sink.flush()
        if self.directory is not None:
            self.registry.write_json(self.directory / METRICS_FILE)

    def close(self) -> None:
        """Final flush; also writes the CSV snapshot alongside."""
        self.flush()
        if self.directory is not None:
            self.registry.write_csv(self.directory / METRICS_CSV_FILE)
        self.progress.close()
        self.sink.close()


NULL_TELEMETRY = Telemetry.null()
"""Module-level disabled instance; the default everywhere."""
