"""``repro.telemetry`` — dependency-free observability for CCQ runs.

Cooperating parts behind one facade (:class:`Telemetry`):

* a **metrics registry** — counters, gauges, histograms (exact
  p50/p90/p99) and timers with labeled series, snapshotting to
  ``metrics.json`` / ``metrics.csv``, mergeable across processes
  (:meth:`MetricsRegistry.merge`);
* a **span tracer** — nested wall-clock spans for every CCQ stage,
  flushed to an append-only ``events.jsonl`` (per pool worker:
  ``events-w<id>.jsonl``, reassembled by :mod:`.aggregate`);
* a **structured logger** + live progress line replacing bare prints;
* an **op-level profiler** (:mod:`.profiler`) hooking the autograd
  dispatch for per-op wall-clock/FLOPs/bytes accounting;
* **live monitoring** (:mod:`.monitor`) — tail an in-progress run's
  telemetry directory, optionally serving Prometheus text over HTTP.

The disabled path is :data:`NULL_TELEMETRY`, a shared singleton whose
operations are allocation-free no-ops, so instrumentation costs nothing
when switched off (the default everywhere).
"""

from .aggregate import (
    AggregatedRun,
    WorkerLane,
    assemble_traces,
    discover_worker_events,
    discover_worker_metrics,
    fanout_summary,
    load_aggregated_run,
    merge_worker_metrics,
    namespace_worker_events,
    pool_summary,
    worker_lanes,
)
from .core import (
    NULL_TELEMETRY,
    Telemetry,
    worker_events_file,
    worker_metrics_file,
)
from .events import (
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    StampingSink,
    read_events,
)
from .logging import LEVELS, ProgressLine, StructuredLogger, format_eta
from .metrics import (
    Counter,
    DROPPED_SERIES_METRIC,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    prometheus_text,
)
from .monitor import MonitorState, RunMonitor, serve_metrics
from .profiler import OpProfiler, profile_model
from .report import (
    RunTelemetry,
    STAGES,
    format_report,
    load_run,
    stage_breakdown,
    trajectory,
    write_trajectory_svg,
)
from .spans import NullTracer, Span, SpanTracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "DROPPED_SERIES_METRIC",
    "prometheus_text",
    "SpanTracer",
    "NullTracer",
    "Span",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "StampingSink",
    "read_events",
    "StructuredLogger",
    "ProgressLine",
    "LEVELS",
    "format_eta",
    "RunTelemetry",
    "STAGES",
    "load_run",
    "stage_breakdown",
    "trajectory",
    "format_report",
    "write_trajectory_svg",
    "worker_events_file",
    "worker_metrics_file",
    "AggregatedRun",
    "WorkerLane",
    "assemble_traces",
    "discover_worker_events",
    "discover_worker_metrics",
    "fanout_summary",
    "load_aggregated_run",
    "namespace_worker_events",
    "merge_worker_metrics",
    "pool_summary",
    "worker_lanes",
    "OpProfiler",
    "profile_model",
    "MonitorState",
    "RunMonitor",
    "serve_metrics",
]
