"""``repro.telemetry`` — dependency-free observability for CCQ runs.

Three cooperating parts behind one facade (:class:`Telemetry`):

* a **metrics registry** — counters, gauges, histograms (exact
  p50/p90/p99) and timers with labeled series, snapshotting to
  ``metrics.json`` / ``metrics.csv``;
* a **span tracer** — nested wall-clock spans for every CCQ stage,
  flushed to an append-only ``events.jsonl``;
* a **structured logger** + live progress line replacing bare prints.

The disabled path is :data:`NULL_TELEMETRY`, a shared singleton whose
operations are allocation-free no-ops, so instrumentation costs nothing
when switched off (the default everywhere).
"""

from .core import NULL_TELEMETRY, Telemetry
from .events import EventSink, JsonlSink, MemorySink, NullSink, read_events
from .logging import LEVELS, ProgressLine, StructuredLogger, format_eta
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .report import (
    RunTelemetry,
    STAGES,
    format_report,
    load_run,
    stage_breakdown,
    trajectory,
    write_trajectory_svg,
)
from .spans import NullTracer, Span, SpanTracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "SpanTracer",
    "NullTracer",
    "Span",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "read_events",
    "StructuredLogger",
    "ProgressLine",
    "LEVELS",
    "format_eta",
    "RunTelemetry",
    "STAGES",
    "load_run",
    "stage_breakdown",
    "trajectory",
    "format_report",
    "write_trajectory_svg",
]
