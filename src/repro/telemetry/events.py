"""Event sinks: where structured telemetry events go.

Every span, log line and structured event is one JSON-ready dict; a
sink is anything with ``emit(dict)``.  Three implementations cover the
whole lifecycle:

* :class:`JsonlSink` — the production sink: an append-only
  ``events.jsonl`` file next to the run journal.  Unlike the journal
  (which fsyncs every line because resume correctness depends on it),
  telemetry only flushes — losing the last buffered events in a crash
  costs observability, not correctness.
* :class:`MemorySink` — collects events in a list; the test sink.
* :class:`NullSink` — swallows everything; the telemetry-off path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "StampingSink",
    "read_events",
]


class EventSink:
    """Interface: accepts JSON-ready event dicts."""

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class NullSink(EventSink):
    """Discards every event (the disabled-telemetry sink)."""

    def emit(self, event: Dict[str, Any]) -> None:
        pass


class MemorySink(EventSink):
    """Keeps events in memory; used by tests and in-process reporting."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)


class JsonlSink(EventSink):
    """Append-only JSONL file sink (one event per line).

    The file is opened lazily on the first emit so constructing a sink
    for a run that never produces events leaves no empty file behind.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file: Optional[Any] = None

    def emit(self, event: Dict[str, Any]) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(json.dumps(event, default=_json_fallback) + "\n")
        self._file.flush()

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class StampingSink(EventSink):
    """Wraps a sink, stamping fixed fields onto every event.

    Pool workers wrap their :class:`JsonlSink` in one of these so each
    emitted span/event carries ``worker``/``pid`` without every call
    site having to thread them through — which is what lets the
    aggregator attribute merged events back to their source process.
    Explicit fields on the event win over the stamp.
    """

    def __init__(self, inner: EventSink, **fields: Any) -> None:
        self.inner = inner
        self.fields = dict(fields)

    def emit(self, event: Dict[str, Any]) -> None:
        merged = dict(event)
        for key, value in self.fields.items():
            merged.setdefault(key, value)
        self.inner.emit(merged)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()


def _json_fallback(value: Any) -> Any:
    """Serialize numpy scalars/arrays and other oddballs defensively."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return repr(value)


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All parseable events from a JSONL file (tolerates a torn tail)."""
    path = Path(path)
    if not path.exists():
        return []
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail from a crash; nothing valid follows
    return events
