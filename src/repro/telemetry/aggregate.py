"""Cross-process trace aggregation for parallel runs.

A parallel CCQ run produces one telemetry stream per process: the
parent's ``events.jsonl``/``metrics.json`` plus, per pool worker,
``events-w<id>.jsonl`` and a full-fidelity ``metrics-w<id>.json``
(see :meth:`repro.telemetry.core.Telemetry.for_worker`).  This module
reassembles them into one coherent picture:

* **merged events** — worker span ids are namespaced (``w3:17``) so
  they can never collide with the parent's integer ids, and a worker
  span carrying a ``parent_span`` trace attribute is re-parented under
  the parent process's fan-out span, making each round one tree.
* **worker lanes** — per-worker totals (evaluations, compute seconds,
  queue-wait seconds, sync seconds) plus pool utilization over the
  fan-out window, the numbers ``repro report-run`` renders.
* **merged metrics** — every ``metrics-w<id>.json`` is rebuilt with
  :meth:`MetricsRegistry.from_state` and folded together with
  :meth:`MetricsRegistry.merge`, keeping histogram percentiles exact.

Robustness contract: worker files are written by processes the
supervisor kills on purpose.  A truncated tail, a missing metrics
snapshot or an event file from a worker that died mid-handshake must
degrade to "less data", never to an exception.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .events import read_events
from .metrics import MetricsRegistry
from .report import RunTelemetry, load_run

__all__ = [
    "WorkerLane",
    "AggregatedRun",
    "discover_worker_events",
    "discover_worker_metrics",
    "load_aggregated_run",
    "worker_lanes",
    "pool_summary",
    "fanout_summary",
    "assemble_traces",
    "merge_worker_metrics",
]

_WORKER_EVENTS_RE = re.compile(r"^events-w(\d+)\.jsonl$")
_WORKER_METRICS_RE = re.compile(r"^metrics-w(\d+)\.json$")


def discover_worker_events(directory: Union[str, Path]) -> Dict[int, Path]:
    """``{worker_id: path}`` for every per-worker event file present."""
    out: Dict[int, Path] = {}
    directory = Path(directory)
    if not directory.is_dir():
        return out
    for path in directory.iterdir():
        match = _WORKER_EVENTS_RE.match(path.name)
        if match:
            out[int(match.group(1))] = path
    return dict(sorted(out.items()))


def discover_worker_metrics(directory: Union[str, Path]) -> Dict[int, Path]:
    """``{worker_id: path}`` for every per-worker metrics state file."""
    out: Dict[int, Path] = {}
    directory = Path(directory)
    if not directory.is_dir():
        return out
    for path in directory.iterdir():
        match = _WORKER_METRICS_RE.match(path.name)
        if match:
            out[int(match.group(1))] = path
    return dict(sorted(out.items()))


def _namespace(worker_id: int, span_id: Any) -> Optional[str]:
    if span_id is None:
        return None
    return f"w{worker_id}:{span_id}"


def namespace_worker_events(
    worker_id: int, events: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Rewrite one worker file's events for the merged stream.

    Span ids/parents become ``w<id>:<n>`` strings (collision-proof
    against the parent's integer ids and against other workers — a
    respawned worker reuses its id *and* restarts its counter, but it
    also appends to the same file, so a duplicate merged id can only
    mean a duplicate span, which the lane accounting tolerates).  A
    span whose attrs carry ``parent_span`` (the parent process's
    fan-out span id, propagated through the command queue) is
    re-parented under it, stitching the cross-process trace together.
    """
    out: List[Dict[str, Any]] = []
    for event in events:
        event = dict(event)
        event.setdefault("worker", worker_id)
        if event.get("type") == "span":
            event["id"] = _namespace(worker_id, event.get("id"))
            attrs = event.get("attrs") or {}
            cross_parent = attrs.get("parent_span")
            if cross_parent is not None:
                event["parent"] = cross_parent
            else:
                event["parent"] = _namespace(
                    worker_id, event.get("parent")
                )
        out.append(event)
    return out


@dataclass
class WorkerLane:
    """Per-worker activity totals for the lane view."""

    worker_id: int
    evals: int = 0
    ok: int = 0
    syncs: int = 0
    train_shards: int = 0
    busy_s: float = 0.0
    sync_s: float = 0.0
    train_s: float = 0.0
    queue_wait_s: float = 0.0
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None

    def observe_span(self, event: Dict[str, Any]) -> None:
        name = event.get("name")
        duration = float(event.get("duration_s", 0.0) or 0.0)
        ts = event.get("ts")
        if ts is not None:
            ts = float(ts)
            end = ts + duration
            self.first_ts = ts if self.first_ts is None else min(
                self.first_ts, ts
            )
            self.last_ts = end if self.last_ts is None else max(
                self.last_ts, end
            )
        if name == "worker_eval":
            self.evals += 1
            self.busy_s += duration
            attrs = event.get("attrs") or {}
            if attrs.get("status") == "ok":
                self.ok += 1
            wait = attrs.get("queue_wait_s")
            if wait is not None:
                self.queue_wait_s += float(wait)
        elif name == "worker_sync":
            self.syncs += 1
            self.sync_s += duration
        elif name == "worker_train":
            # Recovery gradient shards (DDP): compute time like an
            # eval, tallied separately so the lane view shows the mix.
            self.train_shards += 1
            self.busy_s += duration
            self.train_s += duration
            attrs = event.get("attrs") or {}
            wait = attrs.get("queue_wait_s")
            if wait is not None:
                self.queue_wait_s += float(wait)


@dataclass
class AggregatedRun:
    """The parent run plus every worker's event stream."""

    run: RunTelemetry
    worker_events: Dict[int, List[Dict[str, Any]]] = field(
        default_factory=dict
    )
    worker_metrics_paths: Dict[int, Path] = field(default_factory=dict)

    @property
    def directory(self) -> Path:
        return self.run.directory

    @property
    def n_workers(self) -> int:
        return len(self.worker_events)

    def merged_events(self) -> List[Dict[str, Any]]:
        """Parent + namespaced worker events, ordered by wall clock.

        ``ts`` (``time.time()``) is the only clock the processes share;
        ``mono`` is per-process and must not be compared across files.
        The sort is stable, so equal timestamps keep file order.
        """
        merged = list(self.run.events)
        for worker_id, events in sorted(self.worker_events.items()):
            merged.extend(namespace_worker_events(worker_id, events))
        merged.sort(key=lambda e: float(e.get("ts", 0.0) or 0.0))
        return merged


def load_aggregated_run(directory: Union[str, Path]) -> AggregatedRun:
    """Load the parent run and every readable worker file.

    Worker files may be truncated mid-line (the supervisor kills hung
    workers) — :func:`read_events` already stops at the first torn
    line, so a killed worker contributes its complete prefix.
    """
    run = load_run(directory)
    worker_events: Dict[int, List[Dict[str, Any]]] = {}
    for worker_id, path in discover_worker_events(run.directory).items():
        try:
            worker_events[worker_id] = read_events(path)
        except OSError:
            worker_events[worker_id] = []
    return AggregatedRun(
        run=run,
        worker_events=worker_events,
        worker_metrics_paths=discover_worker_metrics(run.directory),
    )


def worker_lanes(agg: AggregatedRun) -> Dict[int, WorkerLane]:
    """Per-worker lane totals from the worker span streams."""
    lanes: Dict[int, WorkerLane] = {}
    for worker_id, events in sorted(agg.worker_events.items()):
        lane = lanes.setdefault(worker_id, WorkerLane(worker_id))
        for event in events:
            if event.get("type") == "span":
                lane.observe_span(event)
    return lanes


def pool_summary(agg: AggregatedRun) -> Dict[str, Any]:
    """Pool-level rollup: utilization and queue-wait vs compute.

    Utilization is worker busy time over the capacity of the fan-out
    windows (``n_workers x sum of probe_fanout span durations``) — the
    fraction of the time the pool *could* have been computing that it
    actually was.  Queue-wait share is wait/(wait+compute) across all
    worker evaluations.
    """
    lanes = worker_lanes(agg)
    fanout_spans = [
        s for s in agg.run.spans
        if s.get("name") in ("probe_fanout", "recover_fanout")
    ]
    window_s = _fanout_window_s(agg.run.spans, fanout_spans)
    busy_s = sum(lane.busy_s for lane in lanes.values())
    wait_s = sum(lane.queue_wait_s for lane in lanes.values())
    capacity_s = window_s * max(1, len(lanes))
    return {
        "n_workers": len(lanes),
        "fanout_rounds": len(fanout_spans),
        "fanout_window_s": window_s,
        "busy_s": busy_s,
        "sync_s": sum(lane.sync_s for lane in lanes.values()),
        "queue_wait_s": wait_s,
        "utilization": busy_s / capacity_s if capacity_s > 0 else 0.0,
        "queue_wait_share": (
            wait_s / (wait_s + busy_s) if (wait_s + busy_s) > 0 else 0.0
        ),
    }


def _fanout_window_s(
    spans: List[Dict[str, Any]],
    fanout_spans: List[Dict[str, Any]],
) -> float:
    """Total wall-clock during which pool work was in flight.

    The union of the fan-out span intervals, each speculative
    ``probe_fanout_start`` extended to the end of the ``probe_fanout``
    span that collected it — speculative compute runs in the *gap*
    between submission and collection (that is the point), so counting
    only the span durations would put worker busy time outside the
    capacity window and push utilization past 1.
    """
    intervals: List[Tuple[float, float]] = []
    for s in fanout_spans:
        ts = s.get("ts")
        if ts is None:
            continue
        intervals.append(
            (float(ts), float(ts) + float(s.get("duration_s", 0.0) or 0.0))
        )
    for s in spans:
        if s.get("name") != "probe_fanout_start":
            continue
        ts = s.get("ts")
        if ts is None:
            continue
        t0 = float(ts)
        t1 = t0 + float(s.get("duration_s", 0.0) or 0.0)
        # In flight until its collection: the first fan-out interval
        # ending after the speculation started (a crash before any
        # collection leaves just the submission span).
        ends = sorted(end for _, end in intervals if end > t0)
        if ends:
            t1 = max(t1, ends[0])
        intervals.append((t0, t1))
    intervals.sort()
    total = 0.0
    cursor: Optional[float] = None
    for start, end in intervals:
        if cursor is None or start > cursor:
            total += end - start
            cursor = end
        elif end > cursor:
            total += end - cursor
            cursor = end
    return total


def fanout_summary(run: RunTelemetry) -> Dict[str, Any]:
    """Totals of the per-round ``fanout_report`` events (salvage /
    requeue / respawn / quarantine overhead), plus the last deadline
    and per-batch EMA in force."""
    totals = {
        "rounds": 0, "attempted": 0, "completed": 0, "salvaged": 0,
        "requeued": 0, "respawned": 0, "quarantined": 0, "missing": 0,
        "degraded_rounds": 0,
    }
    deadline_s: Optional[float] = None
    ema_batch_s: Optional[float] = None
    for event in run.named_events("fanout_report"):
        fields = event.get("fields", {})
        totals["rounds"] += 1
        for key in ("attempted", "completed", "salvaged", "requeued",
                    "respawned", "quarantined", "missing"):
            totals[key] += int(fields.get(key, 0) or 0)
        if fields.get("degraded"):
            totals["degraded_rounds"] += 1
        if fields.get("deadline_s") is not None:
            deadline_s = float(fields["deadline_s"])
        if fields.get("ema_batch_s") is not None:
            ema_batch_s = float(fields["ema_batch_s"])
    out: Dict[str, Any] = dict(totals)
    out["deadline_s"] = deadline_s
    out["ema_batch_s"] = ema_batch_s
    return out


def assemble_traces(agg: AggregatedRun) -> List[Dict[str, Any]]:
    """One entry per parent fan-out span with its worker children.

    Children are matched by the ``parent_span`` attribute the trace
    context carried through the command queue; a worker span that
    arrives out of order (files are read per worker, not by time) or
    references a fan-out span the parent never closed (crash) lands in
    no trace rather than raising.
    """
    fanout_by_id: Dict[Any, Dict[str, Any]] = {}
    by_step: Dict[Any, Dict[str, Any]] = {}
    traces: List[Dict[str, Any]] = []
    for span in agg.run.spans:
        if span.get("name") == "probe_fanout" and span.get("id") is not None:
            entry = {"fanout": span, "children": []}
            fanout_by_id[span["id"]] = entry
            step = (span.get("attrs") or {}).get("step")
            if step is not None:
                by_step[step] = entry
            traces.append(entry)
    for span in agg.run.spans:
        # A speculative submission ("probe_fanout_start") is the same
        # logical fan-out as the "probe_fanout" span that later collects
        # it: alias its id so worker evals land in that step's trace.
        if (
            span.get("name") == "probe_fanout_start"
            and span.get("id") is not None
        ):
            entry = by_step.get((span.get("attrs") or {}).get("step"))
            if entry is not None:
                fanout_by_id[span["id"]] = entry
    for worker_id, events in sorted(agg.worker_events.items()):
        for event in events:
            if event.get("type") != "span":
                continue
            if event.get("name") != "worker_eval":
                continue
            attrs = event.get("attrs") or {}
            parent = attrs.get("parent_span")
            entry = fanout_by_id.get(parent)
            if entry is not None:
                child = dict(event)
                child.setdefault("worker", worker_id)
                child["id"] = _namespace(worker_id, child.get("id"))
                child["parent"] = parent
                entry["children"].append(child)
    for entry in traces:
        entry["children"].sort(
            key=lambda e: float(e.get("ts", 0.0) or 0.0)
        )
    traces.sort(
        key=lambda e: float(e["fanout"].get("ts", 0.0) or 0.0)
    )
    return traces


def merge_worker_metrics(
    directory: Union[str, Path],
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Merge every readable ``metrics-w<id>.json`` into one registry.

    Each worker's registry is labeled with its worker id at merge time
    (series gain a ``worker`` label when they don't carry one), so the
    merged view keeps per-worker resolution without the workers having
    to label every call site.  Unreadable or torn snapshots are
    skipped — the atomic write in the worker makes them rare.
    """
    merged = into if into is not None else MetricsRegistry()
    for worker_id, path in discover_worker_metrics(directory).items():
        try:
            with open(path, "r", encoding="utf-8") as f:
                state = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(state, dict):
            continue
        for entry in state.get("metrics", []):
            labels = dict(entry.get("labels", {}))
            labels.setdefault("worker", str(worker_id))
            entry["labels"] = labels
        try:
            merged.merge(MetricsRegistry.from_state(state))
        except (TypeError, ValueError):
            continue  # foreign/corrupt snapshot: skip, don't raise
    return merged
