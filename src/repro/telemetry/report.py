"""Render a finished run's telemetry into human-readable reports.

``repro report-run <dir>`` feeds ``events.jsonl`` + ``metrics.json``
through this module to answer the two questions a long CCQ search
raises: *where did the wall-clock go* (per-stage breakdown) and *what
did the search do* (accuracy/compression trajectory per step).

Stage accounting is **exclusive at the stage level**: a stage span
nested inside another stage span (e.g. an ``eval`` issued inside
``recover``) is charged to its outermost stage ancestor only, so the
breakdown never double counts and its coverage of the ``run`` span is
meaningful.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .core import EVENTS_FILE, METRICS_FILE
from .events import read_events

__all__ = [
    "STAGES",
    "RunTelemetry",
    "StageTotal",
    "load_run",
    "stage_breakdown",
    "trajectory",
    "format_report",
    "write_trajectory_svg",
]

# The span names charged as top-level stages of a CCQ run, in report
# order.  Everything else (winner draws, journal appends, ...) is
# uninstrumented overhead and shows up as the coverage gap.
# ``probe_fanout`` is the parent-side window of a parallel probe round
# (broadcast + collection); the in-worker compute happening inside that
# window lives in the per-worker event files and is reported through
# the worker-lane section, so charging the window here covers it in
# the exclusive accounting without double counting.
STAGES = (
    "initialize", "probe", "probe_fanout", "recover", "eval", "snapshot",
    "account", "checkpoint",
)


@dataclass
class StageTotal:
    """Aggregate wall-clock of one stage across the run."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class RunTelemetry:
    """Parsed telemetry of one run directory."""

    directory: Path
    events: List[Dict[str, Any]]
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def spans(self) -> List[Dict[str, Any]]:
        return [e for e in self.events if e.get("type") == "span"]

    def named_events(self, name: str) -> List[Dict[str, Any]]:
        return [
            e for e in self.events
            if e.get("type") == "event" and e.get("name") == name
        ]


def load_run(directory: Union[str, Path]) -> RunTelemetry:
    """Load ``events.jsonl`` + ``metrics.json`` from a run directory."""
    directory = Path(directory)
    events_path = directory / EVENTS_FILE
    if not events_path.exists():
        raise FileNotFoundError(
            f"no telemetry found in {directory} (missing {EVENTS_FILE}); "
            f"was the run started with --telemetry-dir?"
        )
    events = read_events(events_path)
    metrics: Dict[str, Any] = {}
    metrics_path = directory / METRICS_FILE
    if metrics_path.exists():
        with open(metrics_path, "r", encoding="utf-8") as f:
            metrics = json.load(f)
    return RunTelemetry(directory=directory, events=events, metrics=metrics)


def stage_breakdown(
    run: RunTelemetry,
) -> Dict[str, Any]:
    """Per-stage exclusive wall-clock totals and run coverage.

    Returns ``{"total_s", "stages": {name: StageTotal}, "covered_s",
    "coverage"}`` where coverage is covered/total (0 when no ``run``
    span exists — e.g. the run crashed before finishing).
    """
    spans = run.spans
    by_id = {s["id"]: s for s in spans if "id" in s}
    totals = {name: StageTotal(name) for name in STAGES}

    def outermost_stage(span: Dict[str, Any]) -> bool:
        parent = span.get("parent")
        while parent is not None:
            ancestor = by_id.get(parent)
            if ancestor is None:
                break
            if ancestor.get("name") in totals:
                return False
            parent = ancestor.get("parent")
        return True

    for span in spans:
        name = span.get("name")
        if name not in totals or not outermost_stage(span):
            continue
        duration = float(span.get("duration_s", 0.0))
        entry = totals[name]
        entry.count += 1
        entry.total_s += duration
        entry.max_s = max(entry.max_s, duration)

    run_spans = [s for s in spans if s.get("name") == "run"]
    total = (
        sum(float(s.get("duration_s", 0.0)) for s in run_spans)
        if run_spans
        else sum(t.total_s for t in totals.values())
    )
    covered = sum(t.total_s for t in totals.values())
    return {
        "total_s": total,
        "stages": totals,
        "covered_s": covered,
        "coverage": covered / total if total > 0 else 0.0,
    }


def trajectory(run: RunTelemetry) -> List[Dict[str, Any]]:
    """Per-step search trajectory from the ``step_complete`` events."""
    rows = []
    for event in run.named_events("step_complete"):
        fields = event.get("fields", {})
        rows.append({
            "step": fields.get("step"),
            "layer": fields.get("layer"),
            "from_bits": fields.get("from_bits"),
            "to_bits": fields.get("to_bits"),
            "valley": fields.get("post_quant_accuracy"),
            "peak": fields.get("recovered_accuracy"),
            "compression": fields.get("compression"),
            "epochs": fields.get("recovery_epochs"),
        })
    rows.sort(key=lambda r: (r["step"] is None, r["step"]))
    return rows


def _metric_value(
    metrics: Dict[str, Any], kind: str, name: str
) -> Optional[Any]:
    for entry in metrics.get(kind, []):
        if entry.get("name") == name and not entry.get("labels"):
            return entry
    return None


def format_report(run: RunTelemetry) -> str:
    """The full plain-text report for ``repro report-run``."""
    lines: List[str] = [f"telemetry report: {run.directory}", ""]

    breakdown = stage_breakdown(run)
    total = breakdown["total_s"]
    lines.append("per-stage wall-clock breakdown")
    lines.append(
        f"{'stage':<12} {'count':>6} {'total s':>10} "
        f"{'mean s':>9} {'max s':>9} {'share':>7}"
    )
    for name in STAGES:
        entry = breakdown["stages"][name]
        share = entry.total_s / total if total > 0 else 0.0
        lines.append(
            f"{name:<12} {entry.count:>6d} {entry.total_s:>10.3f} "
            f"{entry.mean_s:>9.4f} {entry.max_s:>9.4f} {share:>6.1%}"
        )
    lines.append(
        f"{'covered':<12} {'':>6} {breakdown['covered_s']:>10.3f} "
        f"{'':>9} {'':>9} {breakdown['coverage']:>6.1%}"
    )
    lines.append(f"{'total':<12} {'':>6} {total:>10.3f}")
    lines.append("")

    rows = trajectory(run)
    if rows:
        lines.append("accuracy / compression trajectory")
        lines.append(
            f"{'step':>4} {'layer':<24} {'bits':>7} {'valley':>8} "
            f"{'peak':>8} {'compr':>7} {'epochs':>6}"
        )
        for row in rows:
            bits = f"{row['from_bits']}->{row['to_bits']}b"
            lines.append(
                f"{row['step']:>4} {str(row['layer']):<24} {bits:>7} "
                f"{_fmt(row['valley']):>8} {_fmt(row['peak']):>8} "
                f"{_fmt(row['compression'], 'x'):>7} "
                f"{row['epochs'] if row['epochs'] is not None else '-':>6}"
            )
        lines.append("")

    hits_entry = _metric_value(run.metrics, "counters",
                               "ccq.probe_cache_hits")
    misses_entry = _metric_value(run.metrics, "counters",
                                 "ccq.probe_cache_misses")
    if hits_entry is not None or misses_entry is not None:
        hits = float(hits_entry["value"]) if hits_entry else 0.0
        misses = float(misses_entry["value"]) if misses_entry else 0.0
        rounds = hits + misses
        lines.append("probe cache")
        lines.append(f"  probe rounds:        {rounds:g}")
        lines.append(f"  forward passes:      {misses:g}")
        lines.append(f"  cache hits:          {hits:g}")
        lines.append(
            f"  hit rate:            "
            f"{hits / rounds if rounds else 0.0:.1%}"
        )
        lines.append("")

    counters = run.metrics.get("counters", [])
    resilience = [
        c for c in counters
        if c["name"].startswith(("ccq.divergence", "ccq.retry", "ccq.skip",
                                 "ccq.probe_divergence", "ccq.recovery",
                                 "ccq.pool_respawns",
                                 "ccq.pool_salvaged_results",
                                 "ccq.pool_repromotions",
                                 "ccq.quarantined_candidates",
                                 "ccq.checkpoint_integrity_failures",
                                 "ccq.probe_pool_fallbacks"))
    ]
    if resilience:
        lines.append("resilience counters")
        for entry in resilience:
            label_text = "".join(
                f" {k}={v}" for k, v in entry.get("labels", {}).items()
            )
            lines.append(
                f"  {entry['name']}{label_text}: {entry['value']:g}"
            )
        lines.append("")

    lines.extend(_worker_lane_lines(run))

    histograms = run.metrics.get("histograms", [])
    if histograms:
        lines.append("histograms (p50 / p90 / p99)")
        for entry in histograms:
            if not entry.get("count"):
                continue
            label_text = "".join(
                f" {k}={v}" for k, v in entry.get("labels", {}).items()
            )
            lines.append(
                f"  {entry['name']}{label_text}: n={entry['count']} "
                f"p50={_fmt(entry['p50'])} p90={_fmt(entry['p90'])} "
                f"p99={_fmt(entry['p99'])}"
            )
        lines.append("")

    return "\n".join(lines)


def _worker_lane_lines(run: RunTelemetry) -> List[str]:
    """The per-worker lane section of the report (empty when serial).

    Imported lazily: :mod:`.aggregate` imports this module for
    :class:`RunTelemetry`, so a top-level import would be circular.
    """
    from .aggregate import (
        AggregatedRun,
        discover_worker_events,
        fanout_summary,
        load_aggregated_run,
        pool_summary,
        worker_lanes,
    )

    if not discover_worker_events(run.directory):
        return []
    agg: AggregatedRun = load_aggregated_run(run.directory)
    lanes = worker_lanes(agg)
    if not lanes:
        return []
    lines: List[str] = []
    lines.append(f"worker lanes ({len(lanes)} workers)")
    lines.append(
        f"{'worker':<8} {'evals':>6} {'ok':>5} {'shards':>6} "
        f"{'compute s':>10} {'wait s':>8} {'sync s':>8} {'share':>7}"
    )
    pool = pool_summary(agg)
    window = pool["fanout_window_s"]
    for worker_id, lane in sorted(lanes.items()):
        share = lane.busy_s / window if window > 0 else 0.0
        lines.append(
            f"{'w' + str(worker_id):<8} {lane.evals:>6d} {lane.ok:>5d} "
            f"{lane.train_shards:>6d} "
            f"{lane.busy_s:>10.3f} {lane.queue_wait_s:>8.3f} "
            f"{lane.sync_s:>8.3f} {share:>6.1%}"
        )
    lines.append(
        f"  pool utilization:    {pool['utilization']:.1%} over "
        f"{pool['fanout_rounds']} fan-out round(s), "
        f"{window:.3f}s window"
    )
    lines.append(
        f"  queue-wait share:    {pool['queue_wait_share']:.1%} of "
        f"worker time (wait vs compute)"
    )
    fanout = fanout_summary(run)
    if fanout["rounds"]:
        lines.append(
            f"  fan-out overhead:    attempted={fanout['attempted']} "
            f"completed={fanout['completed']} "
            f"salvaged={fanout['salvaged']} "
            f"requeued={fanout['requeued']} "
            f"respawned={fanout['respawned']} "
            f"quarantined={fanout['quarantined']} "
            f"missing={fanout['missing']}"
        )
        if fanout["deadline_s"] is not None:
            ema = fanout["ema_batch_s"]
            ema_text = f"{ema:.4f}s" if ema is not None else "-"
            lines.append(
                f"  deadline (last):     {fanout['deadline_s']:.2f}s "
                f"(per-batch EMA {ema_text})"
            )
    lines.append("")
    return lines


def _fmt(value: Optional[float], suffix: str = "") -> str:
    if value is None:
        return "-"
    return f"{value:.3f}{suffix}"


def write_trajectory_svg(
    run: RunTelemetry, path: Union[str, Path]
) -> Optional[Path]:
    """Accuracy + compression trajectory as an SVG line chart.

    Returns the written path, or ``None`` when the run has no completed
    steps to plot.
    """
    from ..utils.svg import Series, line_chart

    rows = [
        r for r in trajectory(run)
        if r["step"] is not None and r["peak"] is not None
    ]
    if not rows:
        return None
    steps = [float(r["step"]) for r in rows]
    series = [
        Series("recovered accuracy", steps,
               [float(r["peak"]) for r in rows]),
    ]
    if all(r["valley"] is not None for r in rows):
        series.append(
            Series("post-quant valley", steps,
                   [float(r["valley"]) for r in rows])
        )
    if all(r["compression"] is not None for r in rows):
        max_compr = max(float(r["compression"]) for r in rows)
        if max_compr > 0:
            series.append(Series(
                "compression (scaled)", steps,
                [float(r["compression"]) / max_compr for r in rows],
            ))
    svg = line_chart(
        series,
        title="CCQ trajectory",
        x_label="quantization step",
        y_label="accuracy / scaled compression",
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg, encoding="utf-8")
    return path
