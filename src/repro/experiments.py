"""Experiment scaffolding shared by the benchmark harness and examples.

The paper's evaluation uses three network/dataset combinations:

* ResNet-20 on CIFAR10,
* ResNet-18 on ImageNet,
* ResNet-50 on ImageNet.

This module maps those onto the synthetic substitutes (DESIGN.md) at three
sizes: ``smoke`` (CI-speed), ``bench`` (minutes per experiment — the
default for ``pytest benchmarks/``), and ``paper`` (the fullest CPU-feasible
configuration).  Every table/figure benchmark builds its workload through
:func:`build_task`, so the scaling knobs live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from . import models
from .baselines import PretrainConfig, pretrain
from .datasets import SyntheticSplits, make_synthetic_cifar10, make_synthetic_imagenet
from .nn.data import DataLoader
from .nn.modules import Module
from .nn.serialization import CheckpointError, load_checkpoint, save_checkpoint

__all__ = ["Scale", "SCALES", "Task", "build_task", "TASK_NAMES"]


@dataclass(frozen=True)
class Scale:
    """Sizing knobs for one experiment scale."""

    name: str
    n_train: int
    n_val: int
    n_test: int
    cifar_image: int
    imagenet_image: int
    imagenet_classes: int
    width_r20: float
    width_r18: float
    width_r50: float
    pretrain_epochs: int
    finetune_epochs: int
    batch_size: int = 64


SCALES: Dict[str, Scale] = {
    # "micro" exists for CI: it exercises every code path in seconds and
    # makes no claim of converging to anything meaningful.
    "micro": Scale(
        name="micro", n_train=96, n_val=48, n_test=48,
        cifar_image=8, imagenet_image=8, imagenet_classes=4,
        width_r20=0.25, width_r18=0.125, width_r50=0.0625,
        pretrain_epochs=2, finetune_epochs=1,
    ),
    "smoke": Scale(
        name="smoke", n_train=600, n_val=200, n_test=200,
        cifar_image=16, imagenet_image=16, imagenet_classes=10,
        width_r20=0.25, width_r18=0.125, width_r50=0.0625,
        pretrain_epochs=16, finetune_epochs=2,
    ),
    "bench": Scale(
        name="bench", n_train=1200, n_val=300, n_test=300,
        cifar_image=16, imagenet_image=16, imagenet_classes=20,
        width_r20=0.5, width_r18=0.25, width_r50=0.125,
        pretrain_epochs=14, finetune_epochs=2,
    ),
    "paper": Scale(
        name="paper", n_train=4000, n_val=1000, n_test=1000,
        cifar_image=32, imagenet_image=32, imagenet_classes=100,
        width_r20=1.0, width_r18=0.5, width_r50=0.25,
        pretrain_epochs=20, finetune_epochs=4,
    ),
}

TASK_NAMES = ("resnet20_cifar10", "resnet18_imagenet", "resnet50_imagenet")


@dataclass
class Task:
    """A fully assembled experiment workload."""

    name: str
    scale: Scale
    splits: SyntheticSplits
    make_model: Callable[[], Module]
    input_shape: Tuple[int, int, int]
    baseline_accuracy: Optional[float] = None
    _pretrained_state: Optional[dict] = None

    def loaders(self, seed: int = 0) -> Tuple[DataLoader, DataLoader]:
        """Fresh (train, val) loaders."""
        train = DataLoader(
            self.splits.train, batch_size=self.scale.batch_size,
            shuffle=True, seed=seed,
        )
        val = DataLoader(self.splits.val, batch_size=128)
        return train, val

    def _pretrain_cache_path(self, cache_dir: Union[str, Path]) -> Path:
        return Path(cache_dir) / f"pretrain-{self.name}-{self.scale.name}.npz"

    def pretrained_model(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        log: Optional[object] = None,
    ) -> Tuple[Module, float]:
        """A pretrained float model + its baseline accuracy.

        The first call trains and caches the checkpoint; later calls
        restore it into a fresh network, so every experiment row starts
        from the identical baseline (the paper's protocol).

        With ``cache_dir`` the pretrained weights are also persisted to
        disk (crash-safe, via ``repro.nn.serialization``), so a resumed
        or repeated run skips the pretraining cost entirely.  A stale or
        incompatible cache file is retrained from scratch, not trusted.

        ``log`` is an optional structured logger
        (:class:`repro.telemetry.StructuredLogger`); pretraining is the
        single largest silent cost of a run, so callers that have one
        should pass it.
        """
        if log is None:
            from .telemetry import NULL_TELEMETRY

            log = NULL_TELEMETRY.logger
        cache_path = (
            self._pretrain_cache_path(cache_dir)
            if cache_dir is not None else None
        )
        if self._pretrained_state is None and cache_path is not None:
            if cache_path.exists():
                model = self.make_model()
                try:
                    extra = load_checkpoint(model, cache_path)
                    self._pretrained_state = model.state_dict()
                    self.baseline_accuracy = float(extra["baseline_accuracy"])
                    log.info(
                        "restored cached pretrain checkpoint",
                        path=str(cache_path),
                        accuracy=self.baseline_accuracy,
                    )
                except (CheckpointError, KeyError, ValueError):
                    log.warning(
                        "pretrain cache unusable; retraining from scratch",
                        path=str(cache_path),
                    )
                    self._pretrained_state = None
        if self._pretrained_state is None:
            log.info(
                "pretraining float baseline...",
                task=self.name, scale=self.scale.name,
                epochs=self.scale.pretrain_epochs,
            )
            model = self.make_model()
            train, val = self.loaders()
            result = pretrain(
                model, train, val,
                PretrainConfig(
                    epochs=self.scale.pretrain_epochs,
                    lr=0.05,
                    weight_decay=1e-4,
                    lr_step=max(int(self.scale.pretrain_epochs * 0.75), 1),
                ),
            )
            self._pretrained_state = model.state_dict()
            self.baseline_accuracy = result.baseline_accuracy
            log.info(
                "pretraining complete", accuracy=self.baseline_accuracy,
            )
            if cache_path is not None:
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                save_checkpoint(
                    model, cache_path,
                    extra={"baseline_accuracy": self.baseline_accuracy},
                )
                log.debug(
                    "pretrain checkpoint cached", path=str(cache_path),
                )
        model = self.make_model()
        model.load_state_dict(self._pretrained_state)
        return model, self.baseline_accuracy


def build_task(name: str, scale: "Scale | str" = "bench") -> Task:
    """Assemble one of the paper's three network/dataset combinations."""
    if isinstance(scale, str):
        scale = SCALES[scale]
    if name == "resnet20_cifar10":
        splits = make_synthetic_cifar10(
            n_train=scale.n_train, n_val=scale.n_val, n_test=scale.n_test,
            image_size=scale.cifar_image, augment=False,
        )
        make_model = lambda: models.resnet20(
            num_classes=10, width_mult=scale.width_r20,
            rng=np.random.default_rng(0),
        )
        shape = (3, scale.cifar_image, scale.cifar_image)
    elif name == "resnet18_imagenet":
        splits = make_synthetic_imagenet(
            n_classes=scale.imagenet_classes,
            n_train=scale.n_train, n_val=scale.n_val, n_test=scale.n_test,
            image_size=scale.imagenet_image, augment=False,
        )
        make_model = lambda: models.resnet18(
            num_classes=scale.imagenet_classes, width_mult=scale.width_r18,
            small_input=True, rng=np.random.default_rng(0),
        )
        shape = (3, scale.imagenet_image, scale.imagenet_image)
    elif name == "resnet50_imagenet":
        splits = make_synthetic_imagenet(
            n_classes=scale.imagenet_classes,
            n_train=scale.n_train, n_val=scale.n_val, n_test=scale.n_test,
            image_size=scale.imagenet_image, augment=False,
        )
        make_model = lambda: models.resnet50(
            num_classes=scale.imagenet_classes, width_mult=scale.width_r50,
            small_input=True, rng=np.random.default_rng(0),
        )
        shape = (3, scale.imagenet_image, scale.imagenet_image)
    else:
        raise KeyError(f"unknown task {name!r}; choose from {TASK_NAMES}")
    return Task(
        name=name, scale=scale, splits=splits,
        make_model=make_model, input_shape=shape,
    )
