"""Supervision layer for the probe worker pool: self-healing fan-out.

The plain :class:`~repro.parallel.pool.ProbeWorkerPool` treats every
mid-run fault as fatal-to-the-pool: one dead worker, one hung
evaluation or one malformed result used to throw away the whole step's
speculative work and demote the run to serial probing forever.  For a
multi-hour CCQ campaign that is far too blunt — the serial path is
bit-identical but much slower, and most faults are transient.

:class:`PoolSupervisor` wraps each fan-out round with:

* **adaptive per-task deadlines** — derived from the pinned-batch count
  times a measured per-batch EMA of healthy evaluations (``U`` batches
  at 50 ms should not wait the 120 s a hardcoded timeout allows), with
  an explicit ``probe_timeout`` override for operators who know better;
* **worker health monitoring and respawn** — a worker that dies (or
  hangs past the deadline) is terminated, re-forked, re-handshaken and
  re-synced from the cached broadcast, under a bounded respawn budget
  with exponential backoff;
* **partial-result salvage** — results already delivered by healthy
  workers are *kept*; in-flight candidates of the faulted worker are
  requeued once onto the survivors, and whatever is still missing at
  the end of the round simply evaluates serially inside the Hedge loop
  (the probe engine treats an absent prefetch exactly like a serial
  run, so the trajectory is untouched);
* **candidate quarantine** — a candidate observed in flight across
  repeated worker crashes is assumed to be the trigger; it is never
  fanned out again and evaluates once on the serial path instead.

None of this is trajectory-relevant: supervision only decides *where*
a loss is computed, never *what* loss the competition observes, so the
bit-identical-to-serial contract of ``docs/parallel.md`` holds under
arbitrary worker faults.  The caller reads :class:`FanOutReport` to
account respawns/salvage/quarantine in telemetry and to decide when
the budget is exhausted and the run should degrade to serial (and
later re-promote; see ``CCQQuantizer._fan_out_probes``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set

from ..telemetry import NULL_TELEMETRY, Telemetry
from .pool import PoolError, ProbeTask, ProbeWorkerPool

__all__ = [
    "SupervisionConfig",
    "FanOutReport",
    "PendingRound",
    "PoolSupervisor",
    "outcome_problem",
    "train_outcome_problem",
]

# Statuses a well-formed worker outcome may carry.
_VALID_STATUSES = ("ok", "diverged", "error")

# Statuses a recovery-shard outcome may carry (divergence is detected
# by the parent trainer after the all-reduce, never shard-side).
_VALID_TRAIN_STATUSES = ("ok", "error")


@dataclass(frozen=True)
class SupervisionConfig:
    """Knobs of the supervision layer (all trajectory-invariant)."""

    # Fixed per-candidate deadline in seconds; ``None`` derives it from
    # the measured per-batch EMA instead (the adaptive default).
    probe_timeout: Optional[float] = None
    # Deadline used before any healthy evaluation has been measured.
    startup_timeout: float = 120.0
    # Adaptive deadline = batches x EMA x safety, clamped to the band
    # below.  The safety factor is deliberately generous: a false
    # timeout only costs a respawn plus a serial re-run, but it should
    # stay rare.
    deadline_safety: float = 25.0
    deadline_floor: float = 2.0
    deadline_ceiling: float = 600.0
    # EMA smoothing for the measured per-batch evaluation time.
    ema_alpha: float = 0.2
    # Total respawns allowed over the supervisor's lifetime before the
    # pool is declared beyond saving and the run degrades to serial.
    respawn_budget: int = 8
    # Exponential backoff before each respawn: base * 2**respawns_used,
    # capped.
    respawn_backoff_s: float = 0.05
    respawn_backoff_cap_s: float = 2.0
    # A candidate observed in flight across this many worker crashes is
    # quarantined: never fanned out again, evaluated serially instead.
    quarantine_threshold: int = 2


@dataclass
class FanOutReport:
    """What happened during one supervised fan-out round."""

    outcomes: Dict[Hashable, Dict[str, Any]] = field(default_factory=dict)
    attempted: int = 0
    completed: int = 0
    # Results kept from a round in which at least one fault occurred
    # (the pre-supervision pool would have discarded all of them).
    salvaged: int = 0
    respawned: int = 0
    # In-flight candidates moved (once) from a faulted worker onto a
    # survivor instead of going serial.
    requeued: int = 0
    # Candidates newly quarantined during this round.
    quarantined: List[Hashable] = field(default_factory=list)
    # Candidates whose results never arrived (they evaluate serially).
    missing: List[Hashable] = field(default_factory=list)
    # Human-readable fault descriptions, for the structured log.
    faults: List[str] = field(default_factory=list)
    # The respawn budget ran out: the caller should close the pool and
    # fall back to serial probing (and maybe re-promote later).
    degraded: bool = False
    # The round deadline that was in force, for observability.
    deadline_s: float = 0.0


def outcome_problem(outcome: Any) -> Optional[str]:
    """Validate a worker outcome's schema; return a description or None.

    A worker that ships a malformed result (memory corruption, a bug, a
    fault injector) must not poison the probe engine: the supervisor
    discards the result, recycles the worker and lets the candidate
    evaluate serially.
    """
    if not isinstance(outcome, dict):
        return f"outcome is not a dict: {type(outcome).__name__}"
    if not isinstance(outcome.get("task_id"), int):
        return f"non-integer task_id: {outcome.get('task_id')!r}"
    status = outcome.get("status")
    if status not in _VALID_STATUSES:
        return f"unknown status: {status!r}"
    if status == "ok":
        loss = outcome.get("loss")
        if not isinstance(loss, float) or not math.isfinite(loss):
            return f"status 'ok' with non-finite loss: {loss!r}"
    return None


def train_outcome_problem(outcome: Any) -> Optional[str]:
    """Validate a recovery-shard outcome's schema.

    Unlike :func:`outcome_problem` a non-finite loss is *not* corrupt
    here: a diverging shard is a property of the trajectory, and the
    parent trainer's post-all-reduce ``ensure_finite`` must see it at
    exactly the point the serial trainer would — schema validation only
    rejects results a healthy worker could never have produced.
    """
    if not isinstance(outcome, dict):
        return f"outcome is not a dict: {type(outcome).__name__}"
    if outcome.get("kind") != "train":
        return f"not a train outcome: kind={outcome.get('kind')!r}"
    if not isinstance(outcome.get("task_id"), int):
        return f"non-integer task_id: {outcome.get('task_id')!r}"
    status = outcome.get("status")
    if status not in _VALID_TRAIN_STATUSES:
        return f"unknown status: {status!r}"
    if status == "ok":
        if not isinstance(outcome.get("loss"), float):
            return f"status 'ok' with non-float loss: {outcome.get('loss')!r}"
        if not isinstance(outcome.get("grads"), list):
            return "status 'ok' without a gradient list"
        if not isinstance(outcome.get("bn"), list):
            return "status 'ok' without BatchNorm statistics"
    return None


class _InFlight:
    """One submitted task awaiting its result."""

    __slots__ = ("key", "layer_names", "bits", "worker", "requeued")

    def __init__(
        self, key: Hashable, layer_names: Sequence[str], bits: int,
        worker: int,
    ) -> None:
        self.key = key
        self.layer_names = list(layer_names)
        self.bits = bits
        self.worker = worker
        self.requeued = False


class PendingRound:
    """A fan-out round that has been submitted but not yet collected.

    The handle :meth:`PoolSupervisor.start_round` returns so a caller
    can overlap other work (recovery training, checkpointing) with the
    workers' compute and call :meth:`PoolSupervisor.collect_round`
    later.  The deadline *duration* is fixed at start time, but its
    clock starts at collect time — the overlap window must not eat
    into the workers' time allowance.
    """

    __slots__ = ("gen", "pending", "report", "n_batches", "trace")

    def __init__(
        self,
        gen: int,
        pending: Dict[int, _InFlight],
        report: FanOutReport,
        n_batches: int,
        trace: Optional[Dict[str, Any]],
    ) -> None:
        self.gen = gen
        self.pending = pending
        self.report = report
        self.n_batches = n_batches
        self.trace = trace


class PoolSupervisor:
    """Per-run supervisor: deadlines, respawns, salvage, quarantine.

    One instance lives for the whole CCQ run (its EMA, quarantine set
    and respawn budget span pool generations); each competition step's
    fan-out goes through :meth:`run_round` (or the split
    :meth:`start_round` / :meth:`collect_round` pair when the caller
    overlaps the round with other work), and each data-parallel
    recovery batch through :meth:`run_train_round`.
    """

    def __init__(
        self,
        config: Optional[SupervisionConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or SupervisionConfig()
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self._ema_batch_s: Optional[float] = None
        # Per-shard EMA of recovery-train rounds (a shard's scaled
        # forward/backward has a very different cost profile from a
        # probe evaluation, so the two deadlines adapt independently).
        self._ema_train_s: Optional[float] = None
        self.respawns_used = 0
        self._crash_counts: Dict[Hashable, int] = {}
        self._quarantined: Set[Hashable] = set()
        # Workers whose respawn failed for good (budget or repeated
        # failure): excluded from sweeps until the pool is rebuilt.
        self._written_off: Set[int] = set()
        # Trace context of the round in flight, so requeues carry the
        # same cross-process parentage as the original submit.
        self._round_trace: Optional[Dict[str, Any]] = None

    # -- deadline policy -----------------------------------------------------

    @property
    def ema_batch_s(self) -> Optional[float]:
        """Measured per-batch evaluation time (EMA), if any yet."""
        return self._ema_batch_s

    def observe_elapsed(self, elapsed: float, n_batches: int) -> None:
        """Feed one healthy evaluation's wall clock into the EMA."""
        if elapsed <= 0 or n_batches <= 0:
            return
        per_batch = elapsed / n_batches
        if self._ema_batch_s is None:
            self._ema_batch_s = per_batch
        else:
            alpha = self.config.ema_alpha
            self._ema_batch_s = (
                alpha * per_batch + (1.0 - alpha) * self._ema_batch_s
            )

    def task_deadline_s(self, n_batches: int) -> float:
        """Deadline for a single candidate evaluation."""
        cfg = self.config
        if cfg.probe_timeout is not None:
            return cfg.probe_timeout
        if self._ema_batch_s is None:
            return cfg.startup_timeout
        derived = max(1, n_batches) * self._ema_batch_s * cfg.deadline_safety
        return min(max(derived, cfg.deadline_floor), cfg.deadline_ceiling)

    def round_deadline_s(
        self, n_tasks: int, n_batches: int, n_workers: int
    ) -> float:
        """Deadline for a whole fan-out round (tasks run ``n_workers``-wide)."""
        per_task = self.task_deadline_s(n_batches)
        waves = math.ceil(n_tasks / max(1, n_workers))
        return per_task * max(1, waves)

    @property
    def ema_train_s(self) -> Optional[float]:
        """Measured per-shard recovery compute time (EMA), if any yet."""
        return self._ema_train_s

    def observe_train_elapsed(self, elapsed: float) -> None:
        """Feed one healthy shard's wall clock into the train EMA."""
        if elapsed <= 0:
            return
        if self._ema_train_s is None:
            self._ema_train_s = elapsed
        else:
            alpha = self.config.ema_alpha
            self._ema_train_s = (
                alpha * elapsed + (1.0 - alpha) * self._ema_train_s
            )

    def train_task_deadline_s(self) -> float:
        """Deadline for a single recovery shard."""
        cfg = self.config
        if cfg.probe_timeout is not None:
            return cfg.probe_timeout
        if self._ema_train_s is None:
            return cfg.startup_timeout
        derived = self._ema_train_s * cfg.deadline_safety
        return min(max(derived, cfg.deadline_floor), cfg.deadline_ceiling)

    def train_round_deadline_s(self, n_shards: int, n_workers: int) -> float:
        """Deadline for one batch's shard round."""
        waves = math.ceil(n_shards / max(1, n_workers))
        return self.train_task_deadline_s() * max(1, waves)

    # -- quarantine ----------------------------------------------------------

    @property
    def quarantined(self) -> Set[Hashable]:
        return set(self._quarantined)

    def is_quarantined(self, key: Hashable) -> bool:
        return key in self._quarantined

    def _count_crash(self, key: Hashable, report: FanOutReport) -> None:
        if key in self._quarantined:
            return
        count = self._crash_counts.get(key, 0) + 1
        self._crash_counts[key] = count
        if count >= self.config.quarantine_threshold:
            self._quarantined.add(key)
            report.quarantined.append(key)
            self.telemetry.logger.warning(
                "candidate quarantined after repeated worker crashes",
                candidate=str(key), crashes=count,
            )

    # -- budget lifecycle ----------------------------------------------------

    def reset_budget(self) -> None:
        """Re-arm the respawn budget (called at pool re-promotion)."""
        self.respawns_used = 0
        self._written_off.clear()

    # -- the supervised round ------------------------------------------------

    def run_round(
        self,
        pool: ProbeWorkerPool,
        state_arrays: Dict[str, Any],
        bit_config: Dict[str, Any],
        pinned_batches: Sequence[Any],
        tasks: Sequence[ProbeTask],
        trace: Optional[Dict[str, Any]] = None,
    ) -> FanOutReport:
        """Broadcast, fan ``tasks`` out, and collect under supervision.

        Never raises for a *worker* fault — those are healed or
        absorbed into the report.  A fault in the supervisor's own
        machinery (or an unrecoverable broadcast failure) still
        propagates as :class:`PoolError` and the caller degrades.

        ``trace`` (optional) is forwarded with every submit — including
        requeues — so worker-side spans join the parent's fan-out span
        into one trace.
        """
        started = self.start_round(
            pool, state_arrays, bit_config, pinned_batches, tasks,
            trace=trace,
        )
        if started is None:
            return FanOutReport()
        return self.collect_round(pool, started)

    def start_round(
        self,
        pool: ProbeWorkerPool,
        state_arrays: Dict[str, Any],
        bit_config: Dict[str, Any],
        pinned_batches: Sequence[Any],
        tasks: Sequence[ProbeTask],
        trace: Optional[Dict[str, Any]] = None,
    ) -> Optional[PendingRound]:
        """Broadcast and submit ``tasks``; return the round handle.

        The first half of :meth:`run_round`, split out so a caller can
        overlap the workers' compute with other work (speculative
        probing of the next step runs while the parent recovers the
        current one).  Returns ``None`` when nothing was fanned out
        (every task quarantined).
        """
        report = FanOutReport()
        self._round_trace = trace
        tasks = [t for t in tasks if t[0] not in self._quarantined]
        if not tasks:
            return None
        report.attempted = len(tasks)

        # 1. Heal anything already dead, then broadcast (retry once
        #    after healing if the sync itself trips over a fault).
        self._sweep_dead(pool, None, report)
        try:
            pool.broadcast(state_arrays, bit_config, pinned_batches)
        except PoolError as err:
            report.faults.append(f"broadcast failed: {err}")
            self._sweep_dead(pool, None, report)
            if report.degraded:
                raise
            pool.broadcast(state_arrays, bit_config, pinned_batches)

        # 2. Submit round-robin over the live workers.
        gen = pool.begin_round()
        alive = pool.alive_workers()
        if not alive:
            raise PoolError("no live workers to fan out to")
        pending: Dict[int, _InFlight] = {}
        for i, (key, layer_names, bits) in enumerate(tasks):
            worker = alive[i % len(alive)]
            pool.submit(worker, i, layer_names, bits, trace=trace)
            pending[i] = _InFlight(key, layer_names, bits, worker)

        n_batches = len(pinned_batches)
        report.deadline_s = self.round_deadline_s(
            len(tasks), n_batches, len(alive)
        )
        return PendingRound(gen, pending, report, n_batches, trace)

    def collect_round(
        self, pool: ProbeWorkerPool, started: PendingRound
    ) -> FanOutReport:
        """Collect a started round's results under supervision.

        The deadline duration was fixed at :meth:`start_round`; its
        clock starts now, so time the caller spent overlapping does not
        count against the workers.
        """
        self._round_trace = started.trace
        report = started.report
        pending = started.pending
        gen = started.gen
        n_batches = started.n_batches

        # 3. Collect until done or the adaptive deadline expires.
        deadline = time.monotonic() + report.deadline_s
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            message = pool.next_message(timeout=min(0.1, remaining))
            if message is not None and message[0] == "result":
                self._absorb_result(
                    pool, message[1], gen, pending, report, n_batches
                )
            self._sweep_dead(pool, pending, report)

        # 4. Deadline expired with stragglers: the workers still holding
        #    them are hung — recycle them, send the candidates serial.
        if pending:
            hung = sorted({entry.worker for entry in pending.values()})
            report.faults.append(
                f"round deadline ({report.deadline_s:.1f}s) expired; "
                f"worker(s) {hung} hung with "
                f"{len(pending)} candidate(s) in flight"
            )
            for entry in pending.values():
                self._count_crash(entry.key, report)
                report.missing.append(entry.key)
            pending.clear()
            for worker_id in hung:
                self._recycle_worker(pool, worker_id, None, report)

        report.completed = len(report.outcomes)
        if report.faults:
            report.salvaged = report.completed
        return report

    # -- the supervised train round ------------------------------------------

    def run_train_round(
        self,
        pool: ProbeWorkerPool,
        arrays: Dict[str, Any],
        bit_config: Dict[str, Any],
        batch_seq: int,
        shard_ids: Sequence[int],
        batch_total: int,
        n_workers: int,
        trace: Optional[Dict[str, Any]] = None,
    ) -> "tuple[Dict[int, Dict[str, Any]], FanOutReport]":
        """One recovery batch's shard round under supervision.

        Returns ``(outcomes by shard id, report)``.  The same healing
        policy as probe rounds — dead workers respawned under the
        shared budget, lost shards requeued once onto survivors — but
        no quarantine: a missing shard is recomputed in-process by the
        trainer (bit-identically), so there is never a reason to ban
        one.  Divergent (non-finite) shard losses are valid results
        here; the trainer's post-all-reduce guard judges them.
        """
        report = FanOutReport()
        report.attempted = len(shard_ids)
        self._round_trace = trace
        self._sweep_dead(pool, None, report)
        name, manifest = pool.train_broadcast(arrays)
        gen = pool.begin_round()
        alive = pool.alive_workers()[: max(1, n_workers)]
        if not alive:
            raise PoolError("no live workers for the train round")

        def resubmit(worker_id: int, shard_id: int) -> None:
            pool.submit_train(
                worker_id, shard_id, name, manifest, bit_config,
                batch_seq, batch_total, trace=self._round_trace,
            )

        pending: Dict[int, _InFlight] = {}
        for i, shard_id in enumerate(shard_ids):
            worker = alive[i % len(alive)]
            resubmit(worker, shard_id)
            pending[shard_id] = _InFlight(shard_id, (), 0, worker)
        report.deadline_s = self.train_round_deadline_s(
            len(shard_ids), len(alive)
        )
        deadline = time.monotonic() + report.deadline_s
        outcomes: Dict[int, Dict[str, Any]] = {}
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            message = pool.next_message(timeout=min(0.1, remaining))
            if message is not None and message[0] == "result":
                self._absorb_train_result(
                    pool, message[1], gen, pending, outcomes, report,
                    resubmit,
                )
            self._sweep_train_dead(pool, pending, report, resubmit)
        if pending:
            hung = sorted({entry.worker for entry in pending.values()})
            report.faults.append(
                f"train deadline ({report.deadline_s:.1f}s) expired; "
                f"worker(s) {hung} hung with "
                f"{len(pending)} shard(s) in flight"
            )
            for entry in pending.values():
                report.missing.append(entry.key)
            pending.clear()
            for worker_id in hung:
                self._recycle_train_worker(pool, worker_id, None, report,
                                           resubmit)
        report.completed = len(outcomes)
        if report.faults:
            report.salvaged = report.completed
        return outcomes, report

    def _absorb_train_result(
        self,
        pool: ProbeWorkerPool,
        outcome: Any,
        gen: int,
        pending: Dict[int, _InFlight],
        outcomes: Dict[int, Dict[str, Any]],
        report: FanOutReport,
        resubmit: Any,
    ) -> None:
        if isinstance(outcome, dict) and outcome.get("gen") != gen:
            return  # stale result from an aborted earlier round
        problem = train_outcome_problem(outcome)
        if problem is not None:
            task_id = (
                outcome.get("task_id") if isinstance(outcome, dict) else None
            )
            entry = pending.pop(task_id, None) if isinstance(
                task_id, int
            ) else None
            worker = (
                entry.worker if entry is not None
                else outcome.get("worker") if isinstance(outcome, dict)
                else None
            )
            report.faults.append(
                f"corrupt train result from worker {worker}: {problem}"
            )
            if entry is not None:
                report.missing.append(entry.key)
            if isinstance(worker, int):
                self._recycle_train_worker(pool, worker, pending, report,
                                           resubmit)
            return
        entry = pending.pop(outcome["task_id"], None)
        if entry is None:
            return  # duplicate or already-requeued-and-answered
        if outcome["status"] == "error":
            report.faults.append(
                f"worker {outcome.get('worker')} error on shard "
                f"{entry.key}: {outcome.get('message')}"
            )
            report.missing.append(entry.key)
            return
        outcomes[entry.key] = outcome
        self.observe_train_elapsed(float(outcome.get("elapsed", 0.0)))

    def _sweep_train_dead(
        self,
        pool: ProbeWorkerPool,
        pending: Dict[int, _InFlight],
        report: FanOutReport,
        resubmit: Any,
    ) -> None:
        for worker_id in pool.dead_workers():
            if worker_id in self._written_off:
                continue
            report.faults.append(f"worker {worker_id} died")
            self._recycle_train_worker(pool, worker_id, pending, report,
                                       resubmit)

    def _recycle_train_worker(
        self,
        pool: ProbeWorkerPool,
        worker_id: int,
        pending: Optional[Dict[int, _InFlight]],
        report: FanOutReport,
        resubmit: Any,
    ) -> None:
        """Respawn ``worker_id`` and requeue (once) its lost shards.

        No crash counting: shards are positions in a batch, not
        candidates — quarantining one would silently change which work
        runs where forever, for no diagnostic gain.
        """
        lost = (
            [tid for tid, e in pending.items() if e.worker == worker_id]
            if pending else []
        )
        self._respawn(pool, worker_id, report)
        if not pending:
            return
        alive = pool.alive_workers()
        for i, tid in enumerate(lost):
            entry = pending[tid]
            if entry.requeued or not alive:
                del pending[tid]
                report.missing.append(entry.key)
                continue
            entry.requeued = True
            entry.worker = alive[i % len(alive)]
            resubmit(entry.worker, tid)
            report.requeued += 1

    # -- internals -----------------------------------------------------------

    def _absorb_result(
        self,
        pool: ProbeWorkerPool,
        outcome: Any,
        gen: int,
        pending: Dict[int, _InFlight],
        report: FanOutReport,
        n_batches: int,
    ) -> None:
        if isinstance(outcome, dict) and outcome.get("gen") != gen:
            return  # stale result from an aborted earlier round
        problem = outcome_problem(outcome)
        if problem is not None:
            # Corrupt result: untrusted worker, candidate goes serial.
            task_id = (
                outcome.get("task_id") if isinstance(outcome, dict) else None
            )
            entry = pending.pop(task_id, None) if isinstance(
                task_id, int
            ) else None
            worker = (
                entry.worker if entry is not None
                else outcome.get("worker") if isinstance(outcome, dict)
                else None
            )
            report.faults.append(
                f"corrupt result from worker {worker}: {problem}"
            )
            if entry is not None:
                self._count_crash(entry.key, report)
                report.missing.append(entry.key)
            if isinstance(worker, int):
                self._recycle_worker(pool, worker, pending, report)
            return
        entry = pending.pop(outcome["task_id"], None)
        if entry is None:
            return  # duplicate or already-requeued-and-answered
        if outcome["status"] == "error":
            # The worker is healthy; the *candidate's* evaluation
            # failed.  The serial path will raise the same error if it
            # is real — identical to a serial run, so just step aside.
            report.faults.append(
                f"worker {outcome.get('worker')} error on candidate "
                f"{entry.key}: {outcome.get('message')}"
            )
            self._count_crash(entry.key, report)
            report.missing.append(entry.key)
            return
        report.outcomes[entry.key] = outcome
        if outcome["status"] == "ok":
            self.observe_elapsed(
                float(outcome.get("elapsed", 0.0)), n_batches
            )

    def _sweep_dead(
        self,
        pool: ProbeWorkerPool,
        pending: Optional[Dict[int, _InFlight]],
        report: FanOutReport,
    ) -> None:
        for worker_id in pool.dead_workers():
            if worker_id in self._written_off:
                continue
            report.faults.append(f"worker {worker_id} died")
            self._recycle_worker(pool, worker_id, pending, report)

    def _recycle_worker(
        self,
        pool: ProbeWorkerPool,
        worker_id: int,
        pending: Optional[Dict[int, _InFlight]],
        report: FanOutReport,
    ) -> None:
        """Respawn ``worker_id`` and requeue (once) its in-flight tasks."""
        lost = (
            [tid for tid, e in pending.items() if e.worker == worker_id]
            if pending else []
        )
        for tid in lost:
            self._count_crash(pending[tid].key, report)
        self._respawn(pool, worker_id, report)
        if not pending:
            return
        alive = pool.alive_workers()
        for i, tid in enumerate(lost):
            entry = pending[tid]
            if (
                entry.key in self._quarantined
                or entry.requeued
                or not alive
            ):
                # Second fault on this candidate (or nowhere to run it):
                # it evaluates serially inside the Hedge loop instead.
                del pending[tid]
                report.missing.append(entry.key)
                continue
            entry.requeued = True
            entry.worker = alive[i % len(alive)]
            pool.submit(entry.worker, tid, entry.layer_names, entry.bits,
                        trace=self._round_trace)
            report.requeued += 1

    def _respawn(
        self, pool: ProbeWorkerPool, worker_id: int, report: FanOutReport
    ) -> bool:
        while True:
            if self.respawns_used >= self.config.respawn_budget:
                report.degraded = True
                self._written_off.add(worker_id)
                report.faults.append(
                    f"respawn budget ({self.config.respawn_budget}) "
                    f"exhausted; worker {worker_id} stays down"
                )
                return False
            backoff = min(
                self.config.respawn_backoff_s * (2 ** self.respawns_used),
                self.config.respawn_backoff_cap_s,
            )
            if backoff > 0:
                time.sleep(backoff)
            self.respawns_used += 1
            try:
                pool.respawn_worker(worker_id)
            except PoolError as err:
                report.faults.append(
                    f"respawn of worker {worker_id} failed: {err}"
                )
                continue  # retry under the same budget/backoff regime
            report.respawned += 1
            self._written_off.discard(worker_id)
            self.telemetry.logger.info(
                "probe worker respawned", worker=worker_id,
                respawns_used=self.respawns_used,
                budget=self.config.respawn_budget,
            )
            return True
