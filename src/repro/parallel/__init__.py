"""Parallel execution backend for CCQ probe evaluation.

A persistent multiprocess worker pool (:class:`ProbeWorkerPool`) with
shared-memory ndarray broadcast (:class:`SharedArrayStore`): each
competition step, the frozen model state and pinned probe batches are
packed once into a shared segment, the step's distinct ``(expert,
next_bits)`` candidates are fanned out across the workers, and the
losses come back bit-identical to the serial path for any worker count
(see ``docs/parallel.md`` for the determinism contract).

Mid-run faults are handled by the supervision layer
(:class:`PoolSupervisor`): adaptive deadlines, worker respawn under a
bounded budget, partial-result salvage and candidate quarantine — all
trajectory-invariant, since a missing result simply evaluates serially
inside the Hedge loop.

Construction goes through :func:`create_probe_pool` so the CCQ driver
(and tests) can swap the factory; any failure to start is a
:class:`PoolError`, which callers treat as "run serial instead".
"""

from __future__ import annotations

from typing import Optional

from ..telemetry import Telemetry
from .ddp import DDPTrainer, compute_shard_grad, plan_shards
from .pool import PoolError, ProbeTask, ProbeWorkerPool
from .sharedmem import SharedArrayStore, attach_arrays, views_from
from .supervisor import (
    FanOutReport,
    PendingRound,
    PoolSupervisor,
    SupervisionConfig,
)

__all__ = [
    "PoolError",
    "ProbeTask",
    "ProbeWorkerPool",
    "SharedArrayStore",
    "attach_arrays",
    "views_from",
    "create_probe_pool",
    "PoolSupervisor",
    "SupervisionConfig",
    "FanOutReport",
    "PendingRound",
    "DDPTrainer",
    "plan_shards",
    "compute_shard_grad",
]


def create_probe_pool(
    model,
    n_workers: int,
    quantize_activations: bool = True,
    telemetry: Optional[Telemetry] = None,
) -> ProbeWorkerPool:
    """Start a probe pool; raises :class:`PoolError` when it cannot."""
    return ProbeWorkerPool(
        model, n_workers=n_workers,
        quantize_activations=quantize_activations,
        telemetry=telemetry,
    )
