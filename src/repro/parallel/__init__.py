"""Parallel execution backend for CCQ probe evaluation.

A persistent multiprocess worker pool (:class:`ProbeWorkerPool`) with
shared-memory ndarray broadcast (:class:`SharedArrayStore`): each
competition step, the frozen model state and pinned probe batches are
packed once into a shared segment, the step's distinct ``(expert,
next_bits)`` candidates are fanned out across the workers, and the
losses come back bit-identical to the serial path for any worker count
(see ``docs/parallel.md`` for the determinism contract).

Construction goes through :func:`create_probe_pool` so the CCQ driver
(and tests) can swap the factory; any failure to start is a
:class:`PoolError`, which callers treat as "run serial instead".
"""

from __future__ import annotations

from .pool import PoolError, ProbeTask, ProbeWorkerPool
from .sharedmem import SharedArrayStore, attach_arrays, views_from

__all__ = [
    "PoolError",
    "ProbeTask",
    "ProbeWorkerPool",
    "SharedArrayStore",
    "attach_arrays",
    "views_from",
    "create_probe_pool",
]


def create_probe_pool(
    model, n_workers: int, quantize_activations: bool = True
) -> ProbeWorkerPool:
    """Start a probe pool; raises :class:`PoolError` when it cannot."""
    return ProbeWorkerPool(
        model, n_workers=n_workers,
        quantize_activations=quantize_activations,
    )
