"""Shared-memory ndarray broadcast for the parallel probe backend.

One :class:`SharedArrayStore` owns a single ``multiprocessing``
shared-memory block holding every array of a broadcast — the frozen
model state plus the pinned probe batches — packed back to back at
64-byte-aligned offsets.  The layout is described by a JSON-able
*manifest* (``[{key, dtype, shape, offset}, ...]``) that travels over
the command queue; workers attach by name and rebuild zero-copy ndarray
views from the manifest.

The block is reused across broadcasts as long as the layout signature
(keys, dtypes, shapes) is unchanged — the common case, since a CCQ
model's parameter set is fixed — so steady-state broadcast cost is one
``memcpy`` of the state into an already-mapped block, with no
allocation, no pickling of array payloads, and no per-worker copy.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["SharedArrayStore", "attach_arrays", "views_from"]

# Offsets are aligned generously so every array starts on a cache-line
# (and any-dtype) boundary regardless of the preceding array's size.
_ALIGN = 64

Manifest = List[Dict[str, object]]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _layout_signature(
    arrays: Dict[str, np.ndarray]
) -> Tuple[Tuple[str, str, Tuple[int, ...]], ...]:
    return tuple(
        (key, a.dtype.str, tuple(a.shape)) for key, a in arrays.items()
    )


class SharedArrayStore:
    """Parent-side owner of one shared-memory broadcast block."""

    def __init__(self) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._layout: Optional[tuple] = None
        self._manifest: Manifest = []

    @property
    def name(self) -> Optional[str]:
        return self._shm.name if self._shm is not None else None

    @property
    def manifest(self) -> Manifest:
        return self._manifest

    def ensure(
        self, arrays: Dict[str, np.ndarray]
    ) -> Tuple[str, Manifest, bool]:
        """Pack ``arrays`` into the block, (re)creating it only on a
        layout change.

        Returns ``(shm_name, manifest, remapped)``; ``remapped`` tells
        the caller the block is a *new* segment (workers must re-attach
        instead of reusing their existing views).
        """
        contiguous = {
            key: np.ascontiguousarray(a) for key, a in arrays.items()
        }
        layout = _layout_signature(contiguous)
        remapped = self._shm is None or layout != self._layout
        if remapped:
            self.unlink()
            manifest: Manifest = []
            offset = 0
            for key, a in contiguous.items():
                offset = _aligned(offset)
                manifest.append({
                    "key": key,
                    "dtype": a.dtype.str,
                    "shape": list(a.shape),
                    "offset": offset,
                })
                offset += a.nbytes
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(offset, 1)
            )
            self._layout = layout
            self._manifest = manifest
        assert self._shm is not None
        for entry, a in zip(self._manifest, contiguous.values()):
            view = np.ndarray(
                a.shape, dtype=a.dtype,
                buffer=self._shm.buf, offset=int(entry["offset"]),
            )
            np.copyto(view, a)
            del view  # release the buffer export before any future close
        return self._shm.name, self._manifest, remapped

    def unlink(self) -> None:
        """Close and remove the segment (safe to call repeatedly)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):
            pass
        self._shm = None
        self._layout = None
        self._manifest = []

    def __del__(self) -> None:  # best-effort: the pool also unlinks
        try:
            self.unlink()
        except Exception:
            pass


def attach_arrays(
    name: str, manifest: Manifest
) -> Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]:
    """Worker-side attach: map the named segment and rebuild the views.

    Returns the mapped segment (the caller must keep it alive while the
    views are in use, and ``close()`` it afterwards) and a ``{key:
    ndarray}`` dict of zero-copy views per the manifest.
    """
    try:
        # ``track=False`` (3.13+) keeps the attaching process's resource
        # tracker out of a segment it does not own; the creating parent
        # is the sole unlinker.
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
        # Pre-3.13 there is no opt-out: the attach itself registered the
        # segment with this process's resource tracker, which would both
        # warn about a "leak" at exit and unlink a segment it doesn't
        # own.  Undo the registration; ownership stays with the parent.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm, views_from(shm, manifest)


def views_from(
    shm: shared_memory.SharedMemory, manifest: Manifest
) -> Dict[str, np.ndarray]:
    """Rebuild the manifest's ndarray views over an already-mapped segment."""
    return {
        str(entry["key"]): np.ndarray(
            tuple(entry["shape"]),
            dtype=np.dtype(str(entry["dtype"])),
            buffer=shm.buf,
            offset=int(entry["offset"]),
        )
        for entry in manifest
    }
