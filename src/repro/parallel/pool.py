"""The persistent probe worker pool.

Parent-side orchestration of the parallel probe backend: ``fork`` the
workers once (each inherits a private replica of the model), then per
step broadcast the frozen state through shared memory and fan the
step's distinct candidates out across the workers.

Determinism contract: a worker evaluates a candidate with exactly the
serial code path (:func:`repro.core.training.evaluate` over the same
pinned batches, same reduction order, IEEE-deterministic numpy kernels),
so the loss it returns is bit-identical to what the parent would have
computed — for any worker count, including 1.  The pool never reorders
anything the competition observes: results are collected into a dict
keyed by candidate and handed to the probe engine, which serves them in
the exact order the sequential Hedge loop asks.

Failure policy: anything that goes wrong *starting* the pool (no fork
on the platform, sandbox forbids shared memory or processes) raises
:class:`PoolError` at construction; anything that goes wrong mid-run
(worker died, queue timeout, worker shipped a non-divergence error)
raises :class:`PoolError` from :meth:`evaluate_candidates`.  The caller
(``CCQQuantizer``) treats both identically: log, close, and continue on
the bit-identical serial path.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .sharedmem import SharedArrayStore
from .worker import PINNED_PREFIX, worker_main

__all__ = ["PoolError", "ProbeWorkerPool", "ProbeTask"]

# (candidate key, member layer names, probed bit width)
ProbeTask = Tuple[Hashable, Sequence[str], int]

_START_TIMEOUT_S = 20.0
_RESULT_TIMEOUT_S = 120.0


class PoolError(RuntimeError):
    """The pool cannot start or cannot deliver results.

    Recoverable by design: the serial probe path computes identical
    losses, so the caller falls back instead of failing the run.
    """


class ProbeWorkerPool:
    """A persistent set of forked probe evaluators.

    Parameters
    ----------
    model:
        The live model; each worker inherits a copy-on-write replica at
        fork time and re-syncs its state from shared memory on every
        broadcast, so the fork-time snapshot's staleness never matters.
    n_workers:
        Number of worker processes (>= 1).
    quantize_activations:
        Mirror of ``CCQConfig.quantize_activations`` — whether a probe
        steps ``a_bits`` together with ``w_bits``.
    """

    def __init__(
        self,
        model,
        n_workers: int,
        quantize_activations: bool = True,
        start_timeout: float = _START_TIMEOUT_S,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._store = SharedArrayStore()
        self._workers: List[Any] = []
        self._command_queues: List[Any] = []
        self._closed = False
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as err:
            raise PoolError(f"fork start method unavailable: {err}") from err
        try:
            self._result_queue = ctx.Queue()
            for worker_id in range(n_workers):
                command_queue = ctx.Queue()
                process = ctx.Process(
                    target=worker_main,
                    args=(worker_id, model, quantize_activations,
                          command_queue, self._result_queue),
                    daemon=True,
                    name=f"probe-worker-{worker_id}",
                )
                process.start()
                self._command_queues.append(command_queue)
                self._workers.append(process)
            ready: set = set()
            while len(ready) < n_workers:
                try:
                    kind, worker_id = self._result_queue.get(
                        timeout=start_timeout
                    )
                except queue_module.Empty:
                    raise PoolError(
                        f"probe workers failed to start within "
                        f"{start_timeout:.0f}s "
                        f"({len(ready)}/{n_workers} ready)"
                    )
                if kind == "ready":
                    ready.add(worker_id)
        except PoolError:
            self.close()
            raise
        except Exception as err:
            self.close()
            raise PoolError(f"probe pool failed to start: {err}") from err

    # -- broadcast -----------------------------------------------------------

    def broadcast(
        self,
        state_arrays: Dict[str, np.ndarray],
        bit_config: Dict[str, Tuple[Optional[int], Optional[int]]],
        pinned_batches: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Ship the frozen state + pinned probe batches to every worker.

        Blocks until every worker acknowledges the sync, so a
        subsequent broadcast can safely overwrite the shared block.
        """
        self._check_alive()
        arrays: Dict[str, np.ndarray] = dict(state_arrays)
        for i, (images, labels) in enumerate(pinned_batches):
            arrays[f"{PINNED_PREFIX}{i}.images"] = images
            arrays[f"{PINNED_PREFIX}{i}.labels"] = labels
        name, manifest, _ = self._store.ensure(arrays)
        for command_queue in self._command_queues:
            command_queue.put(("sync", name, manifest, bit_config))
        acked: set = set()
        while len(acked) < self.n_workers:
            message = self._get_result(stage="sync")
            if message[0] == "synced":
                acked.add(message[1])
            # Stray eval results from an aborted previous step are
            # drained and dropped here; nothing else is in flight.

    # -- evaluation ----------------------------------------------------------

    def evaluate_candidates(
        self, tasks: Sequence[ProbeTask]
    ) -> Dict[Hashable, Dict[str, Any]]:
        """Fan ``tasks`` across the workers; return outcomes by key.

        Each outcome dict carries ``status`` (``"ok"`` | ``"diverged"``),
        ``loss`` or divergence context fields, ``elapsed`` seconds and
        the evaluating ``worker`` id.  A worker-side non-divergence
        error raises :class:`PoolError`.
        """
        self._check_alive()
        for i, (key, layer_names, bits) in enumerate(tasks):
            self._command_queues[i % self.n_workers].put(
                ("eval", i, list(layer_names), bits)
            )
        outcomes: Dict[Hashable, Dict[str, Any]] = {}
        pending = len(tasks)
        while pending:
            message = self._get_result(stage="eval")
            if message[0] != "result":
                continue  # late sync ack; harmless
            outcome = message[1]
            if outcome["status"] == "error":
                raise PoolError(
                    f"probe worker {outcome['worker']} failed: "
                    f"{outcome['message']}"
                )
            key = tasks[int(outcome["task_id"])][0]
            outcomes[key] = outcome
            pending -= 1
        return outcomes

    # -- plumbing ------------------------------------------------------------

    def _get_result(self, stage: str) -> Any:
        try:
            return self._result_queue.get(timeout=_RESULT_TIMEOUT_S)
        except queue_module.Empty:
            dead = [p.name for p in self._workers if not p.is_alive()]
            detail = f"; dead workers: {dead}" if dead else ""
            raise PoolError(
                f"timed out waiting for probe worker {stage} "
                f"result{detail}"
            )

    def _check_alive(self) -> None:
        if self._closed:
            raise PoolError("probe pool is closed")
        dead = [p.name for p in self._workers if not p.is_alive()]
        if dead:
            raise PoolError(f"probe workers died: {dead}")

    def close(self) -> None:
        """Stop the workers and release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for command_queue in self._command_queues:
            try:
                command_queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._workers:
            process.join(timeout=5.0)
        for process in self._workers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for command_queue in self._command_queues:
            try:
                command_queue.close()
            except (OSError, ValueError):
                pass
        try:
            self._result_queue.close()
        except (AttributeError, OSError, ValueError):
            pass
        self._store.unlink()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
