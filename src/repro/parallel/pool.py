"""The persistent probe worker pool.

Parent-side orchestration of the parallel probe backend: ``fork`` the
workers once (each inherits a private replica of the model), then per
step broadcast the frozen state through shared memory and fan the
step's distinct candidates out across the workers.

Determinism contract: a worker evaluates a candidate with exactly the
serial code path (:func:`repro.core.training.evaluate` over the same
pinned batches, same reduction order, IEEE-deterministic numpy kernels),
so the loss it returns is bit-identical to what the parent would have
computed — for any worker count, including 1.  The pool never reorders
anything the competition observes: results are collected into a dict
keyed by candidate and handed to the probe engine, which serves them in
the exact order the sequential Hedge loop asks.

Failure policy: anything that goes wrong *starting* the pool (no fork
on the platform, sandbox forbids shared memory or processes) raises
:class:`PoolError` at construction.  Mid-run faults are survivable:
the pool exposes the primitives a supervisor needs to heal them —
:meth:`respawn_worker` (terminate, re-fork, re-handshake, re-sync from
the cached broadcast), :meth:`submit`/:meth:`next_message` for
salvage-aware collection, and generation-tagged results so a stale
answer from an aborted round can never be mistaken for a fresh one.
The legacy one-shot :meth:`evaluate_candidates` keeps the old
all-or-nothing semantics (any fault raises :class:`PoolError`); the
supervised path lives in :mod:`repro.parallel.supervisor`.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..telemetry import NULL_TELEMETRY, Telemetry
from .sharedmem import SharedArrayStore
from .worker import PINNED_PREFIX, worker_main

__all__ = ["PoolError", "ProbeWorkerPool", "ProbeTask"]

# (candidate key, member layer names, probed bit width)
ProbeTask = Tuple[Hashable, Sequence[str], int]

_START_TIMEOUT_S = 20.0
_RESULT_TIMEOUT_S = 120.0


class PoolError(RuntimeError):
    """The pool cannot start or cannot deliver results.

    Recoverable by design: the serial probe path computes identical
    losses, so the caller falls back instead of failing the run.
    """


class ProbeWorkerPool:
    """A persistent set of forked probe evaluators.

    Parameters
    ----------
    model:
        The live model; each worker inherits a copy-on-write replica at
        fork time and re-syncs its state from shared memory on every
        broadcast, so the fork-time snapshot's staleness never matters.
    n_workers:
        Number of worker processes (>= 1).
    quantize_activations:
        Mirror of ``CCQConfig.quantize_activations`` — whether a probe
        steps ``a_bits`` together with ``w_bits``.
    result_timeout:
        Per-wait timeout of the legacy :meth:`evaluate_candidates` path
        (the supervised path computes its own adaptive deadlines).
    telemetry:
        Structured-log sink for worker lifecycle events (exit codes at
        close, respawn handshakes).  Defaults to the no-op singleton.
    """

    def __init__(
        self,
        model,
        n_workers: int,
        quantize_activations: bool = True,
        start_timeout: float = _START_TIMEOUT_S,
        result_timeout: float = _RESULT_TIMEOUT_S,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.result_timeout = result_timeout
        self._model = model
        self._quantize_activations = quantize_activations
        self._start_timeout = start_timeout
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Workers capture their own telemetry (events-w<id>.jsonl +
        # metrics-w<id>.json) in the parent's run directory when it has
        # one; with directory-less or disabled telemetry they stay dark.
        self._worker_telemetry_dir: Optional[str] = (
            str(self._telemetry.directory)
            if self._telemetry.enabled
            and self._telemetry.directory is not None
            else None
        )
        self._store = SharedArrayStore()
        # Recovery train rounds broadcast per-batch (state + shard
        # slices) through their own store: the probe layout and the
        # train layout differ, and sharing one segment would make each
        # broadcast a layout change (unlink + re-create) instead of an
        # in-place refresh.
        self._train_store = SharedArrayStore()
        self._workers: List[Any] = []
        self._command_queues: List[Any] = []
        self._closed = False
        # Messages popped while waiting for something else (e.g. a
        # healthy worker's result arriving during a respawn handshake)
        # are stashed, not dropped — that is what makes salvage work.
        self._stash: Deque[Any] = deque()
        # The last broadcast, kept so a respawned worker can be
        # re-synced without the caller re-packing the shared segment.
        self._last_sync: Optional[Tuple[str, Any, Any]] = None
        self._sync_seq = 0
        self._eval_gen = 0
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as err:
            raise PoolError(f"fork start method unavailable: {err}") from err
        try:
            self._result_queue = self._ctx.Queue()
            for worker_id in range(n_workers):
                self._command_queues.append(None)
                self._workers.append(None)
                self._spawn(worker_id)
            self._await_ready(range(n_workers), start_timeout)
        except PoolError:
            self.close()
            raise
        except Exception as err:
            self.close()
            raise PoolError(f"probe pool failed to start: {err}") from err

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, worker_id: int) -> None:
        command_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self._model, self._quantize_activations,
                  command_queue, self._result_queue,
                  self._worker_telemetry_dir),
            daemon=True,
            name=f"probe-worker-{worker_id}",
        )
        process.start()
        self._command_queues[worker_id] = command_queue
        self._workers[worker_id] = process

    def _await_ready(self, worker_ids: Iterable[int], timeout: float) -> None:
        wanted = set(worker_ids)
        ready: set = set()
        deadline = time.monotonic() + timeout
        while ready < wanted:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise PoolError(
                    f"probe workers failed to start within {timeout:.0f}s "
                    f"({len(ready)}/{len(wanted)} ready)"
                )
            # Read the queue directly (NOT next_message): anything in
            # the stash was already triaged, and re-triaging it here
            # would spin on it forever without draining the queue.
            message = self._queue_get(timeout=min(0.5, remaining))
            if message is None:
                # Queue is quiet — only now is a missing worker's death
                # conclusive (its "ready" could still have been queued).
                dead = sorted(set(self.dead_workers()) & (wanted - ready))
                if dead:
                    raise PoolError(
                        f"worker(s) {dead} died before handshake"
                    )
                continue
            kind = message[0]
            if kind == "ready" and message[1] in wanted:
                ready.add(message[1])
            elif kind == "result":
                # A healthy worker's result landing mid-handshake: keep
                # it for the collector.
                self._stash.append(message)
            # Stale "synced" acks (pre-respawn) are dropped.

    def respawn_worker(self, worker_id: int) -> None:
        """Terminate, re-fork, re-handshake and re-sync one worker.

        The new process inherits the *current* model replica at fork
        time and is immediately re-synced from the cached broadcast, so
        from the supervisor's point of view it is indistinguishable
        from a worker that never died.
        """
        if self._closed:
            raise PoolError("probe pool is closed")
        if not 0 <= worker_id < self.n_workers:
            raise PoolError(f"no such worker: {worker_id}")
        old = self._workers[worker_id]
        if old is not None:
            if old.is_alive():
                old.terminate()
                old.join(timeout=5.0)
                if old.is_alive() and hasattr(old, "kill"):
                    old.kill()
                    old.join(timeout=5.0)
            else:
                old.join(timeout=1.0)
            self._log_exit(worker_id, old, during="respawn")
        old_queue = self._command_queues[worker_id]
        if old_queue is not None:
            try:
                old_queue.close()
            except (OSError, ValueError):
                pass
        try:
            self._spawn(worker_id)
        except Exception as err:
            raise PoolError(
                f"failed to re-fork worker {worker_id}: {err}"
            ) from err
        self._await_ready({worker_id}, self._start_timeout)
        if self._last_sync is not None:
            self.sync_worker(worker_id)

    def alive_workers(self) -> List[int]:
        return [
            worker_id
            for worker_id, process in enumerate(self._workers)
            if process is not None and process.is_alive()
        ]

    def dead_workers(self) -> List[int]:
        return [
            worker_id
            for worker_id, process in enumerate(self._workers)
            if process is not None and not process.is_alive()
        ]

    # -- broadcast -----------------------------------------------------------

    def broadcast(
        self,
        state_arrays: Dict[str, np.ndarray],
        bit_config: Dict[str, Tuple[Optional[int], Optional[int]]],
        pinned_batches: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Ship the frozen state + pinned probe batches to every worker.

        Blocks until every worker acknowledges the sync, so a
        subsequent broadcast can safely overwrite the shared block.
        """
        self._check_alive()
        # A new broadcast starts a new step: anything still stashed or
        # queued from the previous round is stale by construction.
        self._stash.clear()
        arrays: Dict[str, np.ndarray] = dict(state_arrays)
        for i, (images, labels) in enumerate(pinned_batches):
            arrays[f"{PINNED_PREFIX}{i}.images"] = images
            arrays[f"{PINNED_PREFIX}{i}.labels"] = labels
        name, manifest, _ = self._store.ensure(arrays)
        self._sync_seq += 1
        self._last_sync = (name, manifest, bit_config)
        for command_queue in self._command_queues:
            command_queue.put(
                ("sync", name, manifest, bit_config, self._sync_seq)
            )
        self._await_synced(set(range(self.n_workers)))

    def sync_worker(self, worker_id: int) -> None:
        """Re-send the cached broadcast to one (respawned) worker."""
        if self._last_sync is None:
            raise PoolError("no broadcast to re-sync from")
        name, manifest, bit_config = self._last_sync
        self._command_queues[worker_id].put(
            ("sync", name, manifest, bit_config, self._sync_seq)
        )
        self._await_synced({worker_id})

    def _await_synced(self, wanted: set) -> None:
        acked: set = set()
        deadline = time.monotonic() + self.result_timeout
        while acked < wanted:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise PoolError(
                    "timed out waiting for probe worker sync ack "
                    f"({sorted(wanted - acked)} missing)"
                )
            message = self._queue_get(timeout=min(0.5, remaining))
            if message is None:
                dead = sorted(set(self.dead_workers()) & (wanted - acked))
                if dead:
                    raise PoolError(
                        f"worker(s) {dead} died before acking sync"
                    )
                continue
            kind = message[0]
            if kind == "synced":
                if len(message) > 2 and message[2] != self._sync_seq:
                    continue  # ack of a superseded broadcast
                if message[1] in wanted:
                    acked.add(message[1])
            elif kind == "result":
                # A straggler's result from the current round arriving
                # while a respawned worker re-syncs: keep it.
                self._stash.append(message)

    def train_broadcast(
        self, arrays: Dict[str, np.ndarray]
    ) -> Tuple[str, Any]:
        """Stage one recovery batch (state + shard slices) in shared
        memory; returns ``(segment name, manifest)`` for ``rtrain``
        submissions.

        Unlike :meth:`broadcast` there is no sync ack: workers read the
        segment lazily when their shard command arrives, and the parent
        collects every shard result (or writes the shard off) before
        the next train broadcast can overwrite the block — so no live
        reader ever races the refresh.
        """
        if self._closed:
            raise PoolError("probe pool is closed")
        name, manifest, _ = self._train_store.ensure(arrays)
        return name, manifest

    def submit_train(
        self,
        worker_id: int,
        shard_id: int,
        name: str,
        manifest: Any,
        bit_config: Dict[str, Tuple[Optional[int], Optional[int]]],
        batch_seq: int,
        batch_total: int,
        trace: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Queue one recovery shard on a specific worker.

        ``batch_seq`` keys the worker-side state reload: a worker
        running several shards of the same batch loads the broadcast
        weights once.
        """
        if self._closed:
            raise PoolError("probe pool is closed")
        message: Tuple[Any, ...] = (
            "rtrain", self._eval_gen, batch_seq, name, manifest,
            bit_config, shard_id, batch_total,
        )
        if trace is not None:
            stamped = dict(trace)
            stamped["submitted_ts"] = time.time()
            message = message + (stamped,)
        self._command_queues[worker_id].put(message)

    # -- evaluation ----------------------------------------------------------

    def begin_round(self) -> int:
        """Start a new evaluation round; returns its generation tag.

        Results carry the generation they were submitted under, so a
        late answer from an aborted round is recognisably stale.
        """
        self._eval_gen += 1
        return self._eval_gen

    def submit(
        self,
        worker_id: int,
        task_id: int,
        layer_names: Sequence[str],
        bits: int,
        trace: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Queue one candidate evaluation on a specific worker.

        ``trace`` is an optional cross-process trace context (the
        parent's fan-out span id and step).  The submit wall clock is
        stamped here — ``time.time()`` is the only clock both sides of
        the fork share — so the worker can report how long the command
        sat in the queue before compute started.
        """
        if self._closed:
            raise PoolError("probe pool is closed")
        message: Tuple[Any, ...] = (
            "eval", self._eval_gen, task_id, list(layer_names), bits,
        )
        if trace is not None:
            stamped = dict(trace)
            stamped["submitted_ts"] = time.time()
            message = message + (stamped,)
        self._command_queues[worker_id].put(message)

    def _queue_get(self, timeout: float) -> Optional[Any]:
        """Pop straight from the result queue, or None on timeout."""
        try:
            return self._result_queue.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def next_message(self, timeout: float) -> Optional[Any]:
        """Pop the next worker message (stash first), or None on timeout."""
        if self._stash:
            return self._stash.popleft()
        return self._queue_get(timeout=timeout)

    def evaluate_candidates(
        self,
        tasks: Sequence[ProbeTask],
        timeout: Optional[float] = None,
    ) -> Dict[Hashable, Dict[str, Any]]:
        """Fan ``tasks`` across the workers; return outcomes by key.

        The legacy all-or-nothing path: each outcome dict carries
        ``status`` (``"ok"`` | ``"diverged"``), ``loss`` or divergence
        context fields, ``elapsed`` seconds and the evaluating
        ``worker`` id.  A worker-side non-divergence error, a dead
        worker or a timeout raises :class:`PoolError` (no salvage — use
        :class:`~repro.parallel.supervisor.PoolSupervisor` for that).
        """
        self._check_alive()
        wait = self.result_timeout if timeout is None else timeout
        gen = self.begin_round()
        for i, (key, layer_names, bits) in enumerate(tasks):
            self.submit(i % self.n_workers, i, layer_names, bits)
        outcomes: Dict[Hashable, Dict[str, Any]] = {}
        pending = len(tasks)
        while pending:
            message = self.next_message(timeout=wait)
            if message is None:
                dead = [
                    self._workers[w].name for w in self.dead_workers()
                ]
                detail = f"; dead workers: {dead}" if dead else ""
                raise PoolError(
                    f"timed out waiting for probe worker eval "
                    f"result{detail}"
                )
            if message[0] != "result":
                continue  # late sync ack; harmless
            outcome = message[1]
            if outcome.get("gen") not in (None, gen):
                continue  # stale result from an aborted round
            if outcome["status"] == "error":
                raise PoolError(
                    f"probe worker {outcome['worker']} failed: "
                    f"{outcome['message']}"
                )
            key = tasks[int(outcome["task_id"])][0]
            outcomes[key] = outcome
            pending -= 1
        return outcomes

    # -- plumbing ------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._closed:
            raise PoolError("probe pool is closed")
        dead = [
            self._workers[w].name for w in self.dead_workers()
        ]
        if dead:
            raise PoolError(f"probe workers died: {dead}")

    def _log_exit(self, worker_id: int, process: Any, during: str) -> None:
        code = process.exitcode
        if code in (0, None):
            return
        self._telemetry.logger.warning(
            "probe worker exited abnormally",
            worker=worker_id, exitcode=code, during=during,
        )

    def close(self) -> None:
        """Stop the workers and release the shared segment (idempotent).

        Worker exit statuses are drained and nonzero codes logged
        through the structured logger — a worker that died of a signal
        or a crash should leave a trace, not vanish silently.
        """
        if self._closed:
            return
        self._closed = True
        for command_queue in self._command_queues:
            if command_queue is None:
                continue
            try:
                command_queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._workers:
            if process is not None:
                process.join(timeout=5.0)
        for process in self._workers:
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for worker_id, process in enumerate(self._workers):
            if process is not None:
                self._log_exit(worker_id, process, during="close")
        for command_queue in self._command_queues:
            if command_queue is None:
                continue
            try:
                command_queue.close()
            except (OSError, ValueError):
                pass
        try:
            self._result_queue.close()
        except (AttributeError, OSError, ValueError):
            pass
        self._store.unlink()
        self._train_store.unlink()

    def __del__(self) -> None:
        # Interpreter-teardown cleanup only.  Narrow catches: a
        # PoolError (or any real bug) surfacing here must not be
        # swallowed into silence the way a bare ``except Exception``
        # used to.
        try:
            self.close()
        except (OSError, ValueError, AttributeError):
            pass
