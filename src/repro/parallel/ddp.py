"""Data-parallel recovery fine-tuning over the probe worker pool.

The collaboration stage dominates CCQ wall-clock (see the ``report-run``
stage breakdowns), and — unlike probing — it *trains*: every batch ends
in an optimizer step, so the parallelism has to preserve the SGD
trajectory, not just individual losses.  This module shards each
training batch across the existing fork-based worker pool and combines
the per-shard gradients with a deterministic fixed-order all-reduce.

Determinism contract
--------------------
The unit of work is the **canonical shard plan**: a batch of ``B``
samples is split into ``G = grad_shards`` contiguous slices (sizes
``B // G``, the first ``B % G`` slices one larger) — a pure function of
``(B, G)``, independent of how many workers exist or which worker runs
which shard.  Each shard computes

    ``loss_s = cross_entropy(model(x_s), y_s)``           (task loss)
    ``total_s = loss_s * (n_s / B) [+ reg  if s == 0]``   (backward root)

with exactly the serial kernels, and ships its gradient list (in
:func:`repro.core.training.trainable_parameters` order), its task loss,
and its captured BatchNorm batch statistics.  The parent then:

1. folds the batch task loss ``sum_s loss_s * (n_s / B)`` in shard
   order (python floats — one canonical reduction order);
2. all-reduces each parameter's gradient in shard order
   (``red = g_0.copy(); red += g_1; ...`` — the same
   ``copy()``-then-``+=`` accumulation the autograd tape uses for
   repeated leaves);
3. replays the BatchNorm running-stat EMA folds in shard order (shard
   batch statistics depend only on the shard data, never on the
   buffers, so capture-and-replay is bitwise identical to computing
   the shards sequentially in one process);
4. runs the divergence checks and the (parent-only) optimizer step.

Every number above is a pure function of the shard plan, so the weight
trajectory is **bit-identical for any worker count** — including 0,
where the shards run sequentially in-process through the *same*
:func:`compute_shard_grad` and the same reduce.  Worker count is
therefore trajectory-invariant (like ``probe_workers``), while
``grad_shards`` and the trainer choice itself are trajectory-defining
(they change the gradient reduction order versus a whole-batch
backward) and live in the fingerprinted :class:`RecoveryConfig`.

Failure policy
--------------
Shard rounds run under the same :class:`~repro.parallel.supervisor.
PoolSupervisor` budget as probe rounds: dead workers are respawned and
their shards requeued once; whatever is still missing at the deadline
is recomputed in-process by the parent (bit-identical by the contract
above, so a fault never perturbs the trajectory).  When the respawn
budget runs out the trainer degrades to in-process sharding for the
rest of the run and reports through ``on_fallback``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.resilience import ensure_all_finite, ensure_finite
from ..core.training import trainable_parameters
from ..nn import functional as F
from ..nn.modules import (
    BatchNorm2d,
    Module,
    collect_bn_batch_stats,
    fold_bn_batch_stats,
)
from ..nn.serialization import named_state_arrays
from ..nn.tensor import Tensor
from ..quantization.qmodules import collect_regularization, get_bit_config
from ..telemetry import NULL_TELEMETRY, Telemetry
from .worker import DDP_PREFIX

__all__ = [
    "plan_shards",
    "compute_shard_grad",
    "reduce_shard_outcomes",
    "DDPTrainer",
]

# One shard's result: the same dict schema whether it was computed in a
# worker (and pickled over the result queue) or in-process.
ShardOutcome = Dict[str, Any]


def plan_shards(batch_size: int, n_shards: int) -> List[Tuple[int, int]]:
    """The canonical shard plan: contiguous ``(start, stop)`` slices.

    A pure function of ``(batch_size, n_shards)`` — never of the worker
    count — so every execution venue agrees on what the shards are.
    Shards never go empty: a batch smaller than ``n_shards`` simply
    yields fewer shards.
    """
    n = max(1, min(int(n_shards), int(batch_size)))
    base, extra = divmod(int(batch_size), n)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for s in range(n):
        stop = start + base + (1 if s < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def bn_module_names(model: Module) -> Dict[int, str]:
    """``id(module) -> dotted name`` for every BatchNorm in the tree.

    Module-tree traversal order is deterministic, so a forked replica
    builds exactly the same mapping as the parent — the names are how
    captured batch statistics travel across the process boundary.
    """
    return {
        id(module): name
        for name, module in model.named_modules()
        if isinstance(module, BatchNorm2d)
    }


def compute_shard_grad(
    model: Module,
    params: Sequence[Any],
    bn_names: Dict[int, str],
    images: np.ndarray,
    labels: np.ndarray,
    shard_index: int,
    batch_total: int,
) -> ShardOutcome:
    """One shard's scaled forward/backward; the venue-independent kernel.

    Runs identically inside a worker replica and in the parent (the
    in-process path and the missing-shard salvage path), which is what
    makes "where a shard ran" invisible to the trajectory.  BatchNorm
    running stats are *captured*, not applied — the caller replays them
    in canonical shard order.  The quantizer regularization (PACT's
    alpha penalty) is attached to shard 0 only, unscaled, so the batch
    total matches the serial trainer's ``loss + reg`` exactly once.
    """
    for p in params:
        p.grad = None
    model.train()
    t0 = time.perf_counter()
    sink: List[Tuple[BatchNorm2d, np.ndarray, np.ndarray]] = []
    with collect_bn_batch_stats(sink):
        logits = model(Tensor(images))
        loss = F.cross_entropy(logits, labels)
        scale = float(len(labels)) / float(batch_total)
        total = loss * scale
        reg = collect_regularization(model) if shard_index == 0 else None
        if reg is not None:
            total = total + reg
        total.backward()
    return {
        "kind": "train",
        "task_id": int(shard_index),
        "status": "ok",
        "loss": float(loss.item()),
        "n": int(len(labels)),
        "reg": None if reg is None else float(reg.item()),
        "grads": [p.grad for p in params],
        "bn": [
            (bn_names[id(module)], mean, var)
            for module, mean, var in sink
        ],
        "elapsed": time.perf_counter() - t0,
    }


def reduce_shard_outcomes(
    outcomes: Sequence[ShardOutcome],
    params: Sequence[Any],
    bn_modules: Dict[str, BatchNorm2d],
    batch_total: int,
) -> Tuple[float, float]:
    """The deterministic all-reduce: fold ``outcomes`` (in shard order)
    into parameter gradients and BatchNorm buffers.

    Returns ``(task_loss, total_loss)`` — the batch task loss and the
    task-plus-regularization value the divergence guard checks.  The
    gradient fold mirrors the autograd tape's leaf accumulation
    (``copy()`` then ``+=``), and the BN replay mirrors the training
    forward's EMA fold, so the result is bitwise identical to running
    the shards sequentially in one process.
    """
    task_loss = 0.0
    reg_value: Optional[float] = None
    for outcome in outcomes:
        task_loss += float(outcome["loss"]) * (
            float(outcome["n"]) / float(batch_total)
        )
        if outcome.get("reg") is not None:
            reg_value = float(outcome["reg"])
    total_loss = task_loss if reg_value is None else task_loss + reg_value
    for j, p in enumerate(params):
        reduced: Optional[np.ndarray] = None
        for outcome in outcomes:
            g = outcome["grads"][j]
            if g is None:
                continue
            g = np.asarray(g, dtype=p.data.dtype)
            if reduced is None:
                reduced = g.copy()
            else:
                reduced += g
        p.grad = reduced
    for outcome in outcomes:
        for name, mean, var in outcome["bn"]:
            fold_bn_batch_stats(
                bn_modules[name], np.asarray(mean), np.asarray(var)
            )
    return task_loss, total_loss


class DDPTrainer:
    """Drop-in ``train_epoch`` strategy that shards batches over the pool.

    Callable with the exact :func:`repro.core.training.train_epoch`
    signature, so :func:`repro.core.collaboration.recover` (and the
    initial-recovery loop) can swap it in without knowing anything
    about pools.  ``workers == 0`` — or a pool that cannot start, or a
    supervision budget that runs out — runs the same canonical shards
    sequentially in-process: same numbers, no forks.

    Parameters
    ----------
    model:
        The live model (the parent's; workers hold replicas).
    grad_shards:
        ``G`` of the canonical shard plan (trajectory-defining).
    workers:
        Max worker processes to fan shards over (trajectory-invariant).
    pool_getter / supervisor_getter:
        Lazy providers of the shared :class:`ProbeWorkerPool` and
        :class:`PoolSupervisor`; ``pool_getter`` returning ``None``
        means "train in-process".  Lazy so serial configs never fork.
    on_fallback:
        Called once with a reason string when the trainer degrades to
        in-process sharding for good.
    """

    def __init__(
        self,
        model: Module,
        grad_shards: int = 4,
        workers: int = 0,
        pool_getter: Optional[Callable[[], Any]] = None,
        supervisor_getter: Optional[Callable[[], Any]] = None,
        telemetry: Optional[Telemetry] = None,
        on_fallback: Optional[Callable[[str], None]] = None,
    ) -> None:
        if grad_shards < 1:
            raise ValueError(f"grad_shards must be >= 1, got {grad_shards}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.model = model
        self.grad_shards = int(grad_shards)
        self.workers = int(workers)
        self._pool_getter = pool_getter
        self._supervisor_getter = supervisor_getter
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._on_fallback = on_fallback
        self._degraded = False
        self._params: Optional[List[Any]] = None
        self._bn_names: Optional[Dict[int, str]] = None
        self._bn_modules: Optional[Dict[str, BatchNorm2d]] = None
        # Monotonic per-batch state version: cues workers to reload the
        # broadcast weights exactly once per batch even when they run
        # several shards of it.
        self._batch_seq = 0
        self._owned_pool: Optional[Any] = None
        self._owned_supervisor: Optional[Any] = None

    # -- standalone construction (benchmarks, scripts, tests) ---------------

    @classmethod
    def standalone(
        cls,
        model: Module,
        workers: int,
        grad_shards: int = 4,
        quantize_activations: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> "DDPTrainer":
        """A self-contained trainer owning its own pool and supervisor.

        For callers outside a :class:`CCQQuantizer` run (the search-cost
        benchmark, ``verify_ddp.sh``).  Call :meth:`close` when done.
        """
        pool = None
        if workers > 0:
            from . import create_probe_pool

            pool = create_probe_pool(
                model, workers, quantize_activations, telemetry=telemetry
            )
        from .supervisor import PoolSupervisor, SupervisionConfig

        supervisor = PoolSupervisor(SupervisionConfig(), telemetry=telemetry)
        trainer = cls(
            model,
            grad_shards=grad_shards,
            workers=workers,
            pool_getter=(lambda: pool),
            supervisor_getter=(lambda: supervisor),
            telemetry=telemetry,
        )
        trainer._owned_pool = pool
        trainer._owned_supervisor = supervisor
        return trainer

    def close(self) -> None:
        """Tear down a standalone trainer's pool (idempotent)."""
        pool = self._owned_pool
        self._owned_pool = None
        if pool is not None:
            pool.close()

    @property
    def degraded(self) -> bool:
        return self._degraded

    # -- the epoch loop ------------------------------------------------------

    def __call__(
        self,
        model: Module,
        loader: Any,
        optimizer: Any,
        max_batches: Optional[int] = None,
        check_divergence: bool = True,
        telemetry: Optional[object] = None,
    ) -> float:
        return self.train_epoch(
            model, loader, optimizer,
            max_batches=max_batches,
            check_divergence=check_divergence,
            telemetry=telemetry,
        )

    def train_epoch(
        self,
        model: Module,
        loader: Any,
        optimizer: Any,
        max_batches: Optional[int] = None,
        check_divergence: bool = True,
        telemetry: Optional[object] = None,
    ) -> float:
        """One sharded quantization-aware epoch; mean task loss.

        The batch sequence is driven by ``loader`` exactly as the serial
        trainer drives it — one ``next()`` per batch, the same
        ``max_batches`` cap check — so the shuffle RNG advances
        identically and a cap that is not divisible by the worker count
        still consumes exactly the serial batch sequence (the shard
        plan splits *within* a batch, never across batches).
        """
        tel = telemetry if telemetry is not None else self.telemetry
        observe = tel is not None and getattr(tel, "enabled", False)
        params, bn_modules = self._ensure_meta(model, optimizer)
        t0 = time.perf_counter() if observe else 0.0
        n_samples = 0
        model.train()
        losses: List[float] = []
        pool, supervisor, n_workers = self._fanout_state()
        with tel.span(
            "recover_fanout",
            shards=self.grad_shards, workers=n_workers,
        ) as epoch_span:
            trace = {
                "trace_id": f"recover{self._batch_seq}",
                "parent_span": getattr(epoch_span, "span_id", None),
                "step": None,
            }
            for batch_index, (images, labels) in enumerate(loader):
                if max_batches is not None and batch_index >= max_batches:
                    break
                n_samples += len(labels)
                losses.append(
                    self._train_batch(
                        model, optimizer, params, bn_modules,
                        images, labels, batch_index,
                        pool, supervisor, n_workers,
                        tel, check_divergence, trace,
                    )
                )
                # A fault mid-epoch may have degraded the fan-out; the
                # remaining batches go in-process without re-checking
                # the pool every time.
                if self._degraded and pool is not None:
                    pool, supervisor, n_workers = (None, None, 0)
        if not losses:
            raise RuntimeError("training loader produced no batches")
        if observe:
            elapsed = time.perf_counter() - t0
            tel.histogram("train.samples_per_sec").observe(
                n_samples / max(elapsed, 1e-9)
            )
            tel.counter("train.samples").inc(n_samples)
            tel.gauge("train.lr").set(optimizer.lr)
        return float(np.mean(losses))

    # -- one batch -----------------------------------------------------------

    def _train_batch(
        self,
        model: Module,
        optimizer: Any,
        params: List[Any],
        bn_modules: Dict[str, BatchNorm2d],
        images: np.ndarray,
        labels: np.ndarray,
        batch_index: int,
        pool: Optional[Any],
        supervisor: Optional[Any],
        n_workers: int,
        tel: Any,
        check_divergence: bool,
        trace: Optional[Dict[str, Any]],
    ) -> float:
        observe = tel is not None and getattr(tel, "enabled", False)
        t_batch = time.perf_counter()
        self._batch_seq += 1
        batch_total = len(labels)
        bounds = plan_shards(batch_total, self.grad_shards)
        outcomes: List[Optional[ShardOutcome]] = [None] * len(bounds)
        fanned_out = 0
        if pool is not None and supervisor is not None and len(bounds) > 1:
            fanned_out = self._fan_out_batch(
                model, pool, supervisor, n_workers,
                images, labels, bounds, batch_total, outcomes, tel, trace,
            )
        # In-process pass: everything not (successfully) fanned out —
        # all shards when serial, the missing ones when salvaging.
        for shard_index, (start, stop) in enumerate(bounds):
            if outcomes[shard_index] is None:
                outcomes[shard_index] = compute_shard_grad(
                    model, params, self._bn_names,
                    images[start:stop], labels[start:stop],
                    shard_index, batch_total,
                )
        optimizer.zero_grad()
        t_reduce = time.perf_counter()
        task_loss, total_loss = reduce_shard_outcomes(
            outcomes, params, bn_modules, batch_total
        )
        if check_divergence:
            ensure_finite(
                total_loss, "training loss",
                stage="train", batch_index=batch_index,
            )
            for p in optimizer.params:
                if p.grad is not None:
                    ensure_all_finite(
                        p.grad, "parameter gradient",
                        stage="train", batch_index=batch_index,
                    )
        optimizer.step()
        if observe:
            now = time.perf_counter()
            tel.histogram("ccq.recover_allreduce_s").observe(now - t_reduce)
            tel.histogram("ccq.recover_batch_s").observe(now - t_batch)
            tel.gauge("ccq.recover_active_shards").set(float(fanned_out))
            tel.gauge("ccq.recover_allreduce_round").set(
                float(self._batch_seq)
            )
        return task_loss

    def _fan_out_batch(
        self,
        model: Module,
        pool: Any,
        supervisor: Any,
        n_workers: int,
        images: np.ndarray,
        labels: np.ndarray,
        bounds: List[Tuple[int, int]],
        batch_total: int,
        outcomes: List[Optional[ShardOutcome]],
        tel: Any,
        trace: Optional[Dict[str, Any]],
    ) -> int:
        """Run the shard round on the pool; fill ``outcomes`` in place.

        Returns how many shards the workers actually delivered.  Any
        fault short of a supervisor/pool crash leaves the missing
        shards ``None`` for the in-process salvage pass.
        """
        arrays: Dict[str, np.ndarray] = dict(named_state_arrays(model))
        for shard_index, (start, stop) in enumerate(bounds):
            arrays[f"{DDP_PREFIX}{shard_index}.images"] = images[start:stop]
            arrays[f"{DDP_PREFIX}{shard_index}.labels"] = labels[start:stop]
        try:
            delivered, report = supervisor.run_train_round(
                pool,
                arrays,
                get_bit_config(model),
                self._batch_seq,
                list(range(len(bounds))),
                batch_total,
                n_workers,
                trace=trace,
            )
        except Exception as err:
            self._mark_degraded(f"train round failed: {err}")
            return 0
        for shard_index, outcome in delivered.items():
            outcomes[shard_index] = outcome
        for fault in report.faults:
            tel.logger.warning(
                "recovery fan-out fault absorbed; shard salvaged "
                "in-process", fault=fault,
            )
        if report.respawned:
            tel.counter("ccq.pool_respawns").inc(report.respawned)
        if report.requeued:
            tel.counter("ccq.pool_requeued").inc(report.requeued)
        if report.degraded:
            self._mark_degraded("respawn budget exhausted")
        return len(delivered)

    # -- plumbing ------------------------------------------------------------

    def _fanout_state(self) -> Tuple[Optional[Any], Optional[Any], int]:
        if (
            self._degraded
            or self.workers <= 0
            or self._pool_getter is None
            or self.grad_shards < 2
        ):
            return None, None, 0
        try:
            pool = self._pool_getter()
        except Exception as err:
            self._mark_degraded(f"pool unavailable: {err}")
            return None, None, 0
        if pool is None:
            return None, None, 0
        supervisor = (
            self._supervisor_getter()
            if self._supervisor_getter is not None else None
        )
        if supervisor is None:
            return None, None, 0
        return pool, supervisor, min(self.workers, pool.n_workers)

    def _mark_degraded(self, reason: str) -> None:
        if self._degraded:
            return
        self._degraded = True
        self.telemetry.logger.warning(
            "recovery fan-out degraded; training shards in-process",
            reason=reason,
        )
        if self._on_fallback is not None:
            self._on_fallback(reason)

    def _ensure_meta(
        self, model: Module, optimizer: Any
    ) -> Tuple[List[Any], Dict[str, BatchNorm2d]]:
        if self._params is None or model is not self.model:
            self.model = model
            self._params = trainable_parameters(model)
            self._bn_names = bn_module_names(model)
            self._bn_modules = {
                name: module
                for name, module in model.named_modules()
                if isinstance(module, BatchNorm2d)
            }
        known = {id(p) for p in self._params}
        extra = [p for p in optimizer.params if id(p) not in known]
        if extra:
            raise ValueError(
                "DDP recovery requires every optimizer parameter to be "
                f"enumerable from the model; {len(extra)} are not "
                "(build the optimizer with make_sgd)"
            )
        return self._params, self._bn_modules
