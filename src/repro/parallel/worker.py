"""The probe-worker child process loop.

Each worker owns a private replica of the model (inherited through the
``fork`` at pool start) and serves two commands from its queue:

``sync``
    Re-attach (if the segment changed) the shared-memory broadcast,
    copy the frozen state into the replica, apply the bit
    configuration, and rebuild the pinned probe batches.  After a sync
    the replica is byte-identical to the parent's model.

``rtrain``
    One recovery shard: reload the train-broadcast state (once per
    batch, keyed on the batch sequence number), run the canonical
    scaled forward/backward of :func:`repro.parallel.ddp.
    compute_shard_grad` on this shard's slice, and ship the gradient
    list plus captured BatchNorm batch statistics.  The parent folds
    shards in canonical order, so which worker ran which shard is
    invisible to the trajectory.

``eval``
    Set one candidate's layers to its probed bit width, run the exact
    serial evaluation (:func:`repro.core.training.evaluate` over the
    pinned batches — same reduction order, same ``no_grad`` fast path),
    restore the bits, and ship ``(loss, elapsed)`` back.  A
    :class:`~repro.core.resilience.DivergenceError` is not an error
    here: its context fields are shipped so the parent can re-raise a
    faithful reconstruction at the moment the competition actually
    consumes the candidate (keeping journals identical to a serial
    run).  Any other exception is shipped as ``status="error"`` and
    makes the parent fall back to the serial path.

Workers never touch journals or checkpoints — persistence stays
single-writer in the parent.  Telemetry, by contrast, is captured
*in-process* when the parent passes a ``telemetry_dir``: each worker
runs its own registry + span tracer writing ``events-w<id>.jsonl`` and
``metrics-w<id>.json`` (single-writer per file, so there is still no
shared mutable observer state).  Eval commands carry a trace context
(``trace_id``/parent span id stamped by the parent, plus the submit
wall-clock), so a fan-out round reassembles into one coherent
cross-process trace and the queue-wait vs. compute split is measurable
— see :mod:`repro.telemetry.aggregate`.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from typing import Dict, List, Optional

import numpy as np

__all__ = ["worker_main", "PINNED_PREFIX", "DDP_PREFIX", "FAULT_HOOK"]

# Broadcast keys carrying pinned probe batches instead of model state.
PINNED_PREFIX = "pinned."

# Train-broadcast keys carrying one recovery shard's batch slice
# (``ddp.<shard>.images`` / ``ddp.<shard>.labels``) instead of model
# state.  Recovery rounds use a segment separate from the probe
# broadcast so the two layouts never thrash each other's signature.
DDP_PREFIX = "ddp."

# How long a worker blocks on its command queue before re-checking that
# the parent is still alive (so an orphaned worker exits on its own).
_POLL_S = 1.0

# Test seam for chaos/fault-injection suites.  Set (in the parent,
# before the pool forks — the child inherits it) to an object with:
#
# ``__call__(worker_id, task_id, layer_names, bits) -> Optional[str]``
#     Consulted before every evaluation; may return ``"kill"`` (the
#     worker dies with ``os._exit``), ``"hang"`` (sleeps
#     ``hang_seconds`` — the supervisor's deadline must reap it) or
#     ``"corrupt"`` (ships a schema-violating result).
# ``on_start(worker_id) -> Optional[str]`` (optional)
#     Consulted before the ready handshake; ``"kill"`` makes the
#     spawn itself fail — the mid-respawn fault.
# ``hang_seconds`` (optional, default 300)
#
# Production code never sets this; it stays None.
FAULT_HOOK = None

# Distinctive exit codes so injected deaths are recognisable in the
# drained exit statuses.
_EXIT_INJECTED_KILL = 170
_EXIT_INJECTED_START_KILL = 171


def split_broadcast(
    views: Dict[str, np.ndarray]
) -> "tuple[Dict[str, np.ndarray], List[tuple]]":
    """Split broadcast views into (model state, pinned batches).

    Pinned batches are keyed ``pinned.<i>.images`` / ``pinned.<i>.labels``
    and returned *copied* (the state is copied into the model anyway),
    so no view outlives the shared segment.
    """
    state: Dict[str, np.ndarray] = {}
    images: Dict[int, np.ndarray] = {}
    labels: Dict[int, np.ndarray] = {}
    for key, view in views.items():
        if not key.startswith(PINNED_PREFIX):
            state[key] = view
            continue
        _, index, kind = key.split(".")
        if kind == "images":
            images[int(index)] = np.array(view)
        else:
            labels[int(index)] = np.array(view)
    batches = [(images[i], labels[i]) for i in sorted(images)]
    return state, batches


def _parent_alive() -> bool:
    try:
        import multiprocessing

        parent = multiprocessing.parent_process()
        return parent is None or parent.is_alive()
    except Exception:
        # Fallback: a reparented orphan's ppid is init's.
        return os.getppid() != 1


def worker_main(
    worker_id: int,
    model,
    quantize_activations: bool,
    command_queue,
    result_queue,
    telemetry_dir: Optional[str] = None,
) -> None:
    """Entry point of one forked probe worker (runs until ``stop``)."""
    from ..core.probe import PinnedProbeSet
    from ..core.resilience import DivergenceError
    from ..core.training import evaluate
    from ..nn.serialization import load_state_arrays
    from ..quantization.qmodules import (
        invalidate_weight_cache,
        quantized_layers,
        set_bit_config,
    )
    from ..telemetry import NULL_TELEMETRY, Telemetry
    from .sharedmem import attach_arrays, views_from

    telemetry = NULL_TELEMETRY
    if telemetry_dir is not None:
        try:
            telemetry = Telemetry.for_worker(telemetry_dir, worker_id)
        except OSError:
            # A worker that cannot observe must still evaluate.
            telemetry = NULL_TELEMETRY

    layers = dict(quantized_layers(model))
    shm = None
    shm_name: Optional[str] = None
    pinned: Optional[PinnedProbeSet] = None
    # Recovery-training state: a second shared segment (the train
    # broadcast), the batch sequence whose weights are currently
    # loaded, and the lazily built parameter/BN enumerations.
    train_shm = None
    train_shm_name: Optional[str] = None
    train_views: Optional[Dict[str, np.ndarray]] = None
    train_seq: Optional[int] = None
    train_params = None
    train_bn_names: Optional[Dict[int, str]] = None
    if FAULT_HOOK is not None:
        on_start = getattr(FAULT_HOOK, "on_start", None)
        if on_start is not None and on_start(worker_id) == "kill":
            os._exit(_EXIT_INJECTED_START_KILL)
    result_queue.put(("ready", worker_id))
    try:
        while True:
            try:
                message = command_queue.get(timeout=_POLL_S)
            except queue_module.Empty:
                if not _parent_alive():
                    break
                continue
            kind = message[0]
            if kind == "stop":
                break
            if kind == "sync":
                _, name, manifest, bit_config, sync_seq = message
                sync_span = telemetry.span("worker_sync", sync_seq=sync_seq)
                sync_span.__enter__()
                if shm is not None and name != shm_name:
                    shm.close()
                    shm = None
                if shm is None:
                    shm, views = attach_arrays(name, manifest)
                    shm_name = name
                else:
                    # Same segment, refreshed contents: rebuild the
                    # views over the existing mapping (no re-map).
                    views = views_from(shm, manifest)
                state, batches = split_broadcast(views)
                load_state_arrays(model, state)
                del state, views
                set_bit_config(model, bit_config)
                # The sync rewrote the weights in place; any quantized
                # weights cached during the previous step are stale.
                invalidate_weight_cache(model)
                # Mirror load_checkpoint: the synced state carries the
                # trained quantizer values, so statistics-initializing
                # quantizers must not re-derive them on first forward.
                for layer in layers.values():
                    for quantizer in (
                        layer.weight_quantizer, layer.act_quantizer
                    ):
                        if hasattr(quantizer, "_initialized"):
                            quantizer._initialized = True
                pinned = PinnedProbeSet(batches)
                sync_span.__exit__(None, None, None)
                telemetry.counter("worker.syncs").inc()
                # A fresh consistent snapshot after every barrier: a
                # worker killed mid-round still leaves its last synced
                # metrics behind for the aggregator.
                telemetry.write_worker_metrics()
                result_queue.put(("synced", worker_id, sync_seq))
                continue
            if kind == "rtrain":
                (
                    _, gen, batch_seq, name, manifest,
                    bit_config, shard_id, batch_total,
                ) = message[:8]
                trace = message[8] if len(message) > 8 else None
                outcome = {
                    "kind": "train", "task_id": shard_id,
                    "worker": worker_id, "gen": gen,
                }
                span_attrs = {
                    "task_id": shard_id, "batch_seq": batch_seq,
                    "gen": gen,
                }
                if isinstance(trace, dict):
                    for field in ("trace_id", "parent_span", "step"):
                        if trace.get(field) is not None:
                            span_attrs[field] = trace[field]
                    submitted = trace.get("submitted_ts")
                    if submitted is not None:
                        wait_s = max(0.0, time.time() - float(submitted))
                        span_attrs["queue_wait_s"] = wait_s
                        telemetry.histogram(
                            "worker.queue_wait_s"
                        ).observe(wait_s)
                if FAULT_HOOK is not None:
                    action = FAULT_HOOK(
                        worker_id, shard_id, ["__recover__"], 0
                    )
                    if action == "kill":
                        os._exit(_EXIT_INJECTED_KILL)
                    if action == "hang":
                        time.sleep(
                            getattr(FAULT_HOOK, "hang_seconds", 300.0)
                        )
                    elif action == "corrupt":
                        outcome["status"] = "ok"
                        outcome["loss"] = None  # schema violation
                        outcome["elapsed"] = 0.0
                        result_queue.put(("result", outcome))
                        continue
                train_span = telemetry.span("worker_train", **span_attrs)
                train_span.__enter__()
                t0 = time.perf_counter()
                try:
                    from .ddp import bn_module_names, compute_shard_grad

                    if train_shm is not None and name != train_shm_name:
                        train_shm.close()
                        train_shm = None
                    if (
                        train_shm is None
                        or batch_seq != train_seq
                    ):
                        if train_shm is None:
                            train_shm, train_views = attach_arrays(
                                name, manifest
                            )
                            train_shm_name = name
                        else:
                            train_views = views_from(train_shm, manifest)
                        # One state reload per batch, however many of
                        # its shards land on this worker.
                        state = {
                            key: view
                            for key, view in train_views.items()
                            if not key.startswith(DDP_PREFIX)
                        }
                        load_state_arrays(model, state)
                        del state
                        set_bit_config(model, bit_config)
                        invalidate_weight_cache(model)
                        for layer in layers.values():
                            for quantizer in (
                                layer.weight_quantizer, layer.act_quantizer
                            ):
                                if hasattr(quantizer, "_initialized"):
                                    quantizer._initialized = True
                        train_seq = batch_seq
                    if train_params is None:
                        from ..core.training import trainable_parameters

                        train_params = trainable_parameters(model)
                        train_bn_names = bn_module_names(model)
                    images = np.array(
                        train_views[f"{DDP_PREFIX}{shard_id}.images"]
                    )
                    labels = np.array(
                        train_views[f"{DDP_PREFIX}{shard_id}.labels"]
                    )
                    outcome.update(
                        compute_shard_grad(
                            model, train_params, train_bn_names,
                            images, labels, shard_id, batch_total,
                        )
                    )
                    outcome["worker"] = worker_id
                    outcome["gen"] = gen
                except Exception as err:
                    outcome["status"] = "error"
                    outcome["message"] = repr(err)
                    outcome["elapsed"] = time.perf_counter() - t0
                status = str(outcome.get("status"))
                if getattr(train_span, "attrs", None) is not None:
                    train_span.attrs["status"] = status
                train_span.__exit__(None, None, None)
                telemetry.counter(
                    "worker.train_shards", status=status
                ).inc()
                telemetry.histogram("worker.train_s").observe(
                    float(outcome["elapsed"])
                )
                result_queue.put(("result", outcome))
                continue
            if kind == "eval":
                _, gen, task_id, layer_names, bits = message[:5]
                trace = message[5] if len(message) > 5 else None
                outcome: Dict[str, object] = {
                    "task_id": task_id, "worker": worker_id, "gen": gen,
                }
                span_attrs: Dict[str, object] = {
                    "task_id": task_id, "bits": bits, "gen": gen,
                }
                if isinstance(trace, dict):
                    # Cross-process parenting: the parent's fan-out span
                    # id rides along so the aggregator can reattach this
                    # span under it; submitted_ts (wall clock — the only
                    # clock shared across processes) gives queue wait.
                    for field in ("trace_id", "parent_span", "step"):
                        if trace.get(field) is not None:
                            span_attrs[field] = trace[field]
                    submitted = trace.get("submitted_ts")
                    if submitted is not None:
                        wait_s = max(0.0, time.time() - float(submitted))
                        span_attrs["queue_wait_s"] = wait_s
                        telemetry.histogram(
                            "worker.queue_wait_s"
                        ).observe(wait_s)
                if FAULT_HOOK is not None:
                    action = FAULT_HOOK(
                        worker_id, task_id, layer_names, bits
                    )
                    if action == "kill":
                        os._exit(_EXIT_INJECTED_KILL)
                    if action == "hang":
                        time.sleep(
                            getattr(FAULT_HOOK, "hang_seconds", 300.0)
                        )
                    elif action == "corrupt":
                        outcome["status"] = "ok"
                        outcome["loss"] = None  # schema violation
                        outcome["elapsed"] = 0.0
                        result_queue.put(("result", outcome))
                        continue
                eval_span = telemetry.span("worker_eval", **span_attrs)
                eval_span.__enter__()
                t0 = time.perf_counter()
                try:
                    if pinned is None:
                        raise RuntimeError("eval before first sync")
                    saved = [
                        (layers[n].w_bits, layers[n].a_bits)
                        for n in layer_names
                    ]
                    try:
                        for n in layer_names:
                            layers[n].w_bits = bits
                            if quantize_activations:
                                layers[n].a_bits = bits
                        result = evaluate(model, pinned)
                    finally:
                        for n, (w_bits, a_bits) in zip(layer_names, saved):
                            layers[n].w_bits = w_bits
                            layers[n].a_bits = a_bits
                    outcome["status"] = "ok"
                    outcome["loss"] = float(result.loss)
                except DivergenceError as err:
                    outcome["status"] = "diverged"
                    outcome["message"] = str(err)
                    outcome["stage"] = err.stage
                    outcome["batch_index"] = err.batch_index
                    outcome["value"] = err.value
                except Exception as err:
                    # Ship it instead of dying: the parent treats any
                    # non-divergence failure as "fall back to serial",
                    # and a live worker still drains its stop command.
                    outcome["status"] = "error"
                    outcome["message"] = repr(err)
                outcome["elapsed"] = time.perf_counter() - t0
                status = str(outcome.get("status"))
                if getattr(eval_span, "attrs", None) is not None:
                    eval_span.attrs["status"] = status
                eval_span.__exit__(None, None, None)
                telemetry.counter("worker.evals", status=status).inc()
                telemetry.histogram("worker.eval_s").observe(
                    float(outcome["elapsed"])
                )
                result_queue.put(("result", outcome))
    finally:
        try:
            telemetry.write_worker_metrics()
            telemetry.close()
        except OSError:
            pass
        if shm is not None:
            pinned = None
            try:
                shm.close()
            except (OSError, BufferError):
                pass
        if train_shm is not None:
            train_views = None
            try:
                train_shm.close()
            except (OSError, BufferError):
                pass
