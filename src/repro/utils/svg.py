"""Minimal SVG chart writer (no plotting libraries available offline).

Produces self-contained ``.svg`` line and bar charts good enough to
render the paper's figures from the benchmark results.  Only the features
the figures need are implemented: linear axes with ticks, multiple named
series, a legend, log-scale bars for the power chart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Series", "line_chart", "bar_chart"]

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#17becf", "#7f7f7f")

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 24, 36, 46


@dataclass
class Series:
    """One named line on a chart."""

    label: str
    x: Sequence[float]
    y: Sequence[float]
    color: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x has {len(self.x)} points, "
                f"y has {len(self.y)}"
            )
        if not self.x:
            raise ValueError(f"series {self.label!r} is empty")


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(n - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step >= raw_step:
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def line_chart(
    series: Sequence[Series],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 560,
    height: int = 360,
) -> str:
    """Render series as an SVG line chart and return the SVG text."""
    if not series:
        raise ValueError("no series to plot")
    xs = [v for s in series for v in s.x]
    ys = [v for s in series for v in s.y]
    x_ticks = _nice_ticks(min(xs), max(xs))
    y_ticks = _nice_ticks(min(ys), max(ys))
    x0, x1 = x_ticks[0], x_ticks[-1]
    y0, y1 = y_ticks[0], y_ticks[-1]

    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    def px(x: float) -> float:
        return _MARGIN_L + (x - x0) / (x1 - x0) * plot_w

    def py(y: float) -> float:
        return _MARGIN_T + (1 - (y - y0) / (y1 - y0)) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-size="14">{_escape(title)}</text>'
        )
    # Axes frame + grid.
    for t in x_ticks:
        x = px(t)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN_T}" x2="{x:.1f}" '
            f'y2="{_MARGIN_T + plot_h}" stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 16}" '
            f'text-anchor="middle">{t:g}</text>'
        )
    for t in y_ticks:
        y = py(t)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y:.1f}" '
            f'x2="{_MARGIN_L + plot_w}" y2="{y:.1f}" stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{t:g}</text>'
        )
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>'
    )
    if x_label:
        parts.append(
            f'<text x="{_MARGIN_L + plot_w / 2}" y="{height - 8}" '
            f'text-anchor="middle">{_escape(x_label)}</text>'
        )
    if y_label:
        cx, cy = 14, _MARGIN_T + plot_h / 2
        parts.append(
            f'<text x="{cx}" y="{cy}" text-anchor="middle" '
            f'transform="rotate(-90 {cx} {cy})">{_escape(y_label)}</text>'
        )
    # Series.
    for i, s in enumerate(series):
        color = s.color or _COLORS[i % len(_COLORS)]
        points = " ".join(
            f"{px(x):.1f},{py(y):.1f}" for x, y in zip(s.x, s.y)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"/>'
        )
        for x, y in zip(s.x, s.y):
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.4" '
                f'fill="{color}"/>'
            )
        # Legend entry.
        ly = _MARGIN_T + 14 + i * 15
        lx = _MARGIN_L + plot_w - 130
        parts.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 18}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{lx + 24}" y="{ly}">{_escape(s.label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart(
    groups: Sequence[str],
    bars: Sequence[Tuple[str, Sequence[float]]],
    title: str = "",
    y_label: str = "",
    log_scale: bool = False,
    width: int = 640,
    height: int = 380,
) -> str:
    """Grouped bar chart; ``bars`` is ``[(label, values per group), ...]``.

    ``log_scale=True`` plots bar heights on log10 (the Fig. 5 power chart
    spans three orders of magnitude).
    """
    if not groups or not bars:
        raise ValueError("need at least one group and one bar series")
    for label, values in bars:
        if len(values) != len(groups):
            raise ValueError(
                f"bar series {label!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    values_all = [v for _, vs in bars for v in vs]
    if log_scale and min(values_all) <= 0:
        raise ValueError("log scale requires positive values")

    def transform(v: float) -> float:
        return math.log10(v) if log_scale else v

    tv = [transform(v) for v in values_all]
    lo = min(tv + [0.0]) if not log_scale else min(tv) - 0.3
    hi = max(tv)
    span = (hi - lo) or 1.0

    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B
    group_w = plot_w / len(groups)
    bar_w = group_w * 0.8 / len(bars)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-size="14">{_escape(title)}</text>'
        )
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>'
    )
    if y_label:
        cx, cy = 14, _MARGIN_T + plot_h / 2
        parts.append(
            f'<text x="{cx}" y="{cy}" text-anchor="middle" '
            f'transform="rotate(-90 {cx} {cy})">{_escape(y_label)}</text>'
        )
    for gi, group in enumerate(groups):
        gx = _MARGIN_L + gi * group_w
        parts.append(
            f'<text x="{gx + group_w / 2:.1f}" '
            f'y="{_MARGIN_T + plot_h + 16}" text-anchor="middle">'
            f"{_escape(group)}</text>"
        )
        for bi, (label, values) in enumerate(bars):
            color = _COLORS[bi % len(_COLORS)]
            h = (transform(values[gi]) - lo) / span * plot_h
            x = gx + group_w * 0.1 + bi * bar_w
            y = _MARGIN_T + plot_h - h
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}">'
                f"<title>{_escape(label)}: {values[gi]:g}</title></rect>"
            )
    for bi, (label, _) in enumerate(bars):
        color = _COLORS[bi % len(_COLORS)]
        ly = _MARGIN_T + 14 + bi * 15
        lx = _MARGIN_L + plot_w - 150
        parts.append(
            f'<rect x="{lx}" y="{ly - 9}" width="12" height="9" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{lx + 18}" y="{ly}">{_escape(label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
