"""``repro.utils`` — terminal and SVG plotting utilities."""

from .plot import ascii_plot, sparkline
from .svg import Series, bar_chart, line_chart

__all__ = ["ascii_plot", "sparkline", "Series", "line_chart", "bar_chart"]
