"""Terminal plotting for an offline environment.

The paper's figures are line plots (learning curves, LR schedules, sweep
curves).  With no display or plotting library available, the benchmark
harness renders them as ASCII so a ``pytest -s`` run shows the figure
shape directly in the terminal, and the examples can visualize their
results without dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["ascii_plot", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline, e.g. ``▁▂▅▇█▆``."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def ascii_plot(
    series: Sequence[float],
    height: int = 10,
    width: Optional[int] = None,
    label: str = "",
) -> str:
    """Render one series as a multi-line ASCII chart.

    ``width`` resamples the series to at most that many columns (nearest
    neighbour); the y-axis is annotated with the min/max values.
    """
    values = [float(v) for v in series]
    if not values:
        return "(empty series)"
    if width is not None and len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = hi - lo if hi > lo else 1.0
    rows: List[List[str]] = [
        [" "] * len(values) for _ in range(height)
    ]
    for x, v in enumerate(values):
        y = int(round((v - lo) / span * (height - 1)))
        rows[height - 1 - y][x] = "*"
    lines = []
    if label:
        lines.append(label)
    for i, row in enumerate(rows):
        if i == 0:
            prefix = f"{hi:8.3f} |"
        elif i == height - 1:
            prefix = f"{lo:8.3f} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * len(values))
    return "\n".join(lines)
