"""Reverse-mode automatic differentiation engine.

This module implements a minimal but complete tape-based autograd system on
top of numpy.  Every differentiable operation is a subclass of
:class:`Function`; calling ``Function.apply(...)`` records the op on the
implicit tape (as a ``grad_fn`` link on the output tensor) so that
``Tensor.backward()`` can later traverse the graph in reverse topological
order and accumulate gradients.

The design intentionally mirrors the PyTorch ``torch.autograd.Function``
contract (``forward``/``backward`` pairs with a context object for stashing
intermediates) because the paper's reference implementation is a PyTorch
code base: keeping the same contract makes the quantization straight-through
estimators in :mod:`repro.quantization` read exactly like their PyTorch
counterparts.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Function",
    "Context",
    "backward",
    "no_grad",
    "is_grad_enabled",
    "inference_dispatch_count",
    "set_active_profiler",
    "active_profiler",
]


class _GradMode:
    """Process-wide switch for gradient recording (cheap thread-unsafe flag)."""

    enabled: bool = True
    # How many Function.apply calls took the inference fast path since
    # process start.  Monotonic; read it before/after a region to count
    # the fast-path ops that region executed (the probe engine's tests
    # and telemetry do exactly that).
    inference_dispatches: int = 0
    # The installed op profiler (repro.telemetry.profiler.OpProfiler),
    # or None.  Checked with one attribute load per dispatch so the
    # un-profiled path pays nothing measurable.
    profiler: Optional[Any] = None


def set_active_profiler(profiler: Optional[Any]) -> Optional[Any]:
    """Install ``profiler`` as the dispatch hook; returns the previous
    one so nested installs can restore it."""
    previous = _GradMode.profiler
    _GradMode.profiler = profiler
    return previous


def active_profiler() -> Optional[Any]:
    """The currently installed op profiler, if any."""
    return _GradMode.profiler


def inference_dispatch_count() -> int:
    """Total ops dispatched through the no-grad fast path so far."""
    return _GradMode.inference_dispatches


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded on the tape."""
    return _GradMode.enabled


class no_grad:
    """Context manager disabling graph recording, like ``torch.no_grad``.

    Used heavily by the CCQ competition stage, whose probes are pure
    feed-forward validation passes and must not pay autograd overhead.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc: Any) -> None:
        _GradMode.enabled = self._prev


class Context:
    """Per-call scratch space passed to ``Function.forward``/``backward``.

    ``saved`` holds whatever the forward pass needs to stash for the
    backward pass (raw ndarrays, shapes, python scalars -- anything).
    """

    __slots__ = ("saved", "needs_input_grad")

    def __init__(self) -> None:
        self.saved: Tuple[Any, ...] = ()
        self.needs_input_grad: Tuple[bool, ...] = ()

    def save(self, *items: Any) -> None:
        """Stash values for use in the backward pass."""
        self.saved = items


class _InferenceContext(Context):
    """The context handed to ``forward`` on the no-grad fast path.

    ``save`` is a no-op: nothing will ever run ``backward``, so stashing
    intermediates (im2col matrices, pre-activation copies, ...) would
    only keep large arrays alive until garbage collection.  A single
    shared instance is reused for every fast-path call — ``forward``
    implementations never read back what they saved, so per-call
    isolation buys nothing.
    """

    __slots__ = ()

    def save(self, *items: Any) -> None:
        pass


_INFERENCE_CTX = _InferenceContext()


class Function:
    """Base class for differentiable operations.

    Subclasses implement two static methods::

        @staticmethod
        def forward(ctx, *array_args, **kwargs) -> np.ndarray

        @staticmethod
        def backward(ctx, grad_output) -> tuple of (np.ndarray | None)

    ``forward`` receives raw ndarrays (tensor args are unwrapped) plus any
    keyword configuration, and returns a raw ndarray.  ``backward`` receives
    the gradient w.r.t. the output and must return one gradient (or None)
    per *tensor* positional input.
    """

    @staticmethod
    def forward(ctx: Context, *args: Any, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad_output: np.ndarray) -> Any:
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        """Run ``forward`` and, if grad is enabled, record the op.

        With grad disabled (``no_grad``) the call takes an inference
        fast path: no per-input bookkeeping, no ``needs_input_grad``
        computation, and a shared no-op context so ``forward``'s
        ``ctx.save(...)`` discards its arguments instead of pinning
        them until GC.  This is the substrate half of the CCQ probe
        engine's speedup — evaluation passes build no graph at all.
        """
        from .tensor import Tensor  # local import to avoid a cycle

        profiler = _GradMode.profiler
        if not _GradMode.enabled:
            _GradMode.inference_dispatches += 1
            raw = [a.data if isinstance(a, Tensor) else a for a in args]
            if profiler is None:
                return Tensor(cls.forward(_INFERENCE_CTX, *raw, **kwargs))
            start = time.perf_counter()
            out_data = cls.forward(_INFERENCE_CTX, *raw, **kwargs)
            profiler.record(
                cls, raw, out_data, time.perf_counter() - start
            )
            return Tensor(out_data)

        ctx = Context()
        tensor_args: List[Optional[Tensor]] = []
        raw_args: List[Any] = []
        for arg in args:
            if isinstance(arg, Tensor):
                tensor_args.append(arg)
                raw_args.append(arg.data)
            else:
                tensor_args.append(None)
                raw_args.append(arg)

        ctx.needs_input_grad = tuple(
            t is not None and t.requires_grad for t in tensor_args
        )
        if profiler is None:
            out_data = cls.forward(ctx, *raw_args, **kwargs)
        else:
            start = time.perf_counter()
            out_data = cls.forward(ctx, *raw_args, **kwargs)
            profiler.record(
                cls, raw_args, out_data, time.perf_counter() - start
            )

        requires_grad = is_grad_enabled() and any(ctx.needs_input_grad)
        out = Tensor(out_data, requires_grad=requires_grad)
        if requires_grad:
            out._grad_fn = _Node(cls, ctx, tensor_args)
        return out


class _Node:
    """A recorded operation on the tape: the edge set of the graph."""

    __slots__ = ("fn", "ctx", "inputs")

    def __init__(
        self,
        fn: type,
        ctx: Context,
        inputs: Sequence[Optional["Tensor"]],
    ) -> None:
        self.fn = fn
        self.ctx = ctx
        self.inputs = inputs


def backward(root: "Tensor", grad: Optional[np.ndarray] = None) -> None:
    """Run reverse-mode AD from ``root``, accumulating into ``.grad``.

    Gradients are accumulated (summed) into every reachable leaf tensor
    that has ``requires_grad=True``.  Non-leaf intermediate gradients are
    kept only transiently.
    """
    if grad is None:
        if root.data.size != 1:
            raise RuntimeError(
                "backward() without an explicit gradient requires a scalar "
                f"output, got shape {root.data.shape}"
            )
        grad = np.ones_like(root.data)

    # Topological order via iterative DFS (recursion would overflow on
    # deep ResNet graphs).
    topo: List["Tensor"] = []
    visited = set()
    stack: List[Tuple["Tensor", bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        if node._grad_fn is not None:
            for parent in node._grad_fn.inputs:
                if parent is not None and id(parent) not in visited:
                    stack.append((parent, False))

    grads = {id(root): grad}
    for node in reversed(topo):
        node_grad = grads.pop(id(node), None)
        if node_grad is None:
            continue
        if node._grad_fn is None:
            if node.requires_grad:
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad += node_grad
            continue

        fn, ctx, inputs = (
            node._grad_fn.fn,
            node._grad_fn.ctx,
            node._grad_fn.inputs,
        )
        input_grads = fn.backward(ctx, node_grad)
        if not isinstance(input_grads, tuple):
            input_grads = (input_grads,)
        n_tensors = sum(1 for t in inputs if t is not None)
        if len(input_grads) != n_tensors:
            raise RuntimeError(
                f"{fn.__name__}.backward returned {len(input_grads)} grads "
                f"for {n_tensors} tensor inputs"
            )
        grad_iter = iter(input_grads)
        for parent in inputs:
            if parent is None:
                continue
            g = next(grad_iter)
            if g is None or not parent.requires_grad:
                continue
            # NB: np.ascontiguousarray would promote 0-d grads to 1-d and
            # break scalar parameters (e.g. PACT's alpha); asarray keeps
            # the dimensionality intact.
            g = np.asarray(g, dtype=parent.data.dtype)
            if g.shape != parent.data.shape:
                raise RuntimeError(
                    f"{fn.__name__}.backward produced grad of shape "
                    f"{g.shape} for input of shape {parent.data.shape}"
                )
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + g
            else:
                grads[key] = g
