"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

Provides tensors with reverse-mode autograd, the NN op set needed for
residual networks, module composition, SGD-family optimizers, learning-rate
schedules (including the paper's hybrid plateau-cosine rule) and a data
pipeline with the paper's augmentations.
"""

from . import backends, data, functional, init, optim, schedule, serialization
from .autograd import Function, no_grad
from .modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from .serialization import (
    CheckpointError,
    atomic_savez,
    load_checkpoint,
    save_checkpoint,
)
from .summary import LayerSummary, format_summary, summarize
from .tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "Function",
    "no_grad",
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "Identity",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "backends",
    "functional",
    "init",
    "optim",
    "schedule",
    "data",
    "serialization",
    "save_checkpoint",
    "atomic_savez",
    "CheckpointError",
    "load_checkpoint",
    "LayerSummary",
    "summarize",
    "format_summary",
]
