"""Model summaries: a torchsummary-style table with MACs and precision.

Builds on the same shape tracing the hardware model uses, adding
per-layer output shapes, parameter counts, MACs and — for quantized
models — the current (w_bits, a_bits), so a CCQ result can be inspected
at a glance or dumped into a report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from . import no_grad
from .modules import Conv2d, Linear, Module
from .tensor import Tensor

__all__ = ["LayerSummary", "summarize", "format_summary"]


@dataclass(frozen=True)
class LayerSummary:
    """One row of the model summary."""

    name: str
    kind: str
    output_shape: Tuple[int, ...]
    n_params: int
    macs: int
    w_bits: Optional[int]
    a_bits: Optional[int]


def summarize(
    model: Module, input_shape: Tuple[int, int, int]
) -> List[LayerSummary]:
    """Trace one forward pass and summarize every conv/linear layer."""
    from ..quantization.qmodules import QuantConv2d, QuantLinear
    from ..hardware.mac import _conv_macs, _linear_macs

    rows: List[LayerSummary] = []
    records = {}
    patched = []

    def instrument(name: str, layer: Module) -> None:
        original = layer.forward

        def wrapper(x: Tensor, _name=name, _layer=layer, _orig=original):
            out = _orig(x)
            records[id(_layer)] = (x.shape, out.shape)
            return out

        object.__setattr__(layer, "forward", wrapper)
        patched.append((layer, original))

    tracked = (Conv2d, Linear, QuantConv2d, QuantLinear)
    for name, module in model.named_modules():
        if isinstance(module, tracked):
            instrument(name, module)

    try:
        was_training = model.training
        model.eval()
        with no_grad():
            model(Tensor(np.zeros((1, *input_shape))))
        if was_training:
            model.train()
    finally:
        for layer, original in patched:
            object.__setattr__(layer, "forward", original)

    for name, module in model.named_modules():
        entry = records.get(id(module))
        if entry is None:
            continue
        in_shape, out_shape = entry
        if isinstance(module, (Conv2d, QuantConv2d)):
            macs = _conv_macs(module, in_shape)
        else:
            macs = _linear_macs(module)
        n_params = module.weight.size + (
            module.bias.size if module.bias is not None else 0
        )
        rows.append(
            LayerSummary(
                name=name,
                kind=type(module).__name__,
                output_shape=out_shape,
                n_params=n_params,
                macs=macs,
                w_bits=getattr(module, "w_bits", None),
                a_bits=getattr(module, "a_bits", None),
            )
        )
    return rows


def format_summary(
    rows: List[LayerSummary], show_bits: bool = True
) -> str:
    """Render summary rows as an aligned text table."""
    header = (
        f"{'layer':<26} {'type':<12} {'output':<18} "
        f"{'params':>9} {'MACs':>12}"
    )
    if show_bits:
        header += f" {'W/A bits':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        line = (
            f"{row.name:<26} {row.kind:<12} "
            f"{str(tuple(row.output_shape)):<18} "
            f"{row.n_params:>9,} {row.macs:>12,}"
        )
        if show_bits:
            w = "fp" if row.w_bits is None else str(row.w_bits)
            a = "fp" if row.a_bits is None else str(row.a_bits)
            line += f" {w + '/' + a:>9}"
        lines.append(line)
    total_params = sum(r.n_params for r in rows)
    total_macs = sum(r.macs for r in rows)
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<26} {'':<12} {'':<18} "
        f"{total_params:>9,} {total_macs:>12,}"
    )
    return "\n".join(lines)
