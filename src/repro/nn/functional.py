"""Neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Convolution is implemented with an im2col lowering (the standard CPU
strategy); pooling and the fused softmax-cross-entropy loss are dedicated
:class:`~repro.nn.autograd.Function` subclasses for numerical stability and
speed.  ``round_ste`` / ``floor_ste`` provide the straight-through
estimators that every quantization policy in :mod:`repro.quantization`
builds on.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import autograd
from .autograd import Context, Function, is_grad_enabled
from .tensor import Tensor, as_tensor

__all__ = [
    "conv2d",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "round_ste",
    "floor_ste",
    "im2col",
    "conv_output_size",
]

_IntPair = Union[int, Tuple[int, int]]


def _pair(value: _IntPair) -> Tuple[int, int]:
    """Normalize an int-or-pair argument to a 2-tuple."""
    if isinstance(value, tuple):
        return value
    return (value, value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


# Inference-mode scratch: the im2col column matrix is by far the largest
# transient a conv forward allocates.  Evaluation loops (the CCQ probe
# engine especially) run the same conv shapes batch after batch, so the
# column buffer is kept and rewritten in place instead of reallocated.
# Reuse is ONLY legal when autograd is off — in grad mode the buffer is
# stashed in the op's context for the backward pass and must stay alive.
_IM2COL_SCRATCH: dict = {}
_IM2COL_SCRATCH_CAP = 16


def _im2col_scratch(shape: Tuple[int, int], dtype: np.dtype) -> np.ndarray:
    key = (shape, dtype.str)
    buf = _IM2COL_SCRATCH.get(key)
    if buf is None:
        if len(_IM2COL_SCRATCH) >= _IM2COL_SCRATCH_CAP:
            _IM2COL_SCRATCH.clear()
        buf = np.empty(shape, dtype=dtype)
        _IM2COL_SCRATCH[key] = buf
        profiler = autograd.active_profiler()
        if profiler is not None:
            # Arena high-water accounting: fresh allocations only (a
            # reused buffer moves no new memory).
            profiler.note_scratch(
                buf.nbytes,
                sum(b.nbytes for b in _IM2COL_SCRATCH.values()),
            )
    return buf


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    reuse_scratch: bool = False,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Lower a padded NCHW batch into a ``(N*OH*OW, C*KH*KW)`` matrix.

    Returns the column matrix together with the output spatial size.
    With ``reuse_scratch`` the column matrix lives in a shared
    per-shape scratch buffer that the next same-shape call overwrites;
    only pass it when the result is consumed before the next lowering
    (the no-grad conv fast path).
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    n, c, h, w = x.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    # windows: (N, C, H-kh+1, W-kw+1, KH, KW) then stride-sliced.
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    windows = windows.transpose(0, 2, 3, 1, 4, 5)
    if reuse_scratch:
        cols = _im2col_scratch((n * oh * ow, c * kh * kw), x.dtype)
        np.copyto(cols.reshape(windows.shape), windows)
        return cols, (oh, ow)
    cols = windows.reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), (oh, ow)


def _col2im(
    dcols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out_size: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add column gradients back into an input-shaped array."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    oh, ow = out_size
    dxp = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=dcols.dtype)
    # (N*OH*OW, C*KH*KW) -> (N, OH, OW, C, KH, KW) -> (N, C, KH, KW, OH, OW)
    d6 = dcols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        for j in range(kw):
            dxp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += d6[:, :, i, j]
    if ph or pw:
        return dxp[:, :, ph : ph + h, pw : pw + w]
    return dxp


class _Conv2d(Function):
    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        f, c, kh, kw = weight.shape
        # The scratch column buffer may only be recycled when no backward
        # pass will read it; in grad mode ctx.save keeps it alive.
        cols, (oh, ow) = im2col(
            x, (kh, kw), stride, padding,
            reuse_scratch=not is_grad_enabled(),
        )
        w_flat = weight.reshape(f, -1)
        out = cols @ w_flat.T
        if bias is not None:
            out += bias
        n = x.shape[0]
        ctx.save(cols, w_flat, x.shape, weight.shape, stride, padding, (oh, ow))
        return out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        cols, w_flat, x_shape, w_shape, stride, padding, out_size = ctx.saved
        f = w_shape[0]
        # (N, F, OH, OW) -> (N*OH*OW, F)
        g = grad.transpose(0, 2, 3, 1).reshape(-1, f)
        dx = None
        dw = None
        db = None
        if ctx.needs_input_grad[0]:
            dcols = g @ w_flat
            dx = _col2im(
                dcols, x_shape, w_shape[2:], stride, padding, out_size
            )
        if ctx.needs_input_grad[1]:
            dw = (g.T @ cols).reshape(w_shape)
        if len(ctx.needs_input_grad) > 2 and ctx.needs_input_grad[2]:
            db = g.sum(axis=0)
        if ctx.needs_input_grad[2:]:
            return dx, dw, db
        return dx, dw


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: _IntPair = 1,
    padding: _IntPair = 0,
) -> Tensor:
    """2-D convolution over an NCHW batch (weight is ``(F, C, KH, KW)``)."""
    stride = _pair(stride)
    padding = _pair(padding)
    if bias is None:
        return _Conv2dNoBias.apply(x, weight, stride=stride, padding=padding)
    return _Conv2d.apply(x, weight, bias, stride=stride, padding=padding)


class _Conv2dNoBias(Function):
    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        weight: np.ndarray,
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        return _Conv2d.forward(ctx, x, weight, None, stride, padding)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        dx, dw = _Conv2d.backward(ctx, grad)[:2]
        return dx, dw


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (weight is ``(out, in)``)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


class _MaxPool2d(Function):
    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        if ph or pw:
            x = np.pad(
                x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=-np.inf
            )
        n, c, h, w = x.shape
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
        windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
        flat = windows.reshape(n, c, oh, ow, kh * kw)
        arg = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
        ctx.save(arg, (n, c, h, w), kernel, stride, (ph, pw), (oh, ow))
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        arg, padded_shape, kernel, stride, padding, out_size = ctx.saved
        n, c, h, w = padded_shape
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        oh, ow = out_size
        dxp = np.zeros(padded_shape, dtype=grad.dtype)
        ki, kj = np.unravel_index(arg, (kh, kw))
        oi = np.arange(oh)[None, None, :, None] * sh
        oj = np.arange(ow)[None, None, None, :] * sw
        rows = (oi + ki).ravel()
        cols = (oj + kj).ravel()
        ni = np.repeat(np.arange(n), c * oh * ow)
        ci = np.tile(np.repeat(np.arange(c), oh * ow), n)
        np.add.at(dxp, (ni, ci, rows, cols), grad.ravel())
        if ph or pw:
            return (dxp[:, :, ph : h - ph, pw : w - pw],)
        return (dxp,)


def max_pool2d(
    x: Tensor, kernel: _IntPair, stride: Optional[_IntPair] = None,
    padding: _IntPair = 0,
) -> Tensor:
    """2-D max pooling over an NCHW batch."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    return _MaxPool2d.apply(x, kernel=kernel, stride=stride, padding=_pair(padding))


class _AvgPool2d(Function):
    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
    ) -> np.ndarray:
        kh, kw = kernel
        sh, sw = stride
        windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
        out = windows.mean(axis=(-1, -2))
        ctx.save(x.shape, kernel, stride, out.shape[2:])
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        x_shape, kernel, stride, out_size = ctx.saved
        kh, kw = kernel
        sh, sw = stride
        oh, ow = out_size
        dx = np.zeros(x_shape, dtype=grad.dtype)
        g = grad / (kh * kw)
        for i in range(kh):
            for j in range(kw):
                dx[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += g
        return (dx,)


def avg_pool2d(
    x: Tensor, kernel: _IntPair, stride: Optional[_IntPair] = None
) -> Tensor:
    """2-D average pooling (no padding) over an NCHW batch."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    return _AvgPool2d.apply(x, kernel=kernel, stride=stride)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


class _LogSoftmax(Function):
    @staticmethod
    def forward(ctx: Context, x: np.ndarray, axis: int) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        ctx.save(out, axis)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        out, axis = ctx.saved
        softmax = np.exp(out)
        return (grad - softmax * grad.sum(axis=axis, keepdims=True),)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))``."""
    return _LogSoftmax.apply(x, axis=axis)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


class _CrossEntropy(Function):
    """Fused log-softmax + NLL with integer class targets (mean reduced)."""

    @staticmethod
    def forward(ctx: Context, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = targets.astype(np.int64)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        log_probs = shifted - log_z
        n = logits.shape[0]
        losses = -log_probs[np.arange(n), targets]
        ctx.save(log_probs, targets)
        return np.asarray(losses.mean())

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        log_probs, targets = ctx.saved
        n = log_probs.shape[0]
        dx = np.exp(log_probs)
        dx[np.arange(n), targets] -= 1.0
        return (dx * (grad / n),)


def cross_entropy(logits: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean cross-entropy between ``(N, K)`` logits and ``(N,)`` int targets."""
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    return _CrossEntropy.apply(logits, targets=targets)


def nll_loss(log_probs: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean negative log-likelihood from precomputed log-probabilities."""
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    targets = targets.astype(np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    diff = pred - target
    return (diff * diff).mean()


class _RoundSTE(Function):
    """Round to nearest integer; identity gradient (straight-through)."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray) -> np.ndarray:
        return np.round(x)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (grad,)


class _FloorSTE(Function):
    """Floor; identity gradient (straight-through)."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray) -> np.ndarray:
        return np.floor(x)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (grad,)


def round_ste(x: Tensor) -> Tensor:
    """Straight-through rounding: quantize forward, identity backward."""
    return _RoundSTE.apply(x)


def floor_ste(x: Tensor) -> Tensor:
    """Straight-through floor."""
    return _FloorSTE.apply(x)
