"""Neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Convolution is implemented with an im2col lowering (the standard CPU
strategy); pooling and the fused softmax-cross-entropy loss are dedicated
:class:`~repro.nn.autograd.Function` subclasses for numerical stability and
speed.  ``round_ste`` / ``floor_ste`` provide the straight-through
estimators that every quantization policy in :mod:`repro.quantization`
builds on.

The compute kernels themselves (im2col/col2im, GEMM, pooling) live in
:mod:`repro.nn.backends`; each ``Function`` here dispatches its forward
through the currently selected backend and pins that backend in its
context so the backward runs on the same kernels.  All backends are
bit-identical (see the backends package docstring), so selection never
changes results — only speed.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

import numpy as np

from . import backends
from .autograd import Context, Function, is_grad_enabled
from .tensor import Tensor, as_tensor

__all__ = [
    "conv2d",
    "fused_quant_conv2d",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "round_ste",
    "floor_ste",
    "im2col",
    "conv_output_size",
]

_IntPair = Union[int, Tuple[int, int]]


def _pair(value: _IntPair) -> Tuple[int, int]:
    """Normalize an int-or-pair argument to a 2-tuple."""
    if isinstance(value, tuple):
        return value
    return (value, value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    reuse_scratch: bool = False,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Lower a padded NCHW batch into a ``(N*OH*OW, C*KH*KW)`` matrix.

    Delegates to the current kernel backend
    (:func:`repro.nn.backends.current`); kept as a module-level
    function because the lowering is part of the public testing
    surface (the adjoint property tests exercise it directly).
    """
    return backends.current().im2col(
        x, kernel, stride, padding, reuse_scratch=reuse_scratch
    )


def _col2im(
    dcols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out_size: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add column gradients back into an input-shaped array."""
    return backends.current().col2im(
        dcols, x_shape, kernel, stride, padding, out_size
    )


class _Conv2d(Function):
    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        return backends.current().conv2d_forward(
            ctx, x, weight, bias, stride, padding
        )

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        # The backend that ran the forward is pinned as the first saved
        # value, so a default-backend switch mid-graph cannot mix
        # kernels within one op.
        return ctx.saved[0].conv2d_backward(ctx, grad)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: _IntPair = 1,
    padding: _IntPair = 0,
) -> Tensor:
    """2-D convolution over an NCHW batch (weight is ``(F, C, KH, KW)``)."""
    stride = _pair(stride)
    padding = _pair(padding)
    if bias is None:
        return _Conv2dNoBias.apply(x, weight, stride=stride, padding=padding)
    return _Conv2d.apply(x, weight, bias, stride=stride, padding=padding)


class _Conv2dNoBias(Function):
    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        weight: np.ndarray,
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        return _Conv2d.forward(ctx, x, weight, None, stride, padding)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        dx, dw = _Conv2d.backward(ctx, grad)[:2]
        return dx, dw


class _FusedQuantConv2d(Function):
    """Fake-quantize the weight and convolve as one dispatched op."""

    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        quantizer: Any,
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        return backends.current().fused_quant_conv2d(
            ctx, x, weight, bias, quantizer, stride, padding
        )

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        raise RuntimeError(
            "fused_quant_conv2d is inference-only; training needs the "
            "quantizer's STE graph — quantize the weight as a Tensor op "
            "and call conv2d instead"
        )


def fused_quant_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    quantizer: Any,
    stride: _IntPair = 1,
    padding: _IntPair = 0,
) -> Tensor:
    """Inference-only conv with the weight fake-quantized in the kernel.

    Numerically identical to ``conv2d(x, quantizer(weight), bias)`` but
    the quantized weight stays a transient ndarray inside the kernel —
    no Tensor wrapper, no tape traffic, no cache entry — so the whole
    thing is one profiled dispatch.  ``quantizer`` must expose
    ``quantize_array`` (every
    :class:`~repro.quantization.base.WeightQuantizer` does).
    """
    if is_grad_enabled():
        raise RuntimeError(
            "fused_quant_conv2d is inference-only; wrap the call in "
            "no_grad() or use quantizer(weight) + conv2d when training"
        )
    return _FusedQuantConv2d.apply(
        x, weight, bias,
        quantizer=quantizer, stride=_pair(stride), padding=_pair(padding),
    )


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (weight is ``(out, in)``)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


class _MaxPool2d(Function):
    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        return backends.current().max_pool2d_forward(
            ctx, x, kernel, stride, padding
        )

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return ctx.saved[0].max_pool2d_backward(ctx, grad)


def max_pool2d(
    x: Tensor, kernel: _IntPair, stride: Optional[_IntPair] = None,
    padding: _IntPair = 0,
) -> Tensor:
    """2-D max pooling over an NCHW batch."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    return _MaxPool2d.apply(x, kernel=kernel, stride=stride, padding=_pair(padding))


class _AvgPool2d(Function):
    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        return backends.current().avg_pool2d_forward(
            ctx, x, kernel, stride, padding
        )

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return ctx.saved[0].avg_pool2d_backward(ctx, grad)


def avg_pool2d(
    x: Tensor, kernel: _IntPair, stride: Optional[_IntPair] = None,
    padding: _IntPair = 0,
) -> Tensor:
    """2-D average pooling over an NCHW batch.

    Padding is zero-padding with the divisor counting only real input
    cells (torch's ``count_include_pad=False``): edge windows average
    the values they actually cover, so a constant input pools to the
    same constant everywhere.
    """
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    return _AvgPool2d.apply(
        x, kernel=kernel, stride=stride, padding=_pair(padding)
    )


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


class _LogSoftmax(Function):
    @staticmethod
    def forward(ctx: Context, x: np.ndarray, axis: int) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        ctx.save(out, axis)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        out, axis = ctx.saved
        softmax = np.exp(out)
        return (grad - softmax * grad.sum(axis=axis, keepdims=True),)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))``."""
    return _LogSoftmax.apply(x, axis=axis)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


class _CrossEntropy(Function):
    """Fused log-softmax + NLL with integer class targets (mean reduced)."""

    @staticmethod
    def forward(ctx: Context, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = targets.astype(np.int64)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        log_probs = shifted - log_z
        n = logits.shape[0]
        losses = -log_probs[np.arange(n), targets]
        ctx.save(log_probs, targets)
        return np.asarray(losses.mean())

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        log_probs, targets = ctx.saved
        n = log_probs.shape[0]
        dx = np.exp(log_probs)
        dx[np.arange(n), targets] -= 1.0
        return (dx * (grad / n),)


def cross_entropy(logits: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean cross-entropy between ``(N, K)`` logits and ``(N,)`` int targets."""
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    return _CrossEntropy.apply(logits, targets=targets)


def nll_loss(log_probs: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean negative log-likelihood from precomputed log-probabilities."""
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    targets = targets.astype(np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    diff = pred - target
    return (diff * diff).mean()


class _RoundSTE(Function):
    """Round to nearest integer; identity gradient (straight-through)."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray) -> np.ndarray:
        return np.round(x)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (grad,)


class _FloorSTE(Function):
    """Floor; identity gradient (straight-through)."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray) -> np.ndarray:
        return np.floor(x)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (grad,)


def round_ste(x: Tensor) -> Tensor:
    """Straight-through rounding: quantize forward, identity backward."""
    return _RoundSTE.apply(x)


def floor_ste(x: Tensor) -> Tensor:
    """Straight-through floor."""
    return _FloorSTE.apply(x)
