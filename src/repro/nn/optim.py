"""First-order optimizers.

The paper fine-tunes with SGD + momentum under quantization-aware training;
Adam is provided for the smaller policy-internal parameters (e.g. PACT's
clipping value) and for test convenience.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a list of parameter tensors."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- state (for crash-safe checkpoints and rollback snapshots) -----------
    #
    # Internal slot state (momentum buffers, Adam moments) is keyed by
    # ``id(param)`` at runtime, which does not survive a process restart;
    # the state dict re-keys it by position in ``self.params``, which is
    # deterministic for a model rebuilt the same way.

    def state_dict(self) -> Dict[str, object]:
        """Snapshot hyper-parameters and per-parameter slot state."""
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])

    def _slots_by_index(
        self, slots: Dict[int, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        return {
            str(i): slots[id(p)].copy()
            for i, p in enumerate(self.params)
            if id(p) in slots
        }

    def _slots_by_id(
        self, slots: Dict[str, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        out: Dict[int, np.ndarray] = {}
        for key, value in slots.items():
            index = int(key)
            if not 0 <= index < len(self.params):
                raise KeyError(
                    f"optimizer state names parameter {index}, but only "
                    f"{len(self.params)} parameters are registered"
                )
            out[id(self.params[index])] = np.array(value, dtype=np.float64)
        return out


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay.

    Matches the torch semantics: weight decay is added to the gradient,
    momentum buffers accumulate the decayed gradient, and with
    ``nesterov=True`` the lookahead gradient is applied.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if nesterov and momentum <= 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = self._velocity.get(id(p))
                if buf is None:
                    buf = grad.copy()
                else:
                    buf *= self.momentum
                    buf += grad
                self._velocity[id(p)] = buf
                grad = grad + self.momentum * buf if self.nesterov else buf
            p.data -= self.lr * grad

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = self._slots_by_index(self._velocity)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._velocity = self._slots_by_id(state.get("velocity", {}))


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.setdefault(id(p), np.zeros_like(p.data))
            v = self._v.setdefault(id(p), np.zeros_like(p.data))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["t"] = self._t
        state["m"] = self._slots_by_index(self._m)
        state["v"] = self._slots_by_index(self._v)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._t = int(state.get("t", 0))
        self._m = self._slots_by_id(state.get("m", {}))
        self._v = self._slots_by_id(state.get("v", {}))
