"""Weight initialization schemes (Kaiming / Xavier families).

All initializers accept an explicit ``rng`` so experiments are fully
reproducible; a process-default generator is used when none is given.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "default_rng",
    "set_seed",
    "compute_fans",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
]

_DEFAULT_RNG = np.random.default_rng(0)


def default_rng() -> np.random.Generator:
    """The process-default generator used when an op gets no explicit rng."""
    return _DEFAULT_RNG


def set_seed(seed: int) -> None:
    """Re-seed the process-default generator (affects future inits only)."""
    global _DEFAULT_RNG
    _DEFAULT_RNG = np.random.default_rng(seed)


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for dense or convolutional weights."""
    if len(shape) < 2:
        raise ValueError(f"fan computation needs >= 2 dims, got shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_normal(
    shape: Tuple[int, ...],
    gain: float = np.sqrt(2.0),
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """He-normal init: ``N(0, gain^2 / fan_in)`` (default gain for ReLU)."""
    rng = rng or _DEFAULT_RNG
    fan_in, _ = compute_fans(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...],
    gain: float = np.sqrt(2.0),
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """He-uniform init on ``[-bound, bound]`` with ``bound = gain*sqrt(3/fan_in)``."""
    rng = rng or _DEFAULT_RNG
    fan_in, _ = compute_fans(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: Tuple[int, ...],
    gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Glorot-normal init: ``N(0, gain^2 * 2 / (fan_in + fan_out))``."""
    rng = rng or _DEFAULT_RNG
    fan_in, fan_out = compute_fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    shape: Tuple[int, ...],
    gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Glorot-uniform init on ``[-bound, bound]``."""
    rng = rng or _DEFAULT_RNG
    fan_in, fan_out = compute_fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)
