"""Learning-rate schedules, including the paper's hybrid plateau-cosine rule.

Section IV-g of the paper: fine-tuning starts at a constant learning rate;
when the learning plateaus (the network "fails to recover"), the rate is
*slightly increased* and then follows a cosine decay back to the previous
value (an SGDR-style warm restart).  :class:`HybridPlateauCosine` implements
exactly that behaviour and is exercised by the Fig. 4 benchmark.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .optim import Optimizer

__all__ = [
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "CosineAnnealingLR",
    "HybridPlateauCosine",
]


class LRScheduler:
    """Base class: call :meth:`step` once per epoch to update the LR."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0
        self.history: List[float] = []

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self, metric: Optional[float] = None) -> float:
        """Advance one epoch and apply the new learning rate.

        ``metric`` is the monitored validation quantity (only used by
        metric-aware schedules such as :class:`HybridPlateauCosine`).
        """
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        self.history.append(lr)
        return lr


class ConstantLR(LRScheduler):
    """Keep the learning rate fixed."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = max(t_max, 1)
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        cos = (1.0 + math.cos(math.pi * t / self.t_max)) / 2.0
        return self.eta_min + (self.base_lr - self.eta_min) * cos


class HybridPlateauCosine(LRScheduler):
    """Constant LR with plateau-triggered bump + cosine decay (Fig. 4).

    The schedule monitors a validation metric (higher is better, e.g.
    accuracy).  While the metric keeps improving, the LR stays at
    ``base_lr``.  After ``patience`` epochs without improvement of at least
    ``min_delta``, the LR jumps to ``bump_factor * base_lr`` and then
    follows a cosine decay back down to ``base_lr`` over ``cycle_length``
    epochs, after which plateau monitoring resumes.  The slight increase
    perturbs the iterate out of the local plateau/saddle, as motivated by
    SGDR warm restarts.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        patience: int = 3,
        bump_factor: float = 5.0,
        cycle_length: int = 5,
        min_delta: float = 1e-4,
    ) -> None:
        super().__init__(optimizer)
        if bump_factor <= 1.0:
            raise ValueError("bump_factor must exceed 1 to perturb the iterate")
        self.patience = patience
        self.bump_factor = bump_factor
        self.cycle_length = max(cycle_length, 1)
        self.min_delta = min_delta
        self.best_metric: Optional[float] = None
        self.bad_epochs = 0
        self._cycle_pos: Optional[int] = None  # None = constant phase
        self.num_restarts = 0

    def step(self, metric: Optional[float] = None) -> float:
        self.epoch += 1
        if self._cycle_pos is None:
            # Constant phase: watch for a plateau.
            if metric is not None:
                if (
                    self.best_metric is None
                    or metric > self.best_metric + self.min_delta
                ):
                    self.best_metric = metric
                    self.bad_epochs = 0
                else:
                    self.bad_epochs += 1
            if self.bad_epochs >= self.patience:
                self._cycle_pos = 0
                self.bad_epochs = 0
                self.num_restarts += 1
        lr = self.get_lr()
        if self._cycle_pos is not None:
            self._cycle_pos += 1
            if self._cycle_pos > self.cycle_length:
                self._cycle_pos = None  # cycle done, back to constant phase
        self.optimizer.lr = lr
        self.history.append(lr)
        return lr

    def get_lr(self) -> float:
        if self._cycle_pos is None:
            return self.base_lr
        # Cosine from bump_factor*base down to base over cycle_length epochs.
        frac = self._cycle_pos / self.cycle_length
        cos = (1.0 + math.cos(math.pi * frac)) / 2.0
        peak = self.bump_factor * self.base_lr
        return self.base_lr + (peak - self.base_lr) * cos
