"""The ``fast`` backend: measured single-core wins under bit-identity.

Every optimization here was benchmarked on this substrate against the
reference kernels and kept only if it was (a) faster on the shapes the
CCQ pipeline actually runs and (b) byte-for-byte identical in output.
That constraint rules out most textbook GEMM tricks for *float* math
(BLAS summation order shifts with shape/layout/blocking — see the base
module docstring), which shapes what this backend does:

* ``im2col`` pads into an arena-held buffer instead of calling
  ``np.pad``.  The buffer's zero border is established once per
  (shape, padding) key and only the interior is rewritten per call, so
  the per-call padded-array allocation + border writes disappear.
  Pure data movement into the identical column matrix — bit-safe by
  construction, and measured ~1.06-1.13x on conv forward.
* ``int_gemm`` dispatches to numpy's ``einsum`` integer inner loop in
  cache-bounded row panels.  Integer addition is exact under
  regrouping, so blocking is legal here (and only here); the einsum
  kernel measures ~1.35x over ``np.matmul``'s integer path on the
  integer-inference GEMM shapes.

The float ``gemm``, ``col2im`` and pooling kernels are inherited
unchanged: every faster candidate tried (einsum contraction, transposed
GEMM, row-paneled accumulation, threaded panels) broke bit-identity on
randomized shapes or lost on this one-core machine.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .base import KernelBackend, kernel

__all__ = ["FastBackend"]

# Row-panel height for the blocked integer GEMM.  Panels bound the
# output working set without changing the (exact) integer result;
# measured neutral at CCQ scales and protective for very large batches.
_INT_GEMM_PANEL = 4096


class FastBackend(KernelBackend):
    """Arena-padded im2col + panel-blocked einsum integer GEMM."""

    name = "fast"

    def _padded_input(
        self, x: np.ndarray, padding: Tuple[int, int]
    ) -> np.ndarray:
        """``x`` zero-padded into a reused arena buffer.

        The buffer is keyed by (padded shape, dtype, padding), so a
        reused buffer's border is already zero from its first fill —
        each call only rewrites the interior.  The buffer is consumed
        within the calling kernel (the column matrix is built from it
        before returning), so reuse is legal even in grad mode.
        """
        ph, pw = padding
        n, c, h, w = x.shape
        shape = (n, c, h + 2 * ph, w + 2 * pw)
        # Keying on the padding means every user of a given buffer
        # writes the same interior region, so the border established by
        # the zero-fill at allocation stays zero across reuses.
        buf = self.arena.get(
            shape, x.dtype, tag=("pad", ph, pw), zero_on_alloc=True
        )
        buf[:, :, ph : ph + h, pw : pw + w] = x
        return buf

    @kernel
    def im2col(
        self,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
        reuse_scratch: bool = False,
    ) -> Tuple[np.ndarray, Tuple[int, int]]:
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        if ph or pw:
            x = self._padded_input(x, padding)
        n, c, h, w = x.shape
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
        windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
        windows = windows.transpose(0, 2, 3, 1, 4, 5)
        if reuse_scratch:
            cols = self.arena.get(
                (n * oh * ow, c * kh * kw), x.dtype, tag="im2col"
            )
        else:
            # Grad mode (or a caller that keeps the matrix): the column
            # matrix is retained past this call and must be owned.
            cols = np.empty((n * oh * ow, c * kh * kw), dtype=x.dtype)
        np.copyto(cols.reshape(windows.shape), windows)
        return cols, (oh, ow)

    @kernel
    def int_gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        m = a.shape[0]
        n = b.shape[1]
        out = np.empty((m, n), dtype=np.int64)
        for m0 in range(0, m, _INT_GEMM_PANEL):
            m1 = min(m0 + _INT_GEMM_PANEL, m)
            np.einsum("mk,kf->mf", a[m0:m1], b, out=out[m0:m1])
        return out
