"""Scratch-buffer arena: keyed, LRU-evicting transient-array reuse.

The im2col column matrix is the largest transient a conv forward
allocates, and evaluation loops (the CCQ probe engine especially) run
the same conv shapes batch after batch.  The arena keeps one buffer per
``(shape, dtype, tag)`` key and hands the same memory back on the next
same-key request, so steady-state inference allocates nothing.

Eviction is LRU *per entry*: when the capacity is reached, only the
least-recently-used buffer is dropped.  (The predecessor of this arena
— ``_im2col_scratch`` in :mod:`repro.nn.functional` — cleared the whole
cache on overflow, so any workload cycling through more shapes than the
cap reallocated every buffer every pass.)

Reuse is only legal when the previous same-key result has already been
consumed — in practice, the autograd-off conv fast path, where nothing
retains the column matrix past the GEMM.  Callers in grad mode must not
request arena buffers for arrays that a backward pass will read later.

Profiler integration: a fresh allocation notifies the active op
profiler (:func:`repro.nn.autograd.active_profiler`) with the buffer
size and the arena's new total, which is how ``repro profile`` derives
its scratch high-water mark.  Reused buffers move no new memory and are
not reported.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Tuple

import numpy as np

__all__ = ["ScratchArena"]


class ScratchArena:
    """LRU cache of reusable ndarrays keyed by ``(shape, dtype, tag)``."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffers: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        # Lifetime counters (monotonic; survive clear()).
        self.allocations = 0
        self.hits = 0
        self.evictions = 0

    def get(
        self,
        shape: Tuple[int, ...],
        dtype: "np.dtype | type",
        tag: Hashable = None,
        zero_on_alloc: bool = False,
    ) -> np.ndarray:
        """A buffer of ``shape``/``dtype``, reused across same-key calls.

        The buffer's contents are whatever the previous user left there;
        callers must fully overwrite it — or, with ``zero_on_alloc``,
        may rely on cells they never write staying zero (fresh buffers
        are zero-filled; reused ones carry the previous call's writes,
        which for a single-writer key is exactly the invariant wanted).
        ``tag`` separates buffers that share a shape but must not alias
        (e.g. a column matrix and a padded-input buffer of
        coincidentally equal size).
        """
        dtype = np.dtype(dtype)
        key = (tuple(shape), dtype.str, tag)
        buf = self._buffers.get(key)
        if buf is not None:
            self.hits += 1
            self._buffers.move_to_end(key)
            return buf
        while len(self._buffers) >= self.capacity:
            # Evict exactly the least-recently-used entry; everything
            # still hot stays resident.
            self._buffers.popitem(last=False)
            self.evictions += 1
        buf = (np.zeros if zero_on_alloc else np.empty)(shape, dtype=dtype)
        self._buffers[key] = buf
        self.allocations += 1
        self._notify_profiler(buf.nbytes)
        return buf

    def _notify_profiler(self, nbytes: int) -> None:
        from .. import autograd  # local import: autograd imports nothing from here

        profiler = autograd.active_profiler()
        if profiler is not None:
            # High-water accounting: fresh allocations only (a reused
            # buffer moves no new memory), with the arena total taken
            # *after* any eviction so the mark reflects live bytes.
            profiler.note_scratch(nbytes, self.total_bytes)

    @property
    def total_bytes(self) -> int:
        """Bytes currently held by live buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        """Drop every buffer (counters are lifetime and survive)."""
        self._buffers.clear()
