"""The kernel-backend interface and its reference numpy kernels.

A :class:`KernelBackend` bundles every compute kernel the ``repro.nn``
op set bottoms out in — conv2d forward/backward, the im2col/col2im
lowering pair, float GEMM, pooling, and the integer-native kernels the
integer-inference path runs on (:mod:`repro.quantization
.integer_inference`).  :mod:`repro.nn.functional` dispatches each
``Function`` through the currently selected backend (see the package
``__init__`` for the registry), so swapping a backend swaps the whole
substrate's kernels at once.

The contract every backend must satisfy — and the reason this base
class *is* the reference implementation — is **bit-identity**: a
registered backend must produce byte-for-byte the same arrays as
``reference`` for every kernel, forward and backward.  The CCQ
trajectory tests assert exactly that (mirroring the worker-count
invariance contract of the parallel probe pool).  Bit-identity on this
substrate is narrower than mathematical equality:

* **Float GEMM must stay one ``np.matmul`` call on identically shaped,
  identically laid-out operands.**  BLAS picks different micro-kernels
  (and therefore different summation orders) for different shapes,
  transposes and blockings, so transposed formulations, ``einsum``
  routes and row-paneled accumulation all produce ULP-level
  divergences.  ``gemm`` is final in spirit: fast backends may not
  re-block it.
* **Integer kernels may be regrouped freely.**  int64 addition is
  exact, so cache-blocked panels and alternative inner loops are legal
  for ``int_gemm`` — that is where a fast backend earns its integer
  speedup.
* **Data movement is always legal.**  Any im2col strategy that fills
  the identical column matrix (same layout, same dtype) is safe by
  construction, as is reusing scratch buffers for arrays nothing
  retains.

Every kernel entry point is timed into the active op profiler's
per-kernel table (:meth:`repro.telemetry.profiler.OpProfiler
.record_kernel`) when one is installed.  Composite kernels
(``conv2d_forward``) call leaf kernels (``im2col``, ``gemm``), so their
recorded times overlap — the table reads as a call tree flattened per
kernel, not as disjoint buckets.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional, Tuple, TypeVar

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..autograd import Context, active_profiler, is_grad_enabled
from .arena import ScratchArena

__all__ = ["KernelBackend", "kernel"]

_F = TypeVar("_F", bound=Callable[..., Any])


def kernel(fn: _F) -> _F:
    """Mark a backend method as a kernel entry point.

    When an op profiler is installed the call is timed and recorded
    under ``(backend.name, kernel name)``; with no profiler the wrapper
    is a single attribute load plus a ``None`` check.
    """
    name = fn.__name__

    @functools.wraps(fn)
    def timed(self: "KernelBackend", *args: Any, **kwargs: Any) -> Any:
        profiler = active_profiler()
        record = getattr(profiler, "record_kernel", None)
        if record is None:
            return fn(self, *args, **kwargs)
        start = time.perf_counter()
        out = fn(self, *args, **kwargs)
        record(self.name, name, time.perf_counter() - start)
        return out

    return timed  # type: ignore[return-value]


class KernelBackend:
    """Base backend: the reference numpy kernels, extracted verbatim
    from the pre-backend :mod:`repro.nn.functional`.

    Subclasses override individual kernels (``FastBackend`` overrides
    ``im2col`` and ``int_gemm``); anything not overridden runs the
    reference implementation, which keeps the bit-identity contract
    trivially satisfied for untouched kernels.
    """

    #: Registry name; subclasses must override.
    name: str = "base"

    def __init__(self, scratch_capacity: int = 16) -> None:
        # Per-backend scratch arena (LRU): column matrices and padded
        # input buffers on the inference path live here.
        self.arena = ScratchArena(capacity=scratch_capacity)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    # -- lowering -------------------------------------------------------

    @kernel
    def im2col(
        self,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
        reuse_scratch: bool = False,
    ) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Lower a padded NCHW batch into a ``(N*OH*OW, C*KH*KW)`` matrix.

        Returns the column matrix together with the output spatial
        size.  With ``reuse_scratch`` the column matrix lives in the
        backend's arena and the next same-shape call overwrites it;
        only pass it when the result is consumed before the next
        lowering (the no-grad conv fast path).
        """
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        if ph or pw:
            x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
        n, c, h, w = x.shape
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
        # windows: (N, C, H-kh+1, W-kw+1, KH, KW) then stride-sliced.
        windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
        windows = windows.transpose(0, 2, 3, 1, 4, 5)
        if reuse_scratch:
            cols = self.arena.get(
                (n * oh * ow, c * kh * kw), x.dtype, tag="im2col"
            )
            np.copyto(cols.reshape(windows.shape), windows)
            return cols, (oh, ow)
        cols = windows.reshape(n * oh * ow, c * kh * kw)
        return np.ascontiguousarray(cols), (oh, ow)

    @kernel
    def col2im(
        self,
        dcols: np.ndarray,
        x_shape: Tuple[int, int, int, int],
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
        out_size: Tuple[int, int],
    ) -> np.ndarray:
        """Scatter-add column gradients back into an input-shaped array.

        The kh*kw accumulation loop fixes the float addition order for
        overlapping windows; backends must not reorder it.
        """
        n, c, h, w = x_shape
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        oh, ow = out_size
        dxp = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=dcols.dtype)
        # (N*OH*OW, C*KH*KW) -> (N, OH, OW, C, KH, KW) -> (N, C, KH, KW, OH, OW)
        d6 = dcols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
        for i in range(kh):
            for j in range(kw):
                dxp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += d6[
                    :, :, i, j
                ]
        if ph or pw:
            return dxp[:, :, ph : ph + h, pw : pw + w]
        return dxp

    # -- GEMM -----------------------------------------------------------

    @kernel
    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Float matrix product ``a @ b``.

        One ``np.matmul`` call, always: BLAS's summation order depends
        on operand shapes and layouts, so any re-blocking or transposed
        reformulation breaks bit-identity (see the module docstring).
        """
        return a @ b

    @kernel
    def int_gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Integer matrix product ``a @ b`` with exact int64 accumulation.

        Unlike :meth:`gemm`, integer addition is exact under
        regrouping, so subclasses may block or re-dispatch this kernel
        freely — results are equal as *integers*, not merely as floats.
        """
        return a @ b

    # -- convolution ----------------------------------------------------

    @kernel
    def conv2d_forward(
        self,
        ctx: Context,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        f, c, kh, kw = weight.shape
        # The scratch column buffer may only be recycled when no backward
        # pass will read it; in grad mode ctx.save keeps it alive.
        cols, (oh, ow) = self.im2col(
            x, (kh, kw), stride, padding,
            reuse_scratch=not is_grad_enabled(),
        )
        w_flat = weight.reshape(f, -1)
        out = self.gemm(cols, w_flat.T)
        if bias is not None:
            out += bias
        n = x.shape[0]
        ctx.save(
            self, cols, w_flat, x.shape, weight.shape, stride, padding,
            (oh, ow),
        )
        return out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)

    @kernel
    def conv2d_backward(self, ctx: Context, grad: np.ndarray):
        (
            _backend, cols, w_flat, x_shape, w_shape, stride, padding,
            out_size,
        ) = ctx.saved
        f = w_shape[0]
        # (N, F, OH, OW) -> (N*OH*OW, F)
        g = grad.transpose(0, 2, 3, 1).reshape(-1, f)
        dx = None
        dw = None
        db = None
        if ctx.needs_input_grad[0]:
            dcols = self.gemm(g, w_flat)
            dx = self.col2im(
                dcols, x_shape, w_shape[2:], stride, padding, out_size
            )
        if ctx.needs_input_grad[1]:
            dw = self.gemm(g.T, cols).reshape(w_shape)
        if len(ctx.needs_input_grad) > 2 and ctx.needs_input_grad[2]:
            db = g.sum(axis=0)
        if ctx.needs_input_grad[2:]:
            return dx, dw, db
        return dx, dw

    @kernel
    def fused_quant_conv2d(
        self,
        ctx: Context,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        quantizer: Any,
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        """Fake-quantize ``weight`` and convolve, as one dispatched op.

        Inference-only: the quantized weight is a transient ndarray —
        never wrapped in a Tensor, never cached, never recorded on a
        tape — so the op shows up as a single profiled dispatch instead
        of a quantize chain plus a conv.  Numerically this is the exact
        unfused computation: ``quantizer.quantize_array`` routes
        through the same quantizer math as the Tensor path.
        """
        wq = quantizer.quantize_array(weight)
        return self.conv2d_forward(ctx, x, wq, bias, stride, padding)

    # -- integer-native lowering (integer_inference) --------------------

    @kernel
    def int_im2col(
        self,
        codes: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int]]:
        """Integer im2col: int64 end to end, no float transport.

        Returns ``(cols, spatial_mask, (oh, ow))``:

        * ``cols`` — the ``(N*OH*OW, C*KH*KW)`` int64 column matrix.
          Zero padding naturally lands as code 0, which contributes
          nothing to code sums (the offset corrections ride on the
          mask).
        * ``spatial_mask`` — ``(OH*OW, KH*KW)`` int64 validity mask
          (1 = the kernel cell reads a real input element, 0 = it reads
          padding).  Validity only depends on spatial geometry, so one
          ``(OH*OW, KH*KW)`` mask replaces the per-sample, per-channel
          ``(N*OH*OW, C*KH*KW)`` mask the old float path materialized.
        """
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        n, c, h, w = codes.shape
        cols, (oh, ow) = self.im2col(codes, kernel, stride, padding)
        ones = np.ones((1, 1, h, w), dtype=np.int64)
        spatial_mask, _ = self.im2col(ones, kernel, stride, padding)
        return cols, spatial_mask, (oh, ow)

    # -- pooling --------------------------------------------------------

    @kernel
    def max_pool2d_forward(
        self,
        ctx: Context,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        if ph or pw:
            x = np.pad(
                x, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                constant_values=-np.inf,
            )
        n, c, h, w = x.shape
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
        windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
        flat = windows.reshape(n, c, oh, ow, kh * kw)
        arg = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
        ctx.save(self, arg, (n, c, h, w), kernel, stride, (ph, pw), (oh, ow))
        return out

    @kernel
    def max_pool2d_backward(self, ctx: Context, grad: np.ndarray):
        (
            _backend, arg, padded_shape, kernel, stride, padding, out_size,
        ) = ctx.saved
        n, c, h, w = padded_shape
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        oh, ow = out_size
        dxp = np.zeros(padded_shape, dtype=grad.dtype)
        ki, kj = np.unravel_index(arg, (kh, kw))
        oi = np.arange(oh)[None, None, :, None] * sh
        oj = np.arange(ow)[None, None, None, :] * sw
        rows = (oi + ki).ravel()
        cols = (oj + kj).ravel()
        ni = np.repeat(np.arange(n), c * oh * ow)
        ci = np.tile(np.repeat(np.arange(c), oh * ow), n)
        np.add.at(dxp, (ni, ci, rows, cols), grad.ravel())
        if ph or pw:
            return (dxp[:, :, ph : h - ph, pw : w - pw],)
        return (dxp,)

    @kernel
    def avg_pool2d_forward(
        self,
        ctx: Context,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
    ) -> np.ndarray:
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        if not (ph or pw):
            windows = sliding_window_view(
                x, (kh, kw), axis=(2, 3)
            )[:, :, ::sh, ::sw]
            out = windows.mean(axis=(-1, -2))
            ctx.save(self, x.shape, kernel, stride, padding,
                     out.shape[2:], None)
            return out
        # Zero-padded average with the divisor counting only real input
        # cells (torch's count_include_pad=False): an edge window
        # averages the values it actually covers, so a constant input
        # pools to the same constant everywhere.
        n, c, h, w = x.shape
        xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
        windows = sliding_window_view(
            xp, (kh, kw), axis=(2, 3)
        )[:, :, ::sh, ::sw]
        ones = np.ones((h, w), dtype=x.dtype)
        ones = np.pad(ones, ((ph, ph), (pw, pw)))
        counts = sliding_window_view(ones, (kh, kw))[::sh, ::sw].sum(
            axis=(-1, -2)
        )
        out = windows.sum(axis=(-1, -2)) / counts
        ctx.save(self, x.shape, kernel, stride, padding, out.shape[2:],
                 counts)
        return out

    @kernel
    def avg_pool2d_backward(self, ctx: Context, grad: np.ndarray):
        (
            _backend, x_shape, kernel, stride, padding, out_size, counts,
        ) = ctx.saved
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        oh, ow = out_size
        if counts is None:
            dx = np.zeros(x_shape, dtype=grad.dtype)
            g = grad / (kh * kw)
            for i in range(kh):
                for j in range(kw):
                    dx[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += g
            return (dx,)
        n, c, h, w = x_shape
        dxp = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=grad.dtype)
        g = grad / counts
        for i in range(kh):
            for j in range(kw):
                dxp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += g
        return (dxp[:, :, ph : ph + h, pw : pw + w],)
