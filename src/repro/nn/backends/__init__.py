"""``repro.nn.backends`` — pluggable compute kernels for the substrate.

A *kernel backend* supplies every low-level kernel the ``repro.nn`` op
set dispatches to: conv2d forward/backward, im2col/col2im, float GEMM,
pooling, the integer-native im2col/GEMM pair used by
:mod:`repro.quantization.integer_inference`, and the fused
fake-quant + conv forward.  Three backends ship:

``reference``
    The plain numpy kernels (the default) — the bit-identity ground
    truth every other backend is validated against.

``fast``
    Arena-padded im2col and a panel-blocked einsum integer GEMM; every
    optimization measured on this substrate and byte-identical to
    ``reference`` (see :mod:`.fast`).

``threaded``
    ``fast`` with the integer GEMM's row panels fanned out over a
    thread pool — built for the serving engine's batched integer
    forwards, where exact int64 regrouping makes threading legal
    without touching bit-identity (see :mod:`.threaded`).

Selecting a backend (:func:`set_default_backend`, :func:`use_backend`,
or ``--kernel-backend`` on the CLI) is **trajectory-invariant**: all
backends produce bit-identical arrays, so the knob is excluded from the
CCQ checkpoint fingerprint exactly like ``probe_workers``.  The tests
in ``tests/nn/test_backends.py`` and
``tests/core/test_backend_invariance.py`` enforce the contract; see
``docs/kernels.md`` for the interface and how to register a backend.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

from .arena import ScratchArena
from .base import KernelBackend, kernel
from .fast import FastBackend
from .reference import ReferenceBackend
from .threaded import ThreadedBackend

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "FastBackend",
    "ThreadedBackend",
    "ScratchArena",
    "kernel",
    "register_backend",
    "get_backend",
    "available_backends",
    "current",
    "set_default_backend",
    "use_backend",
]

_REGISTRY: Dict[str, KernelBackend] = {}
_DEFAULT_NAME = "reference"


def register_backend(
    backend: KernelBackend, overwrite: bool = False
) -> KernelBackend:
    """Register a backend instance under its ``name``.

    A registered backend must be bit-identical to ``reference`` on
    every kernel — run ``tests/nn/test_backends.py`` (the equivalence
    suite parametrizes over the registry, so a new backend is covered
    just by being registered).
    """
    name = backend.name
    if not name or name == "base":
        raise ValueError(
            f"backend {backend!r} must define a registry name"
        )
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """The registered backend called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise KeyError(
            f"unknown kernel backend {name!r} (available: {known})"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def current() -> KernelBackend:
    """The backend new ops dispatch through."""
    return _REGISTRY[_DEFAULT_NAME]


def set_default_backend(name: str) -> str:
    """Select the process-wide default backend; returns the previous
    name so callers can restore it.

    In-flight autograd graphs are unaffected: each op's context pins
    the backend that ran its forward, so its backward runs on the same
    kernels even if the default changes in between.
    """
    global _DEFAULT_NAME
    get_backend(name)  # validate before switching
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = name
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily select ``name`` as the default backend."""
    previous = set_default_backend(name)
    try:
        yield current()
    finally:
        set_default_backend(previous)


register_backend(ReferenceBackend())
register_backend(FastBackend())
register_backend(ThreadedBackend())
