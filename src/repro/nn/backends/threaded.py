"""The ``threaded`` backend: multi-threaded integer GEMM for serving.

Extends :class:`~repro.nn.backends.fast.FastBackend` with one change:
``int_gemm`` splits its row panels across a thread pool.  This is the
backend the serving engine's batch dimension wants — micro-batching
multiplies the im2col row count by the batch size, and numpy's
``einsum`` releases the GIL while it contracts, so panel workers
genuinely overlap on multi-core hosts.

Threading is *only* legal for the integer GEMM: int64 addition is
exact under regrouping, so any panel split produces byte-identical
results (the same argument that lets ``fast`` block its panels).  The
float GEMM stays a single BLAS call, inherited unchanged, because
float summation order is part of the bit-identity contract (see the
``base`` module docstring).

Small problems skip the pool: below ``min_rows`` rows the dispatch
overhead (~tens of microseconds per task) would dominate, so the
kernel falls back to the serial panel loop — again byte-identical.
On a single-core host the pool still works and still produces
identical bytes; it just cannot produce a speedup, which is why the
registry equivalence suite (not a perf assertion) is the gate for
this backend.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np

from .base import kernel
from .fast import FastBackend, _INT_GEMM_PANEL

__all__ = ["ThreadedBackend"]


class ThreadedBackend(FastBackend):
    """``fast`` plus row-parallel integer GEMM."""

    name = "threaded"

    def __init__(
        self,
        num_threads: Optional[int] = None,
        min_rows: int = 128,
        scratch_capacity: int = 16,
    ) -> None:
        super().__init__(scratch_capacity=scratch_capacity)
        if num_threads is None:
            num_threads = min(4, max(2, os.cpu_count() or 1))
        self.num_threads = max(1, int(num_threads))
        self.min_rows = int(min_rows)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_threads,
                    thread_name_prefix="int-gemm",
                )
            return self._pool

    @staticmethod
    def _fill_rows(
        a: np.ndarray, b: np.ndarray, out: np.ndarray, r0: int, r1: int
    ) -> None:
        for m0 in range(r0, r1, _INT_GEMM_PANEL):
            m1 = min(m0 + _INT_GEMM_PANEL, r1)
            np.einsum("mk,kf->mf", a[m0:m1], b, out=out[m0:m1])

    @kernel
    def int_gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        m = a.shape[0]
        out = np.empty((m, b.shape[1]), dtype=np.int64)
        if m < self.min_rows or self.num_threads < 2:
            self._fill_rows(a, b, out, 0, m)
            return out
        chunk = -(-m // self.num_threads)  # ceil division
        futures: List = []
        pool = self._executor()
        for r0 in range(0, m, chunk):
            futures.append(
                pool.submit(self._fill_rows, a, b, out, r0, min(r0 + chunk, m))
            )
        for fut in futures:
            fut.result()  # propagate worker exceptions
        return out
