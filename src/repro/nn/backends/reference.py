"""The ``reference`` backend: the unmodified numpy kernels.

This is :class:`~repro.nn.backends.base.KernelBackend` with a name —
the base class *is* the reference implementation, extracted verbatim
from the pre-backend :mod:`repro.nn.functional`.  Every other backend
is validated bit-for-bit against this one.
"""

from __future__ import annotations

from .base import KernelBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(KernelBackend):
    """Plain numpy kernels; the bit-identity ground truth."""

    name = "reference"
