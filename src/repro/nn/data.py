"""Datasets, data loaders and image augmentation transforms.

The transforms mirror the "standard data augmentations" of the paper's
experimental setup: random cropping with padding, horizontal flipping and
per-channel normalization.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "Compose",
    "RandomCrop",
    "RandomHorizontalFlip",
    "Normalize",
]

Batch = Tuple[np.ndarray, np.ndarray]
Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Dataset:
    """Abstract map-style dataset of ``(image, label)`` pairs."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory dataset backed by ``(N, C, H, W)`` images and ``(N,)`` labels."""

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        transform: Optional[Transform] = None,
        seed: int = 0,
    ) -> None:
        if len(images) != len(labels):
            raise ValueError(
                f"images ({len(images)}) and labels ({len(labels)}) disagree"
            )
        self.images = images
        self.labels = labels
        self.transform = transform
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        image = self.images[index]
        if self.transform is not None:
            image = self.transform(image, self._rng)
        return image, int(self.labels[index])


class Subset(Dataset):
    """A view over a subset of another dataset's indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.dataset[self.indices[index]]


class _PrefetchIterator:
    """One-batch-lookahead wrapper around a batch generator.

    A daemon thread drives the source generator and parks each batch in
    a depth-1 queue, so the next batch is assembled (indexing, stacking,
    transforms) while the consumer trains on the current one.  The
    batches — values and order — are exactly the source's; an exception
    in the source re-raises at the consumer's ``next()``.  ``close()``
    (also called when iteration ends either way) stops the thread, so
    an abandoned iterator never blocks interpreter exit.
    """

    _POLL_S = 0.1

    def __init__(self, source: Iterator[Batch]) -> None:
        self._queue: "queue.Queue" = queue.Queue(maxsize=1)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._produce, args=(source,), daemon=True
        )
        self._thread.start()

    def _put(self, item: Tuple) -> bool:
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=self._POLL_S)
                return True
            except queue.Full:
                continue
        return False

    def _produce(self, source: Iterator[Batch]) -> None:
        try:
            for batch in source:
                if not self._put(("item", batch)):
                    return
            self._put(("done", None))
        except BaseException as err:  # ship it; the consumer re-raises
            self._put(("error", err))

    def __iter__(self) -> "_PrefetchIterator":
        return self

    def __next__(self) -> Batch:
        if self._stop.is_set():
            raise StopIteration
        kind, payload = self._queue.get()
        if kind == "item":
            return payload
        self.close()
        if kind == "error":
            raise payload
        raise StopIteration

    def close(self) -> None:
        """Stop the producer thread (idempotent, safe mid-iteration)."""
        self._stop.set()

    def __del__(self) -> None:
        self.close()


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Yields ``(images, labels)`` ndarray pairs; images are stacked into an
    ``(B, C, H, W)`` float array and labels into an int vector.

    The loader keeps lifetime throughput counters
    (``batches_served`` / ``samples_served``) so callers — e.g. the
    telemetry layer — can report data-pipeline throughput without the
    ``nn`` substrate depending on anything outside itself.

    With ``prefetch=True`` each iteration assembles the next batch on a
    background thread (one-batch lookahead) while the consumer works on
    the current one.  The yielded batches are identical; the loader's
    shuffle RNG is consumed identically.  The only observable
    difference is for datasets with *stochastic transforms* consumed by
    a loop that breaks early: the lookahead has then transformed one
    batch more than a serial iteration would have, advancing the
    dataset's transform RNG by one batch.  Transform-free datasets (the
    synthetic tasks) and fully consumed iterations are exactly
    RNG-neutral, which is why prefetching is opt-in.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: int = 0,
        prefetch: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.prefetch = prefetch
        self._rng = np.random.default_rng(seed)
        self.batches_served = 0
        self.samples_served = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        if self.prefetch:
            return _PrefetchIterator(self._iter_batches())
        return self._iter_batches()

    def _iter_batches(self) -> Iterator[Batch]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            images: List[np.ndarray] = []
            labels: List[int] = []
            for i in idx:
                image, label = self.dataset[int(i)]
                images.append(image)
                labels.append(label)
            self.batches_served += 1
            self.samples_served += len(labels)
            yield np.stack(images), np.asarray(labels, dtype=np.int64)


class Compose:
    """Chain transforms left to right."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for t in self.transforms:
            image = t(image, rng)
        return image


class RandomCrop:
    """Pad by ``padding`` pixels then crop a random ``size`` x ``size`` patch."""

    def __init__(self, size: int, padding: int = 4) -> None:
        self.size = size
        self.padding = padding

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        p = self.padding
        padded = np.pad(image, ((0, 0), (p, p), (p, p)))
        max_offset = padded.shape[1] - self.size
        top = int(rng.integers(0, max_offset + 1))
        left = int(rng.integers(0, max_offset + 1))
        return padded[:, top : top + self.size, left : left + self.size]


class RandomHorizontalFlip:
    """Flip the image horizontally with probability ``p``."""

    def __init__(self, p: float = 0.5) -> None:
        self.p = p

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image


class Normalize:
    """Per-channel standardization ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float64).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float64).reshape(-1, 1, 1)

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (image - self.mean) / self.std
