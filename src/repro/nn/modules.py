"""Composable network modules with parameter management.

The :class:`Module` base class provides PyTorch-style parameter/submodule
registration, ``named_parameters``/``named_modules`` traversal, train/eval
mode switching and ``state_dict`` round-tripping.  The CCQ framework relies
on this traversal to enumerate quantizable layers and snapshot/restore
their parameters between competition probes.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "Identity",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "collect_bn_batch_stats",
    "fold_bn_batch_stats",
]

# When a sink is installed (see collect_bn_batch_stats), training-mode
# BatchNorm forwards append ``(module, batch_mean, unbiased_var)`` here
# instead of folding the statistics into their running buffers.  The
# data-parallel recovery trainer needs this: shard forwards may run in
# worker processes whose buffer copies are throwaway, so the EMA folds
# are replayed centrally — in canonical shard order — from the captured
# per-shard batch statistics, which depend only on the shard data.
_BN_STATS_SINK: Optional[List[Tuple["BatchNorm2d", np.ndarray, np.ndarray]]] = None


@contextmanager
def collect_bn_batch_stats(
    sink: List[Tuple["BatchNorm2d", np.ndarray, np.ndarray]]
):
    """Capture BatchNorm batch statistics instead of applying them.

    While active, every training-mode :class:`BatchNorm2d` forward
    appends ``(module, batch_mean, unbiased_var)`` to ``sink`` — in
    forward order — and leaves ``running_mean``/``running_var``
    untouched.  Replaying the captured entries with
    :func:`fold_bn_batch_stats` in the same order reproduces the exact
    buffer trajectory of an uncaptured run, bit for bit.
    """
    global _BN_STATS_SINK
    previous = _BN_STATS_SINK
    _BN_STATS_SINK = sink
    try:
        yield sink
    finally:
        _BN_STATS_SINK = previous


def fold_bn_batch_stats(
    module: "BatchNorm2d", mean: np.ndarray, unbiased_var: np.ndarray
) -> None:
    """Apply one captured EMA fold to a BatchNorm module's buffers.

    Exactly the in-place update the training forward performs, so a
    capture-and-replay sequence is bitwise identical to the direct one.
    """
    module.running_mean *= 1.0 - module.momentum
    module.running_mean += module.momentum * mean
    module.running_var *= 1.0 - module.momentum
    module.running_var += module.momentum * unbiased_var


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module."""

    def __init__(self, data: Any) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- registration --------------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        else:
            # Re-assigning a registered name (e.g. ``self.bias = None``)
            # must drop the stale registration.
            self.__dict__.get("_parameters", {}).pop(name, None)
            self.__dict__.get("_modules", {}).pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal -----------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its descendants."""
        for _, p in self.named_parameters():
            yield p

    def named_parameters(
        self, prefix: str = ""
    ) -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs, depth first."""
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def named_modules(
        self, prefix: str = ""
    ) -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs including self."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- mode / grads ----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # -- state dict --------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot all parameters and buffers as copied ndarrays."""
        state: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[f"buffer.{name}"] = b.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("buffer."):
                continue
            if name not in params:
                raise KeyError(f"unexpected parameter {name!r} in state dict")
            params[name].copy_(value)
        buffers = dict(self.named_buffers())
        for name, value in state.items():
            if not name.startswith("buffer."):
                continue
            key = name[len("buffer."):]
            if key not in buffers:
                raise KeyError(f"unexpected buffer {key!r} in state dict")
            np.copyto(buffers[key], value)

    # -- execution ---------------------------------------------------------------

    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            self.add_module(str(i), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x


class Conv2d(Module):
    """2-D convolution layer with Kaiming-normal initialization."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng=rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng=rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of NCHW inputs."""

    def __init__(
        self, num_features: int, eps: float = 1e-5, momentum: float = 0.1
    ) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        axes = (0, 2, 3)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            # Update running statistics (EMA, unbiased variance like torch).
            batch = x.shape[0] * x.shape[2] * x.shape[3]
            unbiased = var.data.reshape(-1) * batch / max(batch - 1, 1)
            if _BN_STATS_SINK is not None:
                # Shard-grad capture mode: record the batch statistics
                # for a central, canonically-ordered replay instead of
                # folding them here (see collect_bn_batch_stats).
                _BN_STATS_SINK.append(
                    (self, mean.data.reshape(-1).copy(), unbiased)
                )
            else:
                self.running_mean *= 1.0 - self.momentum
                self.running_mean += self.momentum * mean.data.reshape(-1)
                self.running_var *= 1.0 - self.momentum
                self.running_var += self.momentum * unbiased
            x_hat = centered / (var + self.eps).sqrt()
        else:
            shape = (1, self.num_features, 1, 1)
            mean = Tensor(self.running_mean.reshape(shape))
            std = Tensor(np.sqrt(self.running_var.reshape(shape) + self.eps))
            x_hat = (x - mean) / std
        w = self.weight.reshape(1, self.num_features, 1, 1)
        b = self.bias.reshape(1, self.num_features, 1, 1)
        return x_hat * w + b

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    """Rectified linear unit module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten everything after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class MaxPool2d(Module):
    """2-D max pooling module."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None,
                 padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    """2-D average pooling module.

    Padding is zero-padding with padded cells excluded from the divisor
    (torch's ``count_include_pad=False``).
    """

    def __init__(
        self, kernel_size: int, stride: Optional[int] = None,
        padding: int = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    """Global average pooling producing ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
