"""Checkpoint serialization: save/load module state as ``.npz`` files.

Long CCQ runs (the `paper` scale) want restartable checkpoints.  A
checkpoint bundles the model's parameters and buffers (via
``Module.state_dict``) together with the per-layer bit configuration, so a
mixed-precision model reloads at the exact precision it was saved at.

Writes are crash-safe: the archive is serialized to a temporary file in
the target directory and renamed into place with ``os.replace``, so a
kill mid-write can never leave a torn ``.npz`` behind — the old
checkpoint (if any) survives intact until the new one is fully on disk.

Writes are also *integrity-checked*: every archive gets a ``.sha256``
sidecar (``sha256sum -c`` compatible), and :func:`verify_archive`
detects silent payload corruption — a flipped bit on disk, a truncated
copy — before a resume trusts the data.  Archives without a sidecar
(written before this scheme existed) are accepted as-is.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .modules import Module

__all__ = [
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "atomic_savez",
    "named_state_arrays",
    "load_state_arrays",
    "digest_path",
    "file_sha256",
    "verify_archive",
]

_BITS_KEY = "__bit_config_json__"

DIGEST_SUFFIX = ".sha256"


class CheckpointError(RuntimeError):
    """A checkpoint cannot be restored into the given model.

    Raised with a human-readable description of the mismatch (e.g. the
    layer names / bit widths present on one side but not the other)
    instead of letting a bare ``KeyError`` escape from deep inside the
    state-dict machinery.
    """


def atomic_savez(path: Union[str, Path], **arrays: np.ndarray) -> None:
    """``np.savez_compressed`` with atomic-rename semantics.

    The archive is written to a temporary file in the same directory
    (same filesystem, so the rename is atomic), fsynced, and moved into
    place with ``os.replace``.  Readers either see the old complete file
    or the new complete file, never a partial write.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            # Writing to the file object (not a path) stops numpy from
            # appending its own ".npz" suffix to the temp name.
            np.savez_compressed(f, **arrays)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # Sidecar after the rename: a crash in the gap leaves a fresh
    # archive with a stale/missing sidecar, which verification treats
    # as corrupt — the reader then falls back to the previous
    # generation instead of trusting unverifiable bytes.
    _write_digest(path)


def digest_path(path: Union[str, Path]) -> Path:
    """The ``.sha256`` sidecar path belonging to ``path``."""
    path = Path(path)
    return path.with_name(path.name + DIGEST_SUFFIX)


def file_sha256(path: Union[str, Path]) -> str:
    """Streaming sha256 hex digest of a file's contents."""
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_digest(path: Path) -> None:
    # ``sha256sum -c``-compatible: "<hex>  <filename>\n".  Written
    # atomically so the sidecar itself can never be torn.
    line = f"{file_sha256(path)}  {path.name}\n"
    sidecar = digest_path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(sidecar.parent), prefix=sidecar.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(line)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_name, str(sidecar))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def verify_archive(path: Union[str, Path]) -> Optional[bool]:
    """Check ``path`` against its ``.sha256`` sidecar.

    Returns ``True`` on a match, ``False`` on a mismatch (the archive
    or sidecar is corrupt) and ``None`` when no sidecar exists — a
    legacy archive predating the digest scheme, which callers accept.
    Raises :class:`CheckpointError` if the archive itself is missing.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"archive {path} does not exist")
    sidecar = digest_path(path)
    if not sidecar.exists():
        return None
    recorded = sidecar.read_text(encoding="utf-8").split()
    if not recorded:
        return False
    return file_sha256(path) == recorded[0]


def named_state_arrays(model: Module) -> Dict[str, np.ndarray]:
    """The model's parameters and buffers as *live* (uncopied) ndarrays.

    Same key scheme as ``Module.state_dict`` (buffers carry a
    ``buffer.`` prefix) but zero-copy: the returned arrays alias the
    model's storage.  This is the broadcast format of the parallel
    probe backend — the arrays are packed straight into shared memory
    without an intermediate copy.  Callers must not mutate them.
    """
    state: Dict[str, np.ndarray] = {}
    for name, p in model.named_parameters():
        state[name] = p.data
    for name, b in model.named_buffers():
        state[f"buffer.{name}"] = b
    return state


def load_state_arrays(model: Module, arrays: Dict[str, np.ndarray]) -> None:
    """Copy ``arrays`` (a :func:`named_state_arrays` mapping) into ``model``.

    The inverse of :func:`named_state_arrays`: values are copied
    in-place into the model's existing parameter/buffer storage
    (``np.copyto``), so optimizer slots and shared-parameter aliasing
    survive.  Extra or missing keys raise :class:`CheckpointError`.
    """
    params = dict(model.named_parameters())
    buffers = dict(model.named_buffers())
    for name, value in arrays.items():
        if name.startswith("buffer."):
            key = name[len("buffer."):]
            if key not in buffers:
                raise CheckpointError(f"unexpected buffer {key!r}")
            np.copyto(buffers[key], value)
        else:
            if name not in params:
                raise CheckpointError(f"unexpected parameter {name!r}")
            np.copyto(params[name].data, value)


def save_checkpoint(
    model: Module,
    path: Union[str, Path],
    extra: Optional[Dict[str, float]] = None,
) -> None:
    """Write parameters, buffers and the bit configuration to ``path``.

    ``extra`` is a flat dict of scalars (e.g. the baseline accuracy) kept
    alongside the arrays.  The write is atomic (see :func:`atomic_savez`).
    """
    from ..quantization.qmodules import get_bit_config, quantized_layers

    state = model.state_dict()
    meta = {
        "bits": {
            name: list(pair) for name, pair in get_bit_config(model).items()
        } if list(quantized_layers(model)) else {},
        "extra": extra or {},
    }
    state[_BITS_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    atomic_savez(path, **state)


def _check_bit_config_compatible(
    checkpoint_bits: Dict[str, tuple],
    model_layers: Dict[str, object],
    path: Union[str, Path],
) -> None:
    """Raise :class:`CheckpointError` if the saved bit config cannot be
    applied to the model's quantized layers, listing the mismatch."""
    saved = set(checkpoint_bits)
    present = set(model_layers)
    missing_in_model = sorted(saved - present)
    missing_in_ckpt = sorted(present - saved)
    if not missing_in_model and not missing_in_ckpt:
        return
    lines = [
        f"checkpoint {path} bit configuration does not match the "
        f"model's quantized layers:"
    ]
    if missing_in_model:
        lines.append(
            "  layers in checkpoint but not in model: "
            + ", ".join(
                f"{name} ({_fmt_bits(checkpoint_bits[name])})"
                for name in missing_in_model
            )
        )
    if missing_in_ckpt:
        lines.append(
            "  quantized layers in model but not in checkpoint: "
            + ", ".join(missing_in_ckpt)
        )
    raise CheckpointError("\n".join(lines))


def _fmt_bits(pair) -> str:
    w_bits, a_bits = tuple(pair)
    w = "fp" if w_bits is None else f"{w_bits}b"
    a = "fp" if a_bits is None else f"{a_bits}b"
    return f"w={w}, a={a}"


def load_checkpoint(
    model: Module, path: Union[str, Path]
) -> Dict[str, float]:
    """Restore a checkpoint into ``model``; returns the ``extra`` dict.

    The bit configuration is re-applied to the model's quantized layers
    (if any were saved), so the loaded network evaluates at the saved
    precision immediately.  A checkpoint whose bit configuration names
    different layers than the model raises :class:`CheckpointError`
    listing the mismatch, as does a parameter/buffer name mismatch.
    """
    from ..quantization.qmodules import quantized_layers, set_bit_config

    with np.load(str(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    meta_bytes = state.pop(_BITS_KEY, None)
    meta = (
        json.loads(bytes(meta_bytes.tolist()).decode("utf-8"))
        if meta_bytes is not None
        else {}
    )
    bits = {
        name: tuple(pair) for name, pair in meta.get("bits", {}).items()
    }
    # Order matters: applying the bit config first lets the subsequent
    # state load overwrite any statistics-derived quantizer state (LSQ
    # steps, QIL intervals) with the *trained* saved values...
    model_qlayers = dict(quantized_layers(model))
    if bits or model_qlayers:
        _check_bit_config_compatible(bits, model_qlayers, path)
    if bits:
        set_bit_config(model, bits)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as err:
        raise CheckpointError(
            f"checkpoint {path} state does not match the model: {err}"
        ) from err
    # ...and the quantizers are then marked initialized so their next
    # forward does not re-derive that state from scratch.
    for _, layer in quantized_layers(model):
        for quantizer in (layer.weight_quantizer, layer.act_quantizer):
            if hasattr(quantizer, "_initialized"):
                quantizer._initialized = True
    return dict(meta.get("extra", {}))
