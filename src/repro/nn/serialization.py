"""Checkpoint serialization: save/load module state as ``.npz`` files.

Long CCQ runs (the `paper` scale) want restartable checkpoints.  A
checkpoint bundles the model's parameters and buffers (via
``Module.state_dict``) together with the per-layer bit configuration, so a
mixed-precision model reloads at the exact precision it was saved at.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .modules import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_BITS_KEY = "__bit_config_json__"


def save_checkpoint(
    model: Module,
    path: Union[str, Path],
    extra: Optional[Dict[str, float]] = None,
) -> None:
    """Write parameters, buffers and the bit configuration to ``path``.

    ``extra`` is a flat dict of scalars (e.g. the baseline accuracy) kept
    alongside the arrays.
    """
    from ..quantization.qmodules import get_bit_config, quantized_layers

    state = model.state_dict()
    meta = {
        "bits": {
            name: list(pair) for name, pair in get_bit_config(model).items()
        } if list(quantized_layers(model)) else {},
        "extra": extra or {},
    }
    state[_BITS_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez_compressed(str(path), **state)


def load_checkpoint(
    model: Module, path: Union[str, Path]
) -> Dict[str, float]:
    """Restore a checkpoint into ``model``; returns the ``extra`` dict.

    The bit configuration is re-applied to the model's quantized layers
    (if any were saved), so the loaded network evaluates at the saved
    precision immediately.
    """
    from ..quantization.qmodules import quantized_layers, set_bit_config

    with np.load(str(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    meta_bytes = state.pop(_BITS_KEY, None)
    meta = (
        json.loads(bytes(meta_bytes.tolist()).decode("utf-8"))
        if meta_bytes is not None
        else {}
    )
    bits = {
        name: tuple(pair) for name, pair in meta.get("bits", {}).items()
    }
    # Order matters: applying the bit config first lets the subsequent
    # state load overwrite any statistics-derived quantizer state (LSQ
    # steps, QIL intervals) with the *trained* saved values...
    if bits:
        set_bit_config(model, bits)
    model.load_state_dict(state)
    # ...and the quantizers are then marked initialized so their next
    # forward does not re-derive that state from scratch.
    for _, layer in quantized_layers(model):
        for quantizer in (layer.weight_quantizer, layer.act_quantizer):
            if hasattr(quantizer, "_initialized"):
                quantizer._initialized = True
    return dict(meta.get("extra", {}))
