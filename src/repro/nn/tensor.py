"""The :class:`Tensor` type: a numpy array with reverse-mode autograd.

Tensors support the arithmetic, reduction and shape operations needed to
express convolutional networks and quantization-aware training.  Gradients
flow through broadcasting correctly (broadcast dimensions are summed out on
the way back).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from . import autograd
from .autograd import Context, Function

__all__ = ["Tensor", "as_tensor"]

_Scalar = Union[int, float]
_TensorLike = Union["Tensor", np.ndarray, _Scalar, Sequence[Any]]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away prepended dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value: _TensorLike, dtype: Any = np.float64) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


class Tensor:
    """A numpy-backed tensor participating in the autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_grad_fn")

    def __init__(
        self,
        data: _TensorLike,
        requires_grad: bool = False,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._grad_fn: Optional[autograd._Node] = None

    # -- introspection -----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self._grad_fn is None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_part})"

    # -- graph management ---------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (see :func:`autograd.backward`)."""
        autograd.backward(self, grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def copy_(self, value: Union["Tensor", np.ndarray]) -> "Tensor":
        """In-place overwrite of the data buffer (graph-invisible)."""
        src = value.data if isinstance(value, Tensor) else np.asarray(value)
        np.copyto(self.data, src)
        return self

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: _TensorLike) -> "Tensor":
        return _Add.apply(self, as_tensor(other))

    __radd__ = __add__

    def __sub__(self, other: _TensorLike) -> "Tensor":
        return _Sub.apply(self, as_tensor(other))

    def __rsub__(self, other: _TensorLike) -> "Tensor":
        return _Sub.apply(as_tensor(other), self)

    def __mul__(self, other: _TensorLike) -> "Tensor":
        return _Mul.apply(self, as_tensor(other))

    __rmul__ = __mul__

    def __truediv__(self, other: _TensorLike) -> "Tensor":
        return _Div.apply(self, as_tensor(other))

    def __rtruediv__(self, other: _TensorLike) -> "Tensor":
        return _Div.apply(as_tensor(other), self)

    def __neg__(self) -> "Tensor":
        return _Neg.apply(self)

    def __pow__(self, exponent: _Scalar) -> "Tensor":
        return _Pow.apply(self, exponent=float(exponent))

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return _MatMul.apply(self, as_tensor(other))

    # -- comparisons (non-differentiable, return plain ndarrays) ------------

    def __gt__(self, other: _TensorLike) -> np.ndarray:
        return self.data > _raw(other)

    def __lt__(self, other: _TensorLike) -> np.ndarray:
        return self.data < _raw(other)

    def __ge__(self, other: _TensorLike) -> np.ndarray:
        return self.data >= _raw(other)

    def __le__(self, other: _TensorLike) -> np.ndarray:
        return self.data <= _raw(other)

    # -- shape ops ----------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _Reshape.apply(self, shape=shape)

    def transpose(self, *axes: int) -> "Tensor":
        return _Transpose.apply(self, axes=axes or None)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def flatten(self, start_dim: int = 0) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def __getitem__(self, index: Any) -> "Tensor":
        return _GetItem.apply(self, index=index)

    # -- reductions ----------------------------------------------------------

    def sum(
        self,
        axis: Optional[Union[int, Tuple[int, ...]]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        return _Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(
        self,
        axis: Optional[Union[int, Tuple[int, ...]]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        return _Mean.apply(self, axis=axis, keepdims=keepdims)

    def max(
        self,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        return _Max.apply(self, axis=axis, keepdims=keepdims)

    def min(
        self,
        axis: Optional[int] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        return (-self).max(axis=axis, keepdims=keepdims).__neg__()

    # -- elementwise functions ------------------------------------------------

    def exp(self) -> "Tensor":
        return _Exp.apply(self)

    def log(self) -> "Tensor":
        return _Log.apply(self)

    def sqrt(self) -> "Tensor":
        return _Pow.apply(self, exponent=0.5)

    def abs(self) -> "Tensor":
        return _Abs.apply(self)

    def tanh(self) -> "Tensor":
        return _Tanh.apply(self)

    def clip(self, low: _Scalar, high: _Scalar) -> "Tensor":
        return _Clip.apply(self, low=float(low), high=float(high))

    def relu(self) -> "Tensor":
        return _ReLU.apply(self)

    def sigmoid(self) -> "Tensor":
        return _Sigmoid.apply(self)


def _raw(value: _TensorLike) -> Union[np.ndarray, _Scalar]:
    return value.data if isinstance(value, Tensor) else value


# ---------------------------------------------------------------------------
# Elementwise / arithmetic functions
# ---------------------------------------------------------------------------


class _Add(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save(a.shape, b.shape)
        return a + b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a_shape, b_shape = ctx.saved
        return _unbroadcast(grad, a_shape), _unbroadcast(grad, b_shape)


class _Sub(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save(a.shape, b.shape)
        return a - b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a_shape, b_shape = ctx.saved
        return _unbroadcast(grad, a_shape), _unbroadcast(-grad, b_shape)


class _Mul(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save(a, b)
        return a * b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved
        return _unbroadcast(grad * b, a.shape), _unbroadcast(grad * a, b.shape)


class _Div(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save(a, b)
        return a / b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved
        ga = _unbroadcast(grad / b, a.shape)
        gb = _unbroadcast(-grad * a / (b * b), b.shape)
        return ga, gb


class _Neg(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        return -a

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (-grad,)


class _Pow(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, exponent: float) -> np.ndarray:
        ctx.save(a, exponent)
        return a ** exponent

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, exponent = ctx.saved
        return (grad * exponent * a ** (exponent - 1.0),)


class _Exp(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        out = np.exp(a)
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved
        return (grad * out,)


class _Log(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.save(a)
        return np.log(a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (a,) = ctx.saved
        return (grad / a,)


class _Abs(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.save(np.sign(a))
        return np.abs(a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (sign,) = ctx.saved
        return (grad * sign,)


class _Tanh(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        out = np.tanh(a)
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved
        return (grad * (1.0 - out * out),)


class _Sigmoid(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-a))
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved
        return (grad * out * (1.0 - out),)


class _Clip(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, low: float, high: float) -> np.ndarray:
        ctx.save((a >= low) & (a <= high))
        return np.clip(a, low, high)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (mask,) = ctx.saved
        return (grad * mask,)


class _ReLU(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        mask = a > 0
        ctx.save(mask)
        return a * mask

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (mask,) = ctx.saved
        return (grad * mask,)


# ---------------------------------------------------------------------------
# Shape functions
# ---------------------------------------------------------------------------


class _Reshape(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        ctx.save(a.shape)
        return a.reshape(shape)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (orig_shape,) = ctx.saved
        return (grad.reshape(orig_shape),)


class _Transpose(Function):
    @staticmethod
    def forward(
        ctx: Context, a: np.ndarray, axes: Optional[Tuple[int, ...]]
    ) -> np.ndarray:
        ctx.save(axes, a.ndim)
        return np.transpose(a, axes)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        axes, ndim = ctx.saved
        if axes is None:
            return (np.transpose(grad),)
        inverse = np.argsort(axes)
        return (np.transpose(grad, inverse),)


class _GetItem(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, index: Any) -> np.ndarray:
        ctx.save(a.shape, index)
        return a[index]

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        shape, index = ctx.saved
        out = np.zeros(shape, dtype=grad.dtype)
        np.add.at(out, index, grad)
        return (out,)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _restore_reduced(
    grad: np.ndarray,
    shape: Tuple[int, ...],
    axis: Optional[Union[int, Tuple[int, ...]]],
    keepdims: bool,
) -> np.ndarray:
    """Broadcast a reduced gradient back up to ``shape``."""
    if axis is None:
        return np.broadcast_to(grad, shape).copy()
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    if not keepdims:
        for ax in sorted(a % len(shape) for a in axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape).copy()


class _Sum(Function):
    @staticmethod
    def forward(
        ctx: Context,
        a: np.ndarray,
        axis: Optional[Union[int, Tuple[int, ...]]],
        keepdims: bool,
    ) -> np.ndarray:
        ctx.save(a.shape, axis, keepdims)
        return a.sum(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        shape, axis, keepdims = ctx.saved
        return (_restore_reduced(grad, shape, axis, keepdims),)


class _Mean(Function):
    @staticmethod
    def forward(
        ctx: Context,
        a: np.ndarray,
        axis: Optional[Union[int, Tuple[int, ...]]],
        keepdims: bool,
    ) -> np.ndarray:
        out = a.mean(axis=axis, keepdims=keepdims)
        ctx.save(a.shape, axis, keepdims, a.size // max(out.size, 1))
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        shape, axis, keepdims, count = ctx.saved
        return (_restore_reduced(grad, shape, axis, keepdims) / count,)


class _Max(Function):
    @staticmethod
    def forward(
        ctx: Context, a: np.ndarray, axis: Optional[int], keepdims: bool
    ) -> np.ndarray:
        out = a.max(axis=axis, keepdims=keepdims)
        out_keep = a.max(axis=axis, keepdims=True) if axis is not None else out
        mask = a == out_keep
        # Split gradient equally among ties, matching numpy argmax semantics
        # closely enough for training purposes.
        ctx.save(mask, axis, keepdims, a.shape)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        mask, axis, keepdims, shape = ctx.saved
        g = _restore_reduced(grad, shape, axis, keepdims)
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        return (g * mask / counts,)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------


class _MatMul(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save(a, b)
        return a @ b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved
        if a.ndim == 2 and b.ndim == 2:
            return grad @ b.T, a.T @ grad
        # General batched case: contract over broadcast batch dims.
        ga = grad @ np.swapaxes(b, -1, -2)
        gb = np.swapaxes(a, -1, -2) @ grad
        return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)
