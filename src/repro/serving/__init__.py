"""Integer-only serving for CCQ-quantized models.

Two halves:

- :mod:`repro.serving.compile` — lower a trained fake-quant chain
  model to an integer-only plan (BN folding, activation-grid probing,
  fixed-point requantization); see :func:`compile_model`.
- :mod:`repro.serving.engine` — a micro-batching async runtime over a
  compiled plan, with telemetry and structured per-request failures;
  see :class:`ServingEngine`.

The deployment contract: between ingress (quantizing the float input)
and egress (reconstructing float logits from the last layer), the
forward pass is pure int64 arithmetic, and batched execution is
bitwise identical to serial execution.  docs/serving.md walks through
the math and the knobs.
"""

from .compile import (
    ActGrid,
    CompiledModel,
    CompileError,
    FrozenActQuantizer,
    compile_model,
    fake_quant_activations,
    fold_batchnorm,
    freeze_dynamic_quantizers,
)
from .engine import RequestError, ServingEngine
from .fixedpoint import FixedPointMultiplier, round_half_even_shift
from .loadgen import LoadResult, batch_invariance_errors, run_load

__all__ = [
    "ActGrid",
    "CompileError",
    "CompiledModel",
    "FixedPointMultiplier",
    "FrozenActQuantizer",
    "LoadResult",
    "RequestError",
    "ServingEngine",
    "batch_invariance_errors",
    "compile_model",
    "fake_quant_activations",
    "fold_batchnorm",
    "freeze_dynamic_quantizers",
    "round_half_even_shift",
    "run_load",
]
