"""Closed-loop load generator for :class:`~repro.serving.engine.ServingEngine`.

``run_load`` drives an engine with ``n_clients`` threads.  Each client
is *closed-loop*: it submits a request, waits for the response, then
submits its next one — so per-client ordering is structural, while
cross-client interleaving still exercises the micro-batcher (distinct
clients' in-flight requests get coalesced into shared batches).

The result carries every client's (input index, output) sequence so
callers can assert the serving engine's batch-invariance:
:func:`batch_invariance_errors` replays each input alone through the
compiled plan and reports any response that is not bitwise identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ClientTrace", "LoadResult", "run_load", "batch_invariance_errors"]


@dataclass
class ClientTrace:
    """One client's completed requests, in submission order."""

    input_indices: List[int] = field(default_factory=list)
    outputs: List[np.ndarray] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)


@dataclass
class LoadResult:
    n_clients: int
    requests_per_client: int
    n_requests: int
    n_failures: int
    duration_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    latencies_ms: List[float]
    clients: List[ClientTrace]

    def summary(self) -> Dict[str, Any]:
        return {
            "n_clients": self.n_clients,
            "requests_per_client": self.requests_per_client,
            "n_requests": self.n_requests,
            "n_failures": self.n_failures,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p90_ms": self.latency_p90_ms,
            "latency_p99_ms": self.latency_p99_ms,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile (matches telemetry.Histogram)."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def run_load(
    engine: Any,
    inputs: Sequence[np.ndarray],
    n_clients: int = 8,
    requests_per_client: int = 16,
    timeout: float = 120.0,
) -> LoadResult:
    """Drive ``engine`` with concurrent closed-loop clients.

    Client ``c``'s ``i``-th request uses input index
    ``(c + i * n_clients) % len(inputs)``, so the same input pool is
    exercised from interleaved positions across clients and batches.
    """
    if not inputs:
        raise ValueError("need at least one input")
    traces = [ClientTrace() for _ in range(n_clients)]
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    barrier = threading.Barrier(n_clients + 1)

    def client(c: int) -> None:
        trace = traces[c]
        barrier.wait()
        for i in range(requests_per_client):
            idx = (c + i * n_clients) % len(inputs)
            start = time.perf_counter()
            future = engine.submit(inputs[idx])
            try:
                out = future.result(timeout=timeout)
            except Exception as exc:
                trace.input_indices.append(idx)
                trace.outputs.append(None)
                trace.errors.append(str(exc))
            else:
                trace.input_indices.append(idx)
                trace.outputs.append(out)
                trace.errors.append(None)
            latencies[c].append((time.perf_counter() - start) * 1000.0)

    threads = [
        threading.Thread(target=client, args=(c,), name=f"loadgen-{c}")
        for c in range(n_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t0

    flat = sorted(x for per in latencies for x in per)
    n_requests = n_clients * requests_per_client
    n_failures = sum(
        1 for trace in traces for err in trace.errors if err is not None
    )
    return LoadResult(
        n_clients=n_clients,
        requests_per_client=requests_per_client,
        n_requests=n_requests,
        n_failures=n_failures,
        duration_s=duration,
        throughput_rps=n_requests / duration if duration > 0 else float("inf"),
        latency_p50_ms=_percentile(flat, 50.0),
        latency_p90_ms=_percentile(flat, 90.0),
        latency_p99_ms=_percentile(flat, 99.0),
        latencies_ms=flat,
        clients=traces,
    )


def batch_invariance_errors(
    compiled: Any,
    inputs: Sequence[np.ndarray],
    result: LoadResult,
) -> List[Tuple[int, int, int]]:
    """Check every served response against solo serial execution.

    Each distinct input is run alone (batch of one) through
    ``compiled``; any response from the load run that is not *bitwise*
    identical is reported as ``(client, position, input_index)``.  An
    empty list is the batch-invariance certificate.
    """
    solo: Dict[int, np.ndarray] = {}
    mismatches: List[Tuple[int, int, int]] = []
    for c, trace in enumerate(result.clients):
        for pos, (idx, out, err) in enumerate(
            zip(trace.input_indices, trace.outputs, trace.errors)
        ):
            if err is not None:
                mismatches.append((c, pos, idx))
                continue
            if idx not in solo:
                solo[idx] = np.asarray(
                    compiled.forward(np.asarray(inputs[idx])[None])[0]
                )
            if not np.array_equal(out, solo[idx]):
                mismatches.append((c, pos, idx))
    return mismatches
