"""Stdlib HTTP frontend for a :class:`~repro.serving.engine.ServingEngine`.

Endpoints:

``POST /predict``
    Body ``{"inputs": <nested list>}`` — either one sample of the
    engine's per-sample shape or a batch ``(N, *shape)``.  Each sample
    becomes one engine request (so concurrent HTTP clients share
    micro-batches).  Response ``{"outputs": [...]}``; a failed sample
    carries its structured error in place of an output and flips the
    top-level ``"ok"`` flag.

``GET /metrics``
    The engine's metrics registry in Prometheus text format.

``GET /healthz``
    ``{"status": "ok"}`` plus the compiled plan summary.

The server is a ``ThreadingHTTPServer``: each connection blocks only
its own handler thread while its futures resolve, which is exactly the
closed-loop client shape the micro-batcher is designed to coalesce.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import numpy as np

from ..telemetry import prometheus_text

__all__ = ["make_server"]


def make_server(
    engine: Any,
    registry: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: float = 60.0,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server for ``engine``.

    ``registry`` is the ``MetricsRegistry`` backing the engine's
    telemetry (served at ``/metrics``).  ``port=0`` binds a free port;
    read it back from ``server.server_address``.
    """

    class Handler(BaseHTTPRequestHandler):
        def _send(self, code: int, body: bytes, ctype: str) -> None:
            self.send_response(code)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, code: int, payload: Any) -> None:
            self._send(
                code, json.dumps(payload).encode("utf-8"),
                "application/json",
            )

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            if self.path == "/metrics":
                body = prometheus_text(registry.snapshot()).encode("utf-8")
                self._send(200, body, "text/plain; version=0.0.4")
            elif self.path == "/healthz":
                payload = {"status": "ok"}
                if hasattr(engine.compiled, "summary"):
                    payload["model"] = engine.compiled.summary()
                self._send_json(200, payload)
            else:
                self._send_json(404, {"error": f"no route {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            if self.path != "/predict":
                self._send_json(404, {"error": f"no route {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                payload = json.loads(self.rfile.read(length) or b"{}")
                raw = np.asarray(payload["inputs"], dtype=np.float64)
            except (KeyError, ValueError, TypeError) as exc:
                self._send_json(
                    400, {"ok": False, "error": f"bad request body: {exc}"}
                )
                return
            shape = tuple(engine.compiled.input_shape)
            batch = raw[None] if raw.shape == shape else raw
            if batch.ndim < 1 or batch.shape[0] == 0:
                self._send_json(
                    400, {"ok": False, "error": "empty input batch"}
                )
                return
            futures = [engine.submit(sample) for sample in batch]
            outputs = []
            ok = True
            for future in futures:
                try:
                    outputs.append(
                        future.result(timeout=request_timeout).tolist()
                    )
                except Exception as exc:
                    ok = False
                    err = (
                        exc.to_dict() if hasattr(exc, "to_dict")
                        else {"error": str(exc)}
                    )
                    outputs.append(err)
            self._send_json(200 if ok else 422, {"ok": ok, "outputs": outputs})

        def log_message(self, fmt: str, *log_args: Any) -> None:
            pass  # access logging is the telemetry registry's job

    return ThreadingHTTPServer((host, port), Handler)
