"""Micro-batching async serving runtime for compiled integer models.

A :class:`ServingEngine` owns a request queue and one worker thread.
Clients call :meth:`~ServingEngine.submit` (returns a
``concurrent.futures.Future``) or the blocking
:meth:`~ServingEngine.predict`; the worker assembles *micro-batches*
and runs them through the compiled plan in a single integer forward:

- **flush on size** — a batch dispatches as soon as ``max_batch_size``
  requests are waiting;
- **flush on deadline** — an under-full batch dispatches once the
  oldest queued request has waited ``max_wait_ms``, so a lone request
  never waits for traffic that isn't coming.

Because the compiled plan is stateless and its integer kernels are
regrouping-invariant, a batched forward is *bitwise identical* to
running each request alone — the property the concurrency tests pin
down.  Requests are validated (shape, finiteness) in the worker loop;
a poisoned request fails *its own* future with a structured
:class:`RequestError` while the batch's healthy neighbors are served
normally.  If a whole batch forward raises, the engine retries each
request solo so one bad apple cannot take down its batch-mates.

Telemetry (all unlabeled, so benchmark trajectories can fold them):

- ``serving.queue_depth`` (gauge) — queue length after each dequeue
- ``serving.batch_size`` (histogram) — dispatched micro-batch sizes
- ``serving.request_latency_seconds`` (histogram) — submit-to-response
- ``serving.requests_total`` / ``serving.batches_total`` (counters)
- ``serving.request_failures`` (counter) — per-request faults
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional

import numpy as np

from ..nn import backends
from ..telemetry import NULL_TELEMETRY

__all__ = ["RequestError", "ServingEngine"]


class RequestError(RuntimeError):
    """A structured per-request serving failure.

    Set on the offending request's future only; the engine keeps
    serving.  ``to_dict()`` is the wire form the HTTP frontend and the
    load generator report.
    """

    def __init__(self, message: str, request_id: Optional[int] = None) -> None:
        super().__init__(message)
        self.message = message
        self.request_id = request_id

    def to_dict(self) -> Dict[str, Any]:
        return {"error": self.message, "request_id": self.request_id}


class _Request:
    __slots__ = ("x", "future", "enqueued", "id")

    def __init__(self, x: np.ndarray, request_id: int) -> None:
        self.x = x
        self.future: Future = Future()
        self.enqueued = time.perf_counter()
        self.id = request_id


_SHUTDOWN = object()


class ServingEngine:
    """Batched async inference over a :class:`~repro.serving.compile
    .CompiledModel` (or any object with ``forward(batch, backend=...)``
    and ``input_shape``).

    Parameters
    ----------
    max_batch_size:
        Flush threshold; also the largest batch a single forward sees.
    max_wait_ms:
        Deadline for an under-full batch, measured from the enqueue
        time of its oldest request.
    backend:
        Kernel backend name (``repro.nn.backends``) used for the
        integer stages; defaults to the process default.  Passed
        explicitly per-forward, so the engine never mutates global
        backend state.
    telemetry:
        A ``Telemetry`` facade; defaults to the null sink.
    """

    def __init__(
        self,
        compiled: Any,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        backend: Optional[str] = None,
        telemetry: Any = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.compiled = compiled
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait_ms) / 1000.0
        self._backend = backends.get_backend(backend) if backend else None
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._m_requests = telemetry.counter("serving.requests_total")
        self._m_failures = telemetry.counter("serving.request_failures")
        self._m_batches = telemetry.counter("serving.batches_total")
        self._m_queue_depth = telemetry.gauge("serving.queue_depth")
        self._m_batch_size = telemetry.histogram("serving.batch_size")
        self._m_latency = telemetry.histogram(
            "serving.request_latency_seconds"
        )
        self._queue: "queue.Queue" = queue.Queue()
        self._ids = itertools.count()
        self._closed = False
        self._abort = False
        self._lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._loop, name="serving-worker", daemon=True
        )
        self._worker.start()

    # -- client API ---------------------------------------------------------

    def submit(self, x: np.ndarray) -> Future:
        """Enqueue one request (a single sample, no batch dim)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            req = _Request(np.asarray(x, dtype=np.float64), next(self._ids))
            self._queue.put(req)
        self._m_requests.inc()
        self._m_queue_depth.set(self._queue.qsize())
        return req.future

    def predict(self, x: np.ndarray, timeout: float = 60.0) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(x).result(timeout=timeout)

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the worker.  With ``drain`` (default) every queued
        request is served first; otherwise pending requests fail with
        a structured shutdown error."""
        with self._lock:
            if self._closed:
                self._worker.join(timeout=timeout)
                return
            self._closed = True
            if not drain:
                self._abort = True
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- worker loop --------------------------------------------------------

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            batch: List[_Request] = [item]
            deadline = item.enqueued + self.max_wait
            stop = False
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                batch.append(nxt)
            self._m_queue_depth.set(self._queue.qsize())
            self._run_batch(batch)
            if stop:
                break
        # Worker exiting: fail anything still queued (non-drain close).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                self._fail(item, "engine shut down before request ran")

    def _validate(self, req: _Request) -> Optional[str]:
        expected = tuple(self.compiled.input_shape)
        if req.x.shape != expected:
            return (
                f"bad input shape {req.x.shape}; this engine serves "
                f"per-sample shape {expected}"
            )
        if not np.all(np.isfinite(req.x)):
            return "input contains non-finite values"
        return None

    def _forward(self, xb: np.ndarray) -> np.ndarray:
        return self.compiled.forward(xb, backend=self._backend)

    def _run_batch(self, batch: List[_Request]) -> None:
        self._m_batches.inc()
        self._m_batch_size.observe(len(batch))
        if self._abort:
            for req in batch:
                self._fail(req, "engine shut down before request ran")
            return
        valid: List[_Request] = []
        for req in batch:
            problem = self._validate(req)
            if problem is None:
                valid.append(req)
            else:
                self._fail(req, problem)
        if not valid:
            return
        try:
            outs = self._forward(np.stack([r.x for r in valid]))
        except Exception:
            # Batch-level fault: retry each request alone so one
            # poisoned request cannot fail its batch-mates.
            for req in valid:
                try:
                    out = self._forward(req.x[None])
                except Exception as exc:
                    self._fail(req, str(exc))
                else:
                    self._complete(req, out[0])
            return
        for req, out in zip(valid, outs):
            self._complete(req, out)

    def _complete(self, req: _Request, out: np.ndarray) -> None:
        self._m_latency.observe(time.perf_counter() - req.enqueued)
        req.future.set_result(np.ascontiguousarray(out))

    def _fail(self, req: _Request, message: str) -> None:
        self._m_failures.inc()
        self._m_latency.observe(time.perf_counter() - req.enqueued)
        req.future.set_exception(RequestError(message, request_id=req.id))
