"""Fixed-point requantization arithmetic for the integer serving engine.

Between two quantized layers the serving runtime must map an exact
int64 accumulator ``acc`` onto the next layer's activation grid without
touching float64 (the deployment contract of
:mod:`repro.serving.compile`).  The classic gemmlowp recipe multiplies
by a single int32 fixed-point multiplier; its ~2^-31 coefficient error
shows up as ~2^-22-level error after the fraction shift — enough to
flip a code on inputs that land near a rounding boundary, which the
bit-for-bit equivalence tests would (rightly) catch.

This module therefore splits the real coefficient ``c`` into a *pair*
of int32 multipliers carrying the top 31 and bottom 22 bits of its
float64 mantissa:

    c = m * 2^e,          m in [0.5, 1)          (``math.frexp``)
    m53 = round(m * 2^53) = m_hi * 2^22 + m_lo   (m_hi < 2^31, m_lo < 2^22)
    a*c  ~= (a*m_hi + rshift(a*m_lo, 22)) >> (31 - e)

so the coefficient is exact to the last bit of its float64
representation and the total error per multiply is ~1 unit in the last
fixed-point place (from the two rounding shifts), not 2^9 of them.
All intermediate products stay in int64: ``|a| * m_hi < 2^62`` is
guaranteed for operands up to :attr:`FixedPointMultiplier
.max_safe_operand`, which the compiler checks against each layer's
worst-case accumulator before accepting a plan.

The final code conversion uses :func:`round_half_even_shift`, an
integer reimplementation of ``np.round``'s banker's rounding, so the
engine resolves exact ties the same way the fake-quant float reference
does.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "FixedPointMultiplier",
    "rounding_shift_right",
    "round_half_even_shift",
    "round_half_even_div",
]

#: Bits of the float64 mantissa carried by the low multiplier.
_LO_BITS = 22
#: Shift that realigns the high multiplier (53 mantissa bits - _LO_BITS).
_HI_SHIFT = 53 - _LO_BITS


def rounding_shift_right(v: np.ndarray, shift: int) -> np.ndarray:
    """``round(v / 2^shift)`` with ties away from the floor.

    Used for the *intermediate* shifts of a fixed-point multiply, where
    tie direction only moves the (already sub-ulp) coefficient error.
    A non-positive ``shift`` is an exact left shift.  numpy's ``>>``
    floors negative operands, which is exactly what the ``+half``
    rounding bias requires.
    """
    if shift <= 0:
        return v << (-shift)
    return (v + (1 << (shift - 1))) >> shift


def round_half_even_shift(v: np.ndarray, shift: int) -> np.ndarray:
    """``round(v / 2^shift)`` with banker's rounding, matching ``np.round``.

    The fake-quant reference resolves a value landing exactly halfway
    between two codes with round-half-even; the integer engine must
    agree, so the final fraction-bit shift cannot use the cheap
    ``(v + half) >> shift`` (round-half-up) form.  The correction:
    after the biased shift, any exact tie that rounded to an odd value
    is pulled back down by one.
    """
    if shift <= 0:
        return v << (-shift)
    half = 1 << (shift - 1)
    mask = (1 << shift) - 1
    out = (v + half) >> shift
    ties = (v & mask) == half
    if np.any(ties):
        out = out - (ties & ((out & 1) == 1))
    return out


def round_half_even_div(num: np.ndarray, den) -> np.ndarray:
    """``round(num / den)`` with banker's rounding, exact in int64.

    The general-denominator form of :func:`round_half_even_shift`,
    needed when average pooling folds its window count into the
    requantization denominator (``den = count << fraction_bits``),
    which is no longer a power of two.  ``den`` must be positive (a
    scalar or an array broadcastable against ``num``).
    """
    q = num // den          # floor division: remainder is always >= 0
    r = num - q * den
    twice = 2 * r
    bump = (twice > den) | ((twice == den) & ((q & 1) == 1))
    return q + bump


class FixedPointMultiplier:
    """Multiply int64 arrays by a real constant in pure integer math.

    ``FixedPointMultiplier(c)(a)`` approximates ``a * c`` (rounded to
    the nearest integer) using only int64 multiplies and shifts; the
    coefficient is carried to full float64 precision via the split
    mantissa described in the module docstring.
    """

    __slots__ = ("value", "m_hi", "m_lo", "shift")

    def __init__(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"coefficient must be finite, got {value!r}")
        self.value = value
        if value == 0.0:
            self.m_hi = 0
            self.m_lo = 0
            self.shift = 0
            return
        m, e = math.frexp(value)            # value = m * 2^e, |m| in [.5, 1)
        m53 = round(m * (1 << 53))
        if abs(m53) == 1 << 53:             # mantissa rounded up to 1.0
            m53 //= 2
            e += 1
        sign = 1 if m53 >= 0 else -1
        mag = abs(m53)
        self.m_hi = sign * (mag >> _LO_BITS)
        self.m_lo = sign * (mag & ((1 << _LO_BITS) - 1))
        self.shift = _HI_SHIFT - e

    @property
    def max_safe_operand(self) -> int:
        """Largest ``|a|`` for which every intermediate stays in int64."""
        divisor = max(abs(self.m_hi), 1)
        return ((1 << 62) - 1) // divisor

    def __call__(self, a: np.ndarray) -> np.ndarray:
        if self.m_hi == 0 and self.m_lo == 0:
            return np.zeros_like(a)
        t = a * self.m_hi + rounding_shift_right(a * self.m_lo, _LO_BITS)
        return rounding_shift_right(t, self.shift)

    def __repr__(self) -> str:
        return (
            f"FixedPointMultiplier({self.value!r}, m_hi={self.m_hi}, "
            f"m_lo={self.m_lo}, shift={self.shift})"
        )
