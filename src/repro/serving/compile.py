"""Compile a CCQ-quantized model into an integer-only serving artifact.

The training stack evaluates quantized layers in *fake-quant* form:
codes are materialized as float64 grid values and every layer runs a
float GEMM.  That is the right representation for gradient-based
search, but a deployment engine should never pay float64 between
layers.  This module lowers a trained chain model into a plan where

- weights are stored once as :class:`~repro.quantization
  .integer_inference.AffineCode` integer codes,
- activations travel between layers as int64 codes on each layer's
  probed activation grid, and
- the inter-layer scale change (requantization) happens in pure
  integer arithmetic via :class:`~repro.serving.fixedpoint
  .FixedPointMultiplier` pairs precomputed at compile time.

Pipeline (see docs/serving.md for the math):

1. **Trace.** The model runs once on the calibration batch under a
   set of class-level instrumentation patches; the resulting op list
   is validated to be a single feed-forward chain (conv/linear layers
   with relu/pool/flatten/GAP between them).  Residual or multi-use
   structure raises :class:`CompileError`.
2. **Fold BatchNorm** into the preceding conv's weight and bias
   (:func:`fold_batchnorm`); the BN module is replaced by
   ``Identity``.  Folding is float-exact only to fp32-style tolerance
   (it re-associates products), so the engine's bit-for-bit reference
   is the *folded* fake-quant model, exposed as
   ``CompiledModel.reference_model``.
3. **Freeze dynamic activation quantizers**
   (:func:`freeze_dynamic_quantizers`).  DoReFa's signed activation
   quantizer rescales by the per-batch ``max|x|``; a serving engine
   must be batch-invariant, so dynamic quantizers are detected by a
   two-amplitude probe and replaced with a static
   :class:`FrozenActQuantizer` snapshotted at the calibration
   amplitude.
4. **Probe activation grids.**  Each (now static) activation
   quantizer is treated as a black box: a saturation probe finds the
   clip range, a dense ramp enumerates its output levels, and the
   levels must form a complete uniform grid (scale, offset, count).
   Running the *actual* quantizer object — the same object the
   reference model holds — is what makes ingress bit-exact; a
   reimplementation of the quantizer math would diverge by ULPs.
5. **Plan requantization.**  For layer ``i`` with input codes ``c_x``
   on grid ``(s_x, o_x)`` and weight codes ``c_w`` on ``(s_w, o_w)``,
   the exact accumulator decomposition (same as
   ``integer_inference``) is

       y = s_x*s_w * acc + s_x*o_w * sum_cx
           + o_x*s_w * sum_cw_valid + o_x*o_w * n_valid + bias

   Everything except ``acc`` and ``sum_cx`` is input-independent and
   folded into a per-position constant at compile time.  The engine
   computes ``v ~= (y / s_next) * 2^f`` (``f`` fraction bits) with two
   fixed-point multiplies plus the constant, applies post-ops
   (relu/pool/GAP — all exact or near-exact in the ``v`` domain), and
   converts to next-layer codes with a single round-half-even shift.
   Worst-case accumulator magnitudes are checked against int64 at
   compile time.

The compiled plan is shape-specialized: spatial im2col masks and
per-position constants are precomputed for the calibration input
shape, and the engine rejects requests with any other shape.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..nn import backends
from ..nn import functional as F
from ..nn.autograd import no_grad
from ..nn.modules import BatchNorm2d, Conv2d, Identity, Linear, Module, Parameter
from ..nn.tensor import Tensor
from ..quantization.base import ActivationQuantizer
from ..quantization.integer_inference import extract_affine_code
from ..quantization.qmodules import QuantConv2d, QuantLinear, QuantModule, quantized_layers
from .fixedpoint import (
    FixedPointMultiplier,
    round_half_even_div,
    round_half_even_shift,
)

__all__ = [
    "CompileError",
    "ActGrid",
    "FrozenActQuantizer",
    "fold_batchnorm",
    "freeze_dynamic_quantizers",
    "fake_quant_activations",
    "compile_model",
    "CompiledModel",
]


class CompileError(RuntimeError):
    """The model cannot be lowered to an integer-only serving plan."""


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


@dataclass
class _Node:
    op: str                      # layer | batchnorm | relu | maxpool |
    module: Optional[Module]     # avgpool | gap | flatten | unsupported
    inputs: Tuple[Tensor, ...]   # Tensor refs (kept alive for identity chain)
    output: Tensor
    args: Dict[str, Any]


class _TraceState:
    def __init__(self) -> None:
        self.nodes: List[_Node] = []
        self.depth = 0           # >0 while inside a recorded op's internals


@contextmanager
def _tracing(state: _TraceState):
    """Class-level instrumentation of the ops a chain model can contain.

    There is no graph IR in this substrate, so the tracer patches
    ``forward`` on the layer classes, the relevant ``Tensor`` methods,
    and the pooling entry points in ``repro.nn.functional`` (modules
    look those up at call time, so a module-attribute patch is
    sufficient).  A depth counter suppresses ops nested inside an
    already-recorded op, e.g. the Tensor arithmetic inside a
    quantizer.
    """
    patched: List[Tuple[Any, str, Any]] = []

    def patch(obj: Any, name: str, wrapper: Any) -> None:
        patched.append((obj, name, getattr(obj, name)))
        setattr(obj, name, wrapper)

    def module_op(op: str, orig: Any) -> Any:
        def wrapped(self, x):
            if state.depth:
                return orig(self, x)
            state.depth += 1
            try:
                out = orig(self, x)
            finally:
                state.depth -= 1
            state.nodes.append(_Node(op, self, (x,), out, {}))
            return out
        return wrapped

    for cls in (QuantConv2d, QuantLinear, Conv2d, Linear):
        patch(cls, "forward", module_op("layer", cls.forward))
    patch(BatchNorm2d, "forward", module_op("batchnorm", BatchNorm2d.forward))

    orig_relu = Tensor.relu

    def traced_relu(self):
        out = orig_relu(self)
        if not state.depth:
            state.nodes.append(_Node("relu", None, (self,), out, {}))
        return out

    patch(Tensor, "relu", traced_relu)

    orig_flatten = Tensor.flatten

    def traced_flatten(self, start_dim=0):
        out = orig_flatten(self, start_dim)
        if not state.depth:
            state.nodes.append(
                _Node("flatten", None, (self,), out, {"start_dim": start_dim})
            )
        return out

    patch(Tensor, "flatten", traced_flatten)

    orig_mean = Tensor.mean

    def traced_mean(self, axis=None, keepdims=False):
        out = orig_mean(self, axis=axis, keepdims=keepdims)
        if not state.depth:
            ax = tuple(axis) if isinstance(axis, (tuple, list)) else axis
            op = "gap" if ax == (2, 3) and not keepdims else "unsupported"
            state.nodes.append(_Node(op, None, (self,), out, {"mean": ax}))
        return out

    patch(Tensor, "mean", traced_mean)

    def pool_op(op: str, orig: Any) -> Any:
        def wrapped(x, kernel, stride=None, padding=0):
            if state.depth:
                return orig(x, kernel, stride, padding)
            state.depth += 1
            try:
                out = orig(x, kernel, stride, padding)
            finally:
                state.depth -= 1
            state.nodes.append(_Node(
                op, None, (x,), out,
                {"kernel": kernel, "stride": stride, "padding": padding},
            ))
            return out
        return wrapped

    patch(F, "max_pool2d", pool_op("maxpool", F.max_pool2d))
    patch(F, "avg_pool2d", pool_op("avgpool", F.avg_pool2d))

    orig_gap = F.global_avg_pool2d

    def traced_gap(x):
        if state.depth:
            return orig_gap(x)
        state.depth += 1
        try:
            out = orig_gap(x)
        finally:
            state.depth -= 1
        state.nodes.append(_Node("gap", None, (x,), out, {}))
        return out

    patch(F, "global_avg_pool2d", traced_gap)

    try:
        yield
    finally:
        for obj, name, orig in reversed(patched):
            setattr(obj, name, orig)


def _trace_forward(
    model: Module, x: np.ndarray
) -> Tuple[List[_Node], Tensor, Tensor]:
    state = _TraceState()
    x_t = Tensor(np.array(x, dtype=np.float64))
    with no_grad(), _tracing(state):
        out = model(x_t)
    return state.nodes, x_t, out


def _validate_chain(nodes: List[_Node], x_t: Tensor, out: Tensor) -> None:
    """Every traced op must consume the previous op's exact output."""
    if not nodes:
        raise CompileError("model produced no traceable ops")
    prev = x_t
    for node in nodes:
        if node.op == "unsupported":
            raise CompileError(
                f"unsupported op in forward graph: {node.args}"
            )
        if node.inputs[0] is not prev:
            raise CompileError(
                "model is not a single feed-forward chain (branching, "
                "residual connections, or tensor reuse detected); the "
                "serving compiler supports straight-line conv/linear "
                "chains only"
            )
        prev = node.output
    if prev is not out:
        raise CompileError(
            "model output is not the traced chain tail "
            "(unsupported trailing ops)"
        )


# ---------------------------------------------------------------------------
# BatchNorm folding
# ---------------------------------------------------------------------------


def _replace_module(root: Module, target: Module, replacement: Module) -> None:
    for _, parent in root.named_modules():
        for name, child in list(parent._modules.items()):
            if child is target:
                parent.add_module(name, replacement)
                return
    raise CompileError("internal error: module to replace not found in tree")


def fold_batchnorm(
    model: Module, example_input: np.ndarray, inplace: bool = False
) -> Module:
    """Fold every ``BatchNorm2d`` into the conv that feeds it.

    With ``g = gamma / sqrt(running_var + eps)`` the folded layer is
    ``W'[o] = W[o] * g[o]`` and ``b' = beta + (b - running_mean) * g``;
    the BN module is replaced with ``Identity`` and a bias Parameter
    is created when the conv had none.  Works on both float ``Conv2d``
    and ``QuantConv2d`` (for the latter the *shadow* weights are
    folded and the quantizer re-quantizes them, which is the CCQ
    deployment semantics: quantize the folded network).

    Returns the folded model — a deepcopy unless ``inplace`` — left in
    eval mode.  Float equivalence with the unfolded model holds to
    fp32-style tolerance only; the fold re-associates float products.
    """
    folded = model if inplace else copy.deepcopy(model)
    folded.eval()
    nodes, x_t, out = _trace_forward(folded, example_input)
    _validate_chain(nodes, x_t, out)
    for i, node in enumerate(nodes):
        if node.op != "batchnorm":
            continue
        if i == 0 or nodes[i - 1].op != "layer" or not isinstance(
            nodes[i - 1].module, (Conv2d, QuantConv2d)
        ):
            raise CompileError(
                "BatchNorm2d is not directly preceded by a convolution; "
                "cannot fold"
            )
        conv = nodes[i - 1].module
        bn = node.module
        g = np.asarray(bn.weight.data) / np.sqrt(
            np.asarray(bn.running_var) + bn.eps
        )
        conv.weight.data[...] = conv.weight.data * g.reshape(-1, 1, 1, 1)
        old_bias = conv.bias.data if conv.bias is not None else 0.0
        new_bias = np.asarray(bn.bias.data) + (
            old_bias - np.asarray(bn.running_mean)
        ) * g
        if conv.bias is None:
            conv.bias = Parameter(new_bias)
        else:
            conv.bias.data[...] = new_bias
        _replace_module(folded, bn, Identity())
    # Folding rewrote shadow weights; stale cached quantized weights
    # must not survive into the compile pass.
    for _, qlayer in quantized_layers(folded):
        qlayer._wq_cache.clear()
    return folded


# ---------------------------------------------------------------------------
# Activation grids
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ActGrid:
    """A static uniform activation grid ``value = scale * code + offset``
    with codes in ``[0, n_codes)``."""

    scale: float
    offset: float
    n_codes: int

    @property
    def hi(self) -> float:
        return self.offset + (self.n_codes - 1) * self.scale

    def codes_from_values(self, values: np.ndarray) -> np.ndarray:
        """Exact codes for values already lying on the grid."""
        codes = np.rint((np.asarray(values) - self.offset) / self.scale)
        return np.clip(codes, 0, self.n_codes - 1).astype(np.int64)


class FrozenActQuantizer(ActivationQuantizer):
    """Static snapshot of a dynamic activation quantizer.

    Clip-then-round onto a fixed :class:`ActGrid`.  Because the grid's
    clip bounds are themselves grid levels, clip-then-round equals
    round-then-clamp — the identity the integer engine relies on when
    it clamps codes after the requantization shift.
    """

    def __init__(self, grid: ActGrid, bits: int) -> None:
        super().__init__()
        self.grid = grid
        self.set_bits(bits)

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        g = self.grid
        clipped = x.clip(g.offset, g.hi)
        return F.round_ste((clipped - g.offset) / g.scale) * g.scale + g.offset


def _act_quantize_array(q: ActivationQuantizer, x: np.ndarray) -> np.ndarray:
    """Run an activation quantizer on a raw ndarray outside autograd."""
    with no_grad():
        return q(Tensor(np.asarray(x, dtype=np.float64))).data


def _probe_points(bits: int) -> int:
    # >= 42 samples per expected grid step; capped so probing stays cheap.
    return 64 * min(1 << int(bits), 512) + 1


def _grid_from_levels(levels: np.ndarray, context: str) -> ActGrid:
    if levels.size < 2:
        raise CompileError(
            f"{context}: activation quantizer produced a degenerate grid "
            f"({levels.size} level(s))"
        )
    gaps = np.diff(levels)
    scale = float(gaps.min())
    if scale <= 0 or not np.allclose(gaps, scale, rtol=1e-6, atol=0.0):
        raise CompileError(
            f"{context}: activation levels do not form a complete uniform "
            "grid; only uniform activation quantizers can be served "
            "integer-only"
        )
    n = int(round(float(levels[-1] - levels[0]) / scale)) + 1
    return ActGrid(scale=scale, offset=float(levels[0]), n_codes=n)


def _is_dynamic(q: ActivationQuantizer, amplitude: float) -> bool:
    """Detect data-dependent (per-batch) quantizer state.

    A static quantizer is elementwise: appending an extra point to the
    probe batch cannot change the other outputs.  A dynamic one (e.g.
    DoReFa's signed path, which rescales by the batch ``max|x|``)
    shifts its whole grid when the batch maximum doubles.
    """
    base = np.linspace(amplitude / 7.0, amplitude, 17)
    out1 = _act_quantize_array(q, np.append(base, amplitude))
    out2 = _act_quantize_array(q, np.append(base, 2.0 * amplitude))
    return not np.array_equal(out1[:-1], out2[:-1])


def freeze_dynamic_quantizers(
    model: Module, calibration: np.ndarray
) -> List[str]:
    """Replace dynamic activation quantizers with static snapshots.

    Traces the model on the calibration batch to capture each
    quantized layer's pre-quantizer input, detects dynamic quantizers
    with :func:`_is_dynamic`, and swaps them for a
    :class:`FrozenActQuantizer` whose grid is probed at exactly the
    calibration amplitude ``M = max|x_cal|`` — so on calibration-like
    data the frozen grid is the one the dynamic quantizer would have
    chosen.  Returns the names of the layers that were frozen.

    Must run *before* grid probing: probing a dynamic quantizer would
    bake a probe-dependent grid into the plan and break
    batch-invariance at serve time.
    """
    nodes, _, _ = _trace_forward(model, calibration)
    name_of = {id(m): n for n, m in quantized_layers(model)}
    frozen: List[str] = []
    for node in nodes:
        if node.op != "layer" or not isinstance(node.module, QuantModule):
            continue
        layer = node.module
        q = layer.act_quantizer
        if q.bits is None or isinstance(q, FrozenActQuantizer):
            continue
        amp = float(np.max(np.abs(node.inputs[0].data))) or 1.0
        if not _is_dynamic(q, amp):
            continue
        ramp = np.linspace(-amp, amp, _probe_points(q.bits))
        levels = np.unique(_act_quantize_array(q, ramp))
        name = name_of.get(id(layer), "<layer>")
        grid = _grid_from_levels(levels, f"layer {name}")
        layer.act_quantizer = FrozenActQuantizer(grid, q.bits)
        frozen.append(name)
    return frozen


def _probe_act_grid(q: ActivationQuantizer, context: str) -> ActGrid:
    """Recover a static quantizer's full uniform grid by probing it."""
    sat = _act_quantize_array(q, np.array([-1e6, 1e6]))
    lo, hi = float(sat[0]), float(sat[1])
    if not hi > lo:
        raise CompileError(
            f"{context}: activation quantizer saturates to a single value"
        )
    span = hi - lo
    ramp = np.linspace(lo - 0.25 * span, hi + 0.25 * span,
                       _probe_points(q.bits or 8))
    levels = np.unique(_act_quantize_array(q, ramp))
    return _grid_from_levels(levels, context)


def fake_quant_activations(
    model: Module, x: np.ndarray
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Per-layer fake-quant activation values of a chain model.

    Returns ``(acts, output)`` where ``acts[i]`` is layer ``i``'s
    activation-quantizer output on its traced input — the float-side
    ground truth the integer engine's per-layer codes are checked
    against bit-for-bit.
    """
    nodes, x_t, out = _trace_forward(model, x)
    acts: List[np.ndarray] = []
    for node in nodes:
        if node.op == "layer" and isinstance(node.module, QuantModule):
            acts.append(
                _act_quantize_array(
                    node.module.act_quantizer, node.inputs[0].data
                )
            )
    return acts, out.data


# ---------------------------------------------------------------------------
# Lowered stages
# ---------------------------------------------------------------------------


def _pair(v: Any) -> Tuple[int, int]:
    if isinstance(v, (tuple, list)):
        return int(v[0]), int(v[1])
    return int(v), int(v)


def _pool_counts(
    h: int, w: int, kernel: Tuple[int, int], stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Per-output-position count of real (non-padding) cells."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    ones = np.zeros((h + 2 * ph, w + 2 * pw), dtype=np.int64)
    ones[ph:ph + h, pw:pw + w] = 1
    windows = sliding_window_view(ones, (kh, kw))[::sh, ::sw]
    return windows.sum(axis=(-1, -2))


_MAXPOOL_PAD = np.iinfo(np.int64).min // 2


def _apply_post_ops_int(v: np.ndarray, ops: List[Tuple]) -> Tuple[np.ndarray, Any]:
    """Post-layer ops in the integer ``v`` domain.

    ``v`` is monotone in the float pre-activation ``y`` (``v ~=
    y/s_next * 2^f``), so relu and maxpool commute with the mapping
    exactly.  Averages never divide here: the window *sum* is kept
    exact and the window count is accumulated into the returned
    divisor, which the requantization step folds into its denominator
    (``round_half_even_div``).  Pre-dividing would round twice and can
    flip values sitting exactly on a code boundary — and quantized
    accumulators land on boundaries routinely, not measure-zero often.

    Returns ``(v, divisor)`` where ``divisor`` is a positive int (or an
    int array broadcastable against ``v`` when padded average pooling
    makes the count position-dependent).
    """
    divisor: Any = 1
    for op in ops:
        kind = op[0]
        if kind == "relu":
            v = np.maximum(v, 0)
        elif kind == "flatten":
            if isinstance(divisor, np.ndarray):
                divisor = np.broadcast_to(
                    divisor, (1,) + v.shape[1:]
                ).reshape(1, -1)
            v = v.reshape(v.shape[0], -1)
        elif kind == "gap":
            divisor = divisor * (v.shape[2] * v.shape[3])
            v = v.sum(axis=(2, 3))
        elif kind == "maxpool":
            _, kernel, stride, padding = op
            kh, kw = kernel
            sh, sw = stride
            ph, pw = padding
            if ph or pw:
                v = np.pad(
                    v, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                    constant_values=_MAXPOOL_PAD,
                )
            windows = sliding_window_view(v, (kh, kw), axis=(2, 3))
            v = windows[:, :, ::sh, ::sw].max(axis=(-1, -2))
        elif kind == "avgpool":
            _, kernel, stride, padding, counts = op
            kh, kw = kernel
            sh, sw = stride
            ph, pw = padding
            if ph or pw:
                v = np.pad(v, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
            windows = sliding_window_view(v, (kh, kw), axis=(2, 3))
            v = windows[:, :, ::sh, ::sw].sum(axis=(-1, -2))
            if isinstance(counts, np.ndarray):
                divisor = divisor * counts[None, None]
            else:
                divisor = divisor * counts
        else:  # pragma: no cover - specs are built by this module
            raise CompileError(f"unknown post-op {kind!r}")
    return v, divisor


def _apply_post_ops_float(y: np.ndarray, ops: List[Tuple]) -> np.ndarray:
    for op in ops:
        kind = op[0]
        if kind == "relu":
            y = np.maximum(y, 0.0)
        elif kind == "flatten":
            y = y.reshape(y.shape[0], -1)
        elif kind == "gap":
            y = y.mean(axis=(2, 3))
        else:  # pragma: no cover - rejected at compile time
            raise CompileError(f"post-op {kind!r} unsupported after egress")
    return y


@dataclass
class _Requant:
    """Integer plan mapping one layer's accumulator to next-layer codes."""

    mul_acc: FixedPointMultiplier           # s_x*s_w / s_next * 2^f
    mul_sum: Optional[FixedPointMultiplier]  # s_x*o_w / s_next * 2^f
    const_fp: np.ndarray                    # (P, F) conv / (F,) linear
    o_fp: int                               # round(o_next/s_next * 2^f)
    fraction_bits: int
    n_codes: int


class _Stage:
    """One lowered layer: integer matmul core + post-ops + requant/egress."""

    def __init__(
        self,
        name: str,
        kind: str,
        w_flat_t: np.ndarray,
        post_ops: List[Tuple],
        *,
        kernel: Optional[Tuple[int, int]] = None,
        stride: Optional[Tuple[int, int]] = None,
        padding: Optional[Tuple[int, int]] = None,
        requant: Optional[_Requant] = None,
        egress_coef_acc: float = 0.0,
        egress_coef_sum: float = 0.0,
        egress_const: Optional[np.ndarray] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.w_flat_t = np.ascontiguousarray(w_flat_t)
        self.post_ops = post_ops
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.requant = requant
        self.egress_coef_acc = egress_coef_acc
        self.egress_coef_sum = egress_coef_sum
        self.egress_const = egress_const

    def _accumulate(self, codes, backend):
        """Shared integer core: returns (acc, sum_cx, spatial dims)."""
        if self.kind == "conv":
            cols, _, (oh, ow) = backend.int_im2col(
                codes, self.kernel, self.stride, self.padding
            )
            acc = backend.int_gemm(cols, self.w_flat_t)
            sum_cx = cols.sum(axis=1, keepdims=True)
            return acc, sum_cx, (oh, ow)
        acc = backend.int_gemm(codes, self.w_flat_t)
        sum_cx = codes.sum(axis=1, keepdims=True)
        return acc, sum_cx, None

    def run(self, codes: np.ndarray, backend) -> np.ndarray:
        """codes -> next-layer codes (integer-only interior stage)."""
        r = self.requant
        acc, sum_cx, spatial = self._accumulate(codes, backend)
        v = r.mul_acc(acc)
        if r.mul_sum is not None:
            v = v + r.mul_sum(sum_cx)
        if spatial is not None:
            n = codes.shape[0]
            oh, ow = spatial
            f_out = self.w_flat_t.shape[1]
            v = v.reshape(n, oh * ow, f_out) + r.const_fp[None]
            v = v.reshape(n, oh, ow, f_out).transpose(0, 3, 1, 2)
        else:
            v = v + r.const_fp[None]
        v, divisor = _apply_post_ops_int(v, self.post_ops)
        if isinstance(divisor, int) and divisor == 1:
            codes_next = round_half_even_shift(v - r.o_fp, r.fraction_bits)
        else:
            # Average pooling kept its window sums exact; fold the
            # accumulated count into the requant denominator so the
            # division rounds exactly once, half-to-even.
            den = divisor * (1 << r.fraction_bits)
            codes_next = round_half_even_div(v - divisor * r.o_fp, den)
        return np.clip(codes_next, 0, r.n_codes - 1)

    def run_final(self, codes: np.ndarray, backend) -> np.ndarray:
        """codes -> float logits (egress: the only float reconstruction)."""
        acc, sum_cx, spatial = self._accumulate(codes, backend)
        y = (
            acc.astype(np.float64) * self.egress_coef_acc
            + sum_cx.astype(np.float64) * self.egress_coef_sum
        )
        if spatial is not None:
            n = codes.shape[0]
            oh, ow = spatial
            f_out = self.w_flat_t.shape[1]
            y = y.reshape(n, oh * ow, f_out) + self.egress_const[None]
            y = y.reshape(n, oh, ow, f_out).transpose(0, 3, 1, 2)
        else:
            y = y + self.egress_const[None]
        return _apply_post_ops_float(y, self.post_ops)


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


def _build_post_ops(
    post_nodes: List[_Node], layer_name: str, final: bool
) -> List[Tuple]:
    ops: List[Tuple] = []
    nonuniform_avg = False
    for node in post_nodes:
        if node.op in ("gap", "maxpool", "avgpool") and nonuniform_avg:
            # A padded average pool gives each position its own divisor;
            # pooling across positions with unequal divisors has no
            # exact common-denominator form we are willing to pay for.
            raise CompileError(
                f"layer {layer_name}: pooling after a padded average "
                "pool is unsupported"
            )
        if node.op == "relu":
            ops.append(("relu",))
        elif node.op == "flatten":
            if node.args.get("start_dim") != 1:
                raise CompileError(
                    f"layer {layer_name}: flatten(start_dim="
                    f"{node.args.get('start_dim')}) is unsupported; only "
                    "start_dim=1 can be lowered"
                )
            ops.append(("flatten",))
        elif node.op == "gap":
            _, _, h, w = node.inputs[0].data.shape
            ops.append(("gap", int(h * w)))
        elif node.op in ("maxpool", "avgpool"):
            if final:
                raise CompileError(
                    f"layer {layer_name}: pooling after the final layer is "
                    "unsupported"
                )
            kernel = _pair(node.args["kernel"])
            stride = _pair(
                node.args["stride"] if node.args["stride"] is not None
                else node.args["kernel"]
            )
            padding = _pair(node.args["padding"])
            if node.op == "maxpool":
                ops.append(("maxpool", kernel, stride, padding))
            else:
                _, _, h, w = node.inputs[0].data.shape
                counts = _pool_counts(int(h), int(w), kernel, stride, padding)
                if np.all(counts == counts.flat[0]):
                    counts = int(counts.flat[0])
                else:
                    nonuniform_avg = True
                ops.append(("avgpool", kernel, stride, padding, counts))
        elif node.op == "batchnorm":
            raise CompileError(
                f"layer {layer_name}: unfolded BatchNorm after a "
                "non-convolution layer cannot be served"
            )
        else:
            raise CompileError(
                f"layer {layer_name}: unsupported post-op {node.op!r}"
            )
    return ops


class CompiledModel:
    """An integer-only executable plan for a quantized chain model.

    ``forward`` runs: float ingress quantization of the input (via the
    model's own first-layer activation quantizer) -> integer codes ->
    N-1 integer-only stages -> float egress on the final layer.  The
    plan is specialized to ``input_shape`` (per-sample) and is
    stateless across calls: batching is mathematically invisible, so
    batched execution is bitwise identical to serial execution.
    """

    def __init__(
        self,
        stages: List[_Stage],
        grids: List[ActGrid],
        leading_ops: List[Tuple],
        ingress_quantizer: ActivationQuantizer,
        reference_model: Module,
        input_shape: Tuple[int, ...],
        fraction_bits: int,
        layer_bits: List[Tuple[Optional[int], Optional[int]]],
        frozen_layers: List[str],
    ) -> None:
        self.stages = stages
        self.grids = grids
        self.leading_ops = leading_ops
        self.ingress_quantizer = ingress_quantizer
        self.reference_model = reference_model
        self.input_shape = tuple(int(d) for d in input_shape)
        self.fraction_bits = fraction_bits
        self.layer_bits = layer_bits
        self.frozen_layers = frozen_layers

    @property
    def n_layers(self) -> int:
        return len(self.stages)

    @property
    def layer_names(self) -> List[str]:
        return [s.name for s in self.stages]

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != len(self.input_shape) + 1 or \
                x.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected input of shape (N, {', '.join(map(str, self.input_shape))}), "
                f"got {x.shape}"
            )
        return x

    def _ingress_codes(self, x: np.ndarray) -> np.ndarray:
        for op in self.leading_ops:
            if op[0] == "flatten":
                x = x.reshape(x.shape[0], -1)
        xq = _act_quantize_array(self.ingress_quantizer, x)
        return self.grids[0].codes_from_values(xq)

    def forward_codes(
        self, x: np.ndarray, backend=None
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Returns (per-layer input codes, float logits)."""
        backend = backend or backends.current()
        x = self._check_input(x)
        codes = self._ingress_codes(x)
        trace = [codes]
        for stage in self.stages[:-1]:
            codes = stage.run(codes, backend)
            trace.append(codes)
        logits = self.stages[-1].run_final(codes, backend)
        return trace, logits

    def forward(self, x: np.ndarray, backend=None) -> np.ndarray:
        _, logits = self.forward_codes(x, backend=backend)
        return logits

    __call__ = forward

    def summary(self) -> Dict[str, Any]:
        return {
            "input_shape": list(self.input_shape),
            "fraction_bits": self.fraction_bits,
            "frozen_layers": list(self.frozen_layers),
            "layers": [
                {
                    "name": s.name,
                    "kind": s.kind,
                    "w_bits": wb,
                    "a_bits": ab,
                    "act_scale": g.scale,
                    "act_offset": g.offset,
                    "act_codes": g.n_codes,
                }
                for s, g, (wb, ab) in zip(
                    self.stages, self.grids, self.layer_bits
                )
            ],
        }


def compile_model(
    model: Module,
    calibration: np.ndarray,
    fraction_bits: int = 24,
) -> CompiledModel:
    """Lower a quantized chain model to an integer-only serving plan.

    ``calibration`` is a representative input batch: it fixes the
    served input shape, provides the amplitude at which dynamic
    quantizers are frozen, and (for policies with lazy state, e.g.
    LSQ) runs one initialization forward pass.  The original model is
    not modified; the compiled plan holds a folded deepcopy as its
    bit-for-bit ``reference_model``.
    """
    calibration = np.asarray(calibration, dtype=np.float64)
    if calibration.ndim < 2:
        raise CompileError("calibration input must be a batch (N, ...)")
    if not np.all(np.isfinite(calibration)):
        raise CompileError("calibration input contains non-finite values")

    folded = fold_batchnorm(model, calibration)
    frozen = freeze_dynamic_quantizers(folded, calibration)
    nodes, x_t, out_t = _trace_forward(folded, calibration)
    _validate_chain(nodes, x_t, out_t)

    first = next(
        (i for i, nd in enumerate(nodes) if nd.op == "layer"), None
    )
    if first is None:
        raise CompileError("model contains no layers")
    leading_ops = _build_post_ops(nodes[:first], "<input>", final=False)
    for op in leading_ops:
        if op[0] != "flatten":
            raise CompileError(
                f"unsupported op before the first layer: {op[0]}"
            )

    segments: List[Tuple[_Node, List[_Node]]] = []
    i = first
    while i < len(nodes):
        post: List[_Node] = []
        j = i + 1
        while j < len(nodes) and nodes[j].op != "layer":
            post.append(nodes[j])
            j += 1
        segments.append((nodes[i], post))
        i = j

    name_of = {id(m): n for n, m in quantized_layers(folded)}
    layers: List[QuantModule] = []
    for node, _ in segments:
        layer = node.module
        if not isinstance(layer, QuantModule):
            raise CompileError(
                f"layer {type(layer).__name__} is not quantized; run "
                "quantize_model() and set bit widths before compiling"
            )
        if layer.w_bits is None or layer.a_bits is None:
            raise CompileError(
                f"layer {name_of.get(id(layer), '?')}: weight and "
                "activation bit widths must both be set (got "
                f"w_bits={layer.w_bits}, a_bits={layer.a_bits})"
            )
        layers.append(layer)

    grids = [
        _probe_act_grid(
            layer.act_quantizer, f"layer {name_of.get(id(layer), '?')}"
        )
        for layer in layers
    ]

    stages: List[_Stage] = []
    for idx, ((node, post), layer) in enumerate(zip(segments, layers)):
        name = name_of.get(id(layer), f"layer{idx}")
        final = idx == len(segments) - 1
        post_ops = _build_post_ops(post, name, final=final)

        wq = layer.weight_quantizer.quantize_array(np.asarray(layer.weight.data))
        try:
            w_code = extract_affine_code(wq)
        except ValueError as exc:
            raise CompileError(
                f"layer {name}: quantized weights do not lie on a uniform "
                f"grid ({exc}); non-uniform policies (e.g. lq-nets) cannot "
                "be served integer-only"
            ) from exc

        bias = (
            np.asarray(layer.bias.data, dtype=np.float64)
            if layer.bias is not None else None
        )
        grid = grids[idx]
        s_x, o_x = grid.scale, grid.offset
        s_w, o_w = w_code.scale, w_code.offset
        in_shape = node.inputs[0].data.shape

        if isinstance(layer, QuantConv2d):
            kind = "conv"
            kernel = _pair(layer.kernel_size)
            stride = _pair(layer.stride)
            padding = _pair(layer.padding)
            f_out, c_in = w_code.codes.shape[0], w_code.codes.shape[1]
            k_recept = c_in * kernel[0] * kernel[1]
            w_flat_t = w_code.codes.reshape(f_out, -1).T
            # Input-shape-specialized padding-correction terms.
            probe = np.zeros((1,) + tuple(in_shape[1:]), dtype=np.int64)
            _, mask, (oh, ow) = backends.current().int_im2col(
                probe, kernel, stride, padding
            )
            w_spatial = w_code.codes.reshape(
                f_out, c_in, kernel[0] * kernel[1]
            ).sum(axis=1)
            sum_cw_valid = mask @ w_spatial.T                 # (P, F)
            n_valid = mask.sum(axis=1, keepdims=True) * c_in  # (P, 1)
            const_float = (
                (o_x * s_w) * sum_cw_valid.astype(np.float64)
                + (o_x * o_w) * n_valid.astype(np.float64)
            )
            if bias is not None:
                const_float = const_float + bias[None, :]
        else:
            kind = "linear"
            kernel = stride = padding = None
            k_recept = w_code.codes.shape[1]
            w_flat_t = w_code.codes.T
            sum_cw = w_code.codes.sum(axis=1).astype(np.float64)
            const_float = (o_x * s_w) * sum_cw + (o_x * o_w) * float(k_recept)
            if bias is not None:
                const_float = const_float + bias

        if final:
            stages.append(_Stage(
                name, kind, w_flat_t, post_ops,
                kernel=kernel, stride=stride, padding=padding,
                egress_coef_acc=s_x * s_w,
                egress_coef_sum=s_x * o_w,
                egress_const=const_float,
            ))
            continue

        nxt = grids[idx + 1]
        two_f = float(1 << fraction_bits)
        mul_acc = FixedPointMultiplier(s_x * s_w / nxt.scale * two_f)
        mul_sum = (
            FixedPointMultiplier(s_x * o_w / nxt.scale * two_f)
            if o_w != 0.0 else None
        )
        const_fp = np.rint(const_float / nxt.scale * two_f).astype(np.int64)
        o_fp = int(np.rint(nxt.offset / nxt.scale * two_f))

        # Worst-case int64 overflow audit for this stage.
        acc_max = (grid.n_codes - 1) * (w_code.n_levels - 1) * k_recept
        sum_max = (grid.n_codes - 1) * k_recept
        if acc_max > mul_acc.max_safe_operand or (
            mul_sum is not None and sum_max > mul_sum.max_safe_operand
        ):
            raise CompileError(
                f"layer {name}: worst-case accumulator ({acc_max}) "
                "overflows the fixed-point multiplier; reduce "
                "fraction_bits or bit widths"
            )
        v_bound = (
            abs(mul_acc.value) * acc_max
            + (abs(mul_sum.value) * sum_max if mul_sum is not None else 0.0)
            + float(np.abs(const_fp).max(initial=0))
        )
        # Average pools keep exact window sums (divided only at requant),
        # so each one scales the magnitude bound — and the requant
        # subtracts divisor*o_fp — by its window size.
        pool_gain = 1
        for op in post_ops:
            if op[0] == "gap":
                pool_gain *= int(op[1])
            elif op[0] == "avgpool":
                pool_gain *= int(op[1][0] * op[1][1])
        v_bound = v_bound * pool_gain + float(pool_gain) * abs(o_fp)
        if v_bound >= float(1 << 62):
            raise CompileError(
                f"layer {name}: requantized magnitude bound {v_bound:.3g} "
                "exceeds int64; reduce fraction_bits"
            )

        stages.append(_Stage(
            name, kind, w_flat_t, post_ops,
            kernel=kernel, stride=stride, padding=padding,
            requant=_Requant(
                mul_acc=mul_acc,
                mul_sum=mul_sum,
                const_fp=const_fp,
                o_fp=o_fp,
                fraction_bits=fraction_bits,
                n_codes=nxt.n_codes,
            ),
        ))

    return CompiledModel(
        stages=stages,
        grids=grids,
        leading_ops=leading_ops,
        ingress_quantizer=layers[0].act_quantizer,
        reference_model=folded,
        input_shape=calibration.shape[1:],
        fraction_bits=fraction_bits,
        layer_bits=[(l.w_bits, l.a_bits) for l in layers],
        frozen_layers=frozen,
    )
