"""Quantization-policy registry.

A :class:`QuantPolicy` bundles a weight-quantizer factory and an
activation-quantizer factory under a name.  CCQ is *policy-agnostic*
(Section III of the paper): it consumes any registered policy and only
manipulates the per-layer bit widths, so new policies plug in by
registering two factories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from .base import ActivationQuantizer, WeightQuantizer
from .binary import BNNActivationQuantizer, BNNWeightQuantizer, XNORWeightQuantizer
from .dorefa import DoReFaActivationQuantizer, DoReFaWeightQuantizer
from .lqnets import LQNetsActivationQuantizer, LQNetsWeightQuantizer
from .lsq import LSQActivationQuantizer, LSQWeightQuantizer
from .pact import PACTActivationQuantizer, PACTWeightQuantizer
from .qil import QILActivationQuantizer, QILWeightQuantizer
from .sawb import SAWBWeightQuantizer
from .wrpn import WRPNActivationQuantizer, WRPNWeightQuantizer

__all__ = ["QuantPolicy", "register_policy", "get_policy", "available_policies"]

WeightFactory = Callable[[], WeightQuantizer]
ActFactory = Callable[[bool], ActivationQuantizer]


@dataclass(frozen=True)
class QuantPolicy:
    """A named pairing of weight and activation quantizer factories."""

    name: str
    make_weight_quantizer: WeightFactory
    make_act_quantizer: ActFactory

    def __repr__(self) -> str:
        return f"QuantPolicy({self.name!r})"


_REGISTRY: Dict[str, QuantPolicy] = {}


def register_policy(policy: QuantPolicy) -> QuantPolicy:
    """Add a policy to the registry (overwrites an existing name)."""
    _REGISTRY[policy.name] = policy
    return policy


def get_policy(name: str) -> QuantPolicy:
    """Look a policy up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown quantization policy {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def available_policies() -> List[str]:
    """Names of all registered policies."""
    return sorted(_REGISTRY)


register_policy(
    QuantPolicy(
        "dorefa",
        DoReFaWeightQuantizer,
        lambda signed: DoReFaActivationQuantizer(signed=signed),
    )
)
register_policy(
    QuantPolicy(
        "wrpn",
        WRPNWeightQuantizer,
        lambda signed: WRPNActivationQuantizer(signed=signed),
    )
)
register_policy(
    QuantPolicy(
        "pact",
        PACTWeightQuantizer,
        lambda signed: PACTActivationQuantizer(signed=signed),
    )
)
register_policy(
    QuantPolicy(
        "pact_sawb",
        SAWBWeightQuantizer,
        lambda signed: PACTActivationQuantizer(signed=signed),
    )
)
register_policy(
    QuantPolicy(
        "lsq",
        LSQWeightQuantizer,
        lambda signed: LSQActivationQuantizer(signed=signed),
    )
)
register_policy(
    QuantPolicy(
        "lqnets",
        LQNetsWeightQuantizer,
        lambda signed: LQNetsActivationQuantizer(signed=signed),
    )
)

register_policy(
    QuantPolicy(
        "qil",
        QILWeightQuantizer,
        lambda signed: QILActivationQuantizer(signed=signed),
    )
)
register_policy(
    QuantPolicy(
        "bnn",
        BNNWeightQuantizer,
        lambda signed: BNNActivationQuantizer(signed=signed),
    )
)
register_policy(
    QuantPolicy(
        "xnor",
        XNORWeightQuantizer,
        lambda signed: BNNActivationQuantizer(signed=signed),
    )
)
