"""Fake-quantization core shared by all quantization policies.

Everything here follows the quantization-aware-training (QAT) recipe of the
paper's Section III-A: a quantization mapping ``Q(z; N, alpha)`` discretizes
a tensor onto the ``N``-bit grid ``C_alpha^N`` on the forward pass, while
gradients flow through a straight-through estimator (STE) on the backward
pass.  Policies (DoReFa, WRPN, PACT, SAWB, LSQ, LQ-Nets) differ only in how
the clip range / scale ``alpha`` is chosen or learned; they all reduce to
the uniform fake-quantizers defined here.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.autograd import no_grad
from ..nn.modules import Parameter
from ..nn.tensor import Tensor

__all__ = [
    "n_levels",
    "quantize_unit_ste",
    "fake_quantize_symmetric",
    "fake_quantize_unsigned",
    "quantization_error",
    "WeightQuantizer",
    "ActivationQuantizer",
    "IdentityQuantizer",
]


def n_levels(bits: int, signed: bool = False) -> int:
    """Number of representable levels for a ``bits``-wide code.

    Unsigned codes use all ``2^bits`` codes over ``[0, 1]``; signed codes
    use a symmetric grid with ``2^(bits-1) - 1`` magnitude steps per sign
    (the zero-symmetric convention of DoReFa/WRPN).
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if signed:
        return 2 ** (bits - 1) - 1 if bits > 1 else 1
    return 2 ** bits - 1


def quantize_unit_ste(x: Tensor, bits: int) -> Tensor:
    """Quantize a tensor already living in ``[0, 1]`` to ``2^bits`` levels.

    This is DoReFa's ``quantize_k``: ``round(x * (2^k - 1)) / (2^k - 1)``
    with a straight-through gradient.
    """
    steps = n_levels(bits, signed=False)
    return F.round_ste(x * steps) / steps


def fake_quantize_symmetric(x: Tensor, bits: int, alpha: float) -> Tensor:
    """Symmetric uniform fake-quantization onto ``{0, ±s, ..., ±alpha}``.

    ``alpha`` is the clip magnitude; values outside ``[-alpha, alpha]``
    saturate.  For ``bits = 1`` this degenerates to binarization at scale
    ``alpha``.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    steps = n_levels(bits, signed=True)
    scale = alpha / steps
    clipped = x.clip(-alpha, alpha)
    return F.round_ste(clipped / scale) * scale


def fake_quantize_unsigned(x: Tensor, bits: int, alpha: float) -> Tensor:
    """Unsigned uniform fake-quantization onto ``{0, s, ..., alpha}``."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    steps = n_levels(bits, signed=False)
    scale = alpha / steps
    clipped = x.clip(0.0, alpha)
    return F.round_ste(clipped / scale) * scale


def quantization_error(x: np.ndarray, xq: np.ndarray) -> float:
    """Squared L2 quantization error ``||x - Q(x)||^2`` (paper Eq. 3)."""
    diff = np.asarray(x) - np.asarray(xq)
    return float((diff * diff).sum())


class WeightQuantizer:
    """Base class for per-layer weight quantizers.

    A quantizer is attached to one layer.  ``__call__`` maps the layer's
    full-precision (shadow) weights to their fake-quantized counterparts at
    the currently configured bit width; CCQ changes the bit width over time
    via :meth:`set_bits`.
    """

    def __init__(self) -> None:
        self.bits: Optional[int] = None

    def set_bits(self, bits: Optional[int]) -> None:
        """Configure the target precision (``None`` means full precision)."""
        if bits is not None and bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        previous = self.bits
        self.bits = bits
        if bits != previous:
            self.on_bits_change(previous, bits)

    def on_bits_change(
        self, previous: Optional[int], new: Optional[int]
    ) -> None:
        """Hook for policies with per-bit state (e.g. LSQ step size)."""

    def parameters(self) -> List[Parameter]:
        """Learnable quantizer parameters (empty for static policies)."""
        return []

    def __call__(self, weight: Tensor) -> Tensor:
        if self.bits is None:
            return weight
        return self.quantize(weight, self.bits)

    def quantize_array(self, weight: np.ndarray) -> np.ndarray:
        """Fake-quantize a raw ndarray outside the autograd graph.

        The kernel-level entry point the fused quant-conv uses
        (:meth:`repro.nn.backends.base.KernelBackend.fused_quant_conv2d`).
        Routes through the same Tensor path as ``__call__`` under
        ``no_grad``, so every policy override of :meth:`quantize` —
        including stateful ones — behaves identically to the unfused
        path.
        """
        with no_grad():
            return self(Tensor(weight)).data

    def quantize(self, weight: Tensor, bits: int) -> Tensor:
        raise NotImplementedError


class ActivationQuantizer:
    """Base class for per-layer activation quantizers (same contract)."""

    def __init__(self) -> None:
        self.bits: Optional[int] = None

    def set_bits(self, bits: Optional[int]) -> None:
        if bits is not None and bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        previous = self.bits
        self.bits = bits
        if bits != previous:
            self.on_bits_change(previous, bits)

    def on_bits_change(
        self, previous: Optional[int], new: Optional[int]
    ) -> None:
        """Hook for policies with per-bit state."""

    def parameters(self) -> List[Parameter]:
        return []

    def regularization(self) -> Optional[Tensor]:
        """Optional loss term (e.g. PACT's L2 penalty on alpha)."""
        return None

    def __call__(self, x: Tensor) -> Tensor:
        if self.bits is None:
            return x
        return self.quantize(x, self.bits)

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        raise NotImplementedError


class IdentityQuantizer(WeightQuantizer, ActivationQuantizer):
    """A no-op quantizer (used for layers kept at full precision)."""

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        return x
