"""``repro.quantization`` — quantization policies and quantized modules.

Implements the full policy zoo the paper builds on and compares against
(DoReFa, WRPN, PACT, PACT-SAWB, LSQ, LQ-Nets, QIL, BNN, XNOR) plus static
post-training calibration (ACIQ, TensorRT-style KL, observer-driven
activation calibration), deployment export (codebook bit-packing) and
int64 execution validation, all on a shared STE fake-quant core.
:func:`quantize_model` converts any :class:`repro.nn.Module` network into
its quantization-aware counterpart with per-layer reconfigurable bit
widths.
"""

from .binary import (
    BNNActivationQuantizer,
    BNNWeightQuantizer,
    XNORWeightQuantizer,
    per_channel_symmetric_quantize,
)
from .qil import QILActivationQuantizer, QILWeightQuantizer
from .base import (
    ActivationQuantizer,
    IdentityQuantizer,
    WeightQuantizer,
    fake_quantize_symmetric,
    fake_quantize_unsigned,
    n_levels,
    quantization_error,
    quantize_unit_ste,
)
from .dorefa import DoReFaActivationQuantizer, DoReFaWeightQuantizer
from .export import PackedLayer, PackedModel, pack_model, unpack_into
from .integer_inference import (
    AffineCode,
    extract_affine_code,
    integer_conv2d,
    integer_linear,
)
from .calibration import FixedClipActivationQuantizer, calibrate_activations
from .lqnets import LQNetsActivationQuantizer, LQNetsWeightQuantizer, lloyd_levels
from .lsq import LSQActivationQuantizer, LSQWeightQuantizer
from .observers import (
    HistogramObserver,
    MinMaxObserver,
    MovingAverageMinMaxObserver,
)
from .pact import PACTActivationQuantizer, PACTWeightQuantizer
from .policy import QuantPolicy, available_policies, get_policy, register_policy
from .qmodules import (
    QuantConv2d,
    QuantLinear,
    QuantModule,
    collect_quantizer_parameters,
    collect_regularization,
    enable_weight_cache,
    get_bit_config,
    invalidate_weight_cache,
    quantize_model,
    quantized_layers,
    set_bit_config,
    set_uniform_bits,
    weight_cache_stats,
)
from .sawb import SAWBWeightQuantizer, fit_sawb_coefficients, sawb_alpha
from .static import aciq_clip, kl_divergence_clip, quantize_array_symmetric
from .wrpn import WRPNActivationQuantizer, WRPNWeightQuantizer

__all__ = [
    "ActivationQuantizer",
    "WeightQuantizer",
    "IdentityQuantizer",
    "n_levels",
    "quantize_unit_ste",
    "fake_quantize_symmetric",
    "fake_quantize_unsigned",
    "quantization_error",
    "DoReFaWeightQuantizer",
    "DoReFaActivationQuantizer",
    "WRPNWeightQuantizer",
    "WRPNActivationQuantizer",
    "PACTWeightQuantizer",
    "PACTActivationQuantizer",
    "SAWBWeightQuantizer",
    "sawb_alpha",
    "fit_sawb_coefficients",
    "LSQWeightQuantizer",
    "LSQActivationQuantizer",
    "LQNetsWeightQuantizer",
    "LQNetsActivationQuantizer",
    "QILWeightQuantizer",
    "QILActivationQuantizer",
    "BNNWeightQuantizer",
    "BNNActivationQuantizer",
    "XNORWeightQuantizer",
    "per_channel_symmetric_quantize",
    "PackedLayer",
    "PackedModel",
    "pack_model",
    "unpack_into",
    "AffineCode",
    "extract_affine_code",
    "integer_conv2d",
    "integer_linear",
    "FixedClipActivationQuantizer",
    "calibrate_activations",
    "lloyd_levels",
    "MinMaxObserver",
    "MovingAverageMinMaxObserver",
    "HistogramObserver",
    "aciq_clip",
    "kl_divergence_clip",
    "quantize_array_symmetric",
    "QuantPolicy",
    "register_policy",
    "get_policy",
    "available_policies",
    "QuantModule",
    "QuantConv2d",
    "QuantLinear",
    "quantize_model",
    "quantized_layers",
    "set_uniform_bits",
    "get_bit_config",
    "set_bit_config",
    "collect_quantizer_parameters",
    "collect_regularization",
    "enable_weight_cache",
    "invalidate_weight_cache",
    "weight_cache_stats",
]
