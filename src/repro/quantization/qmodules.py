"""Quantized layer wrappers and model conversion.

:func:`quantize_model` walks a float network and swaps every ``Conv2d`` /
``Linear`` for a :class:`QuantConv2d` / :class:`QuantLinear` that shares
the *same* parameter tensors (shadow full-precision weights) and attaches
policy-specific weight/activation quantizers.  Per-layer precision is then
a pair of attributes (``w_bits`` / ``a_bits``) that CCQ reconfigures as
the competition proceeds — including down to very low precision for the
first and last layers, which is one of the paper's headline abilities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..nn import functional as F
from ..nn.autograd import is_grad_enabled
from ..nn.modules import Conv2d, Linear, Module, Parameter
from ..nn.tensor import Tensor
from .base import ActivationQuantizer, WeightQuantizer
from .policy import QuantPolicy, get_policy

__all__ = [
    "QuantConv2d",
    "QuantLinear",
    "QuantModule",
    "quantize_model",
    "quantized_layers",
    "set_uniform_bits",
    "get_bit_config",
    "set_bit_config",
    "collect_quantizer_parameters",
    "collect_regularization",
    "enable_weight_cache",
    "invalidate_weight_cache",
    "weight_cache_stats",
]


class QuantModule(Module):
    """Mixin interface shared by all quantized layers.

    Besides the bit-width plumbing, every quantized layer carries a
    *frozen-weight quantization cache*: within a CCQ competition stage
    the shadow weights are constant and only the probed layer's bit
    width changes, so quantizing each layer's weights once per ``(layer,
    bits)`` pair and reusing the tensor across probes is exact.  The
    cache is keyed by the weight quantizer's current bit width, serves
    only inference forwards (``no_grad``), and is dropped whenever the
    weights may have changed (see :func:`invalidate_weight_cache`) —
    training forwards always re-quantize, both because gradients must
    flow through the live quantizer and because the weights move.
    """

    weight: Parameter
    weight_quantizer: WeightQuantizer
    act_quantizer: ActivationQuantizer

    def __init__(self) -> None:
        super().__init__()
        # Plain (non-Parameter/Module) attributes bypass the module
        # registry, so the cache never leaks into state_dict.
        self._wq_cache: Dict[Optional[int], Tensor] = {}
        self._wq_cache_enabled = False
        self._wq_cache_hits = 0
        self._wq_cache_misses = 0

    @property
    def w_bits(self) -> Optional[int]:
        """Weight precision in bits (``None`` = full precision)."""
        return self.weight_quantizer.bits

    @w_bits.setter
    def w_bits(self, bits: Optional[int]) -> None:
        self.weight_quantizer.set_bits(bits)

    @property
    def a_bits(self) -> Optional[int]:
        """Activation (layer input) precision in bits."""
        return self.act_quantizer.bits

    @a_bits.setter
    def a_bits(self, bits: Optional[int]) -> None:
        self.act_quantizer.set_bits(bits)

    def quantizer_parameters(self) -> List[Parameter]:
        """Learnable quantizer state (PACT alpha, LSQ steps, ...)."""
        return [
            *self.weight_quantizer.parameters(),
            *self.act_quantizer.parameters(),
        ]

    def _register_quantizer_parameters(self) -> None:
        """Expose quantizer parameters through the module tree.

        Registering them as named parameters makes ``state_dict``
        snapshots (used by CCQ's collaboration stage) carry PACT alphas
        and LSQ step sizes alongside the weights.
        """
        for i, p in enumerate(self.weight_quantizer.parameters()):
            setattr(self, f"wq_param_{i}", p)
        for i, p in enumerate(self.act_quantizer.parameters()):
            setattr(self, f"aq_param_{i}", p)

    def weight_size_bits(self) -> float:
        """Storage cost of this layer's weights at the current precision."""
        bits = self.w_bits if self.w_bits is not None else 32
        return float(self.weight.size * bits)

    def quantized_weight(self) -> Tensor:
        """The fake-quantized weights at the current precision."""
        return self.weight_quantizer(self.weight)

    def _cached_quantized_weight(self) -> Tensor:
        """Forward-path weight quantization, served from the cache when
        the weights are known frozen.

        The cache only answers when (a) it is enabled, (b) autograd is
        off — a training forward needs the gradient path through the
        live quantizer — and (c) the weight quantizer does not have
        statistics initialization pending (``_initialized is False``),
        since such quantizers (LSQ) mutate their own state on the next
        real forward and a cached tensor would swallow that.
        """
        if (
            not self._wq_cache_enabled
            or is_grad_enabled()
            or getattr(self.weight_quantizer, "_initialized", True)
            is False
        ):
            return self.weight_quantizer(self.weight)
        bits = self.weight_quantizer.bits
        cached = self._wq_cache.get(bits)
        if cached is not None:
            self._wq_cache_hits += 1
            return cached
        wq = self.weight_quantizer(self.weight)
        self._wq_cache[bits] = wq
        self._wq_cache_misses += 1
        return wq


class QuantConv2d(QuantModule):
    """Convolution with fake-quantized weights and input activations."""

    def __init__(
        self,
        conv: Conv2d,
        weight_quantizer: WeightQuantizer,
        act_quantizer: ActivationQuantizer,
    ) -> None:
        super().__init__()
        self.in_channels = conv.in_channels
        self.out_channels = conv.out_channels
        self.kernel_size = conv.kernel_size
        self.stride = conv.stride
        self.padding = conv.padding
        self.weight = conv.weight
        self.bias = conv.bias
        self.weight_quantizer = weight_quantizer
        self.act_quantizer = act_quantizer
        self._register_quantizer_parameters()

    def forward(self, x: Tensor) -> Tensor:
        xq = self.act_quantizer(x)
        if (
            not is_grad_enabled()
            and not self._wq_cache_enabled
            and self.weight_quantizer.bits is not None
        ):
            # Uncached inference forward: fuse the weight quantization
            # into the conv kernel so the quantized weight never
            # materializes as a Tensor.  With the frozen-weight cache
            # armed (CCQ competition stages) the cached tensor is
            # cheaper still, so the unfused path keeps priority.
            return F.fused_quant_conv2d(
                xq, self.weight, self.bias, self.weight_quantizer,
                stride=self.stride, padding=self.padding,
            )
        wq = self._cached_quantized_weight()
        return F.conv2d(xq, wq, self.bias, stride=self.stride,
                        padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"QuantConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, w_bits={self.w_bits}, "
            f"a_bits={self.a_bits})"
        )


class QuantLinear(QuantModule):
    """Linear layer with fake-quantized weights and input activations."""

    def __init__(
        self,
        fc: Linear,
        weight_quantizer: WeightQuantizer,
        act_quantizer: ActivationQuantizer,
    ) -> None:
        super().__init__()
        self.in_features = fc.in_features
        self.out_features = fc.out_features
        self.weight = fc.weight
        self.bias = fc.bias
        self.weight_quantizer = weight_quantizer
        self.act_quantizer = act_quantizer
        self._register_quantizer_parameters()

    def forward(self, x: Tensor) -> Tensor:
        xq = self.act_quantizer(x)
        wq = self._cached_quantized_weight()
        return F.linear(xq, wq, self.bias)

    def __repr__(self) -> str:
        return (
            f"QuantLinear({self.in_features}, {self.out_features}, "
            f"w_bits={self.w_bits}, a_bits={self.a_bits})"
        )


def quantize_model(
    model: Module,
    policy: "QuantPolicy | str",
    skip: Sequence[str] = (),
) -> Module:
    """Swap every Conv2d/Linear in ``model`` for its quantized wrapper.

    The conversion happens in place (and the model is also returned).  The
    first converted layer — the one consuming the raw network input — gets
    a *signed* activation quantizer since normalized images are zero-
    centred; every later layer sits behind a ReLU and uses the unsigned
    quantizer of the policy.  ``skip`` lists dotted module names to leave
    at full precision entirely (not wrapped).
    """
    if isinstance(policy, str):
        policy = get_policy(policy)
    first = True
    for parent_name, parent in list(model.named_modules()):
        for child_name, child in list(parent._modules.items()):
            full_name = f"{parent_name}.{child_name}" if parent_name else child_name
            if full_name in skip or isinstance(child, QuantModule):
                continue
            if isinstance(child, Conv2d):
                wrapped: QuantModule = QuantConv2d(
                    child,
                    policy.make_weight_quantizer(),
                    policy.make_act_quantizer(first),
                )
            elif isinstance(child, Linear):
                wrapped = QuantLinear(
                    child,
                    policy.make_weight_quantizer(),
                    policy.make_act_quantizer(False),
                )
            else:
                continue
            first = False
            parent.add_module(child_name, wrapped)
    return model


def quantized_layers(model: Module) -> List[Tuple[str, QuantModule]]:
    """All quantized layers of ``model`` in forward traversal order."""
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, QuantModule)
    ]


def set_uniform_bits(
    model: Module,
    w_bits: Optional[int],
    a_bits: Optional[int],
    first_last_w_bits: "int | None | str" = "same",
    first_last_a_bits: "int | None | str" = "same",
) -> None:
    """Configure a uniform precision, optionally overriding first/last.

    Passing ``first_last_w_bits=None`` reproduces the common baseline
    convention of keeping the first and last layers at full precision
    (the ``fp-3b-fp`` patterns of Table I).
    """
    layers = quantized_layers(model)
    for i, (_, layer) in enumerate(layers):
        is_edge = i in (0, len(layers) - 1)
        layer.w_bits = (
            w_bits if not is_edge or first_last_w_bits == "same"
            else first_last_w_bits
        )
        layer.a_bits = (
            a_bits if not is_edge or first_last_a_bits == "same"
            else first_last_a_bits
        )


def get_bit_config(model: Module) -> Dict[str, Tuple[Optional[int], Optional[int]]]:
    """Snapshot ``{layer_name: (w_bits, a_bits)}`` for the whole model."""
    return {
        name: (layer.w_bits, layer.a_bits)
        for name, layer in quantized_layers(model)
    }


def set_bit_config(
    model: Module,
    config: Dict[str, Tuple[Optional[int], Optional[int]]],
) -> None:
    """Apply a configuration produced by :func:`get_bit_config`."""
    layers = dict(quantized_layers(model))
    for name, (w_bits, a_bits) in config.items():
        if name not in layers:
            raise KeyError(f"no quantized layer named {name!r}")
        layers[name].w_bits = w_bits
        layers[name].a_bits = a_bits


def enable_weight_cache(model: Module, enabled: bool = True) -> None:
    """Switch the frozen-weight quantization cache on/off model-wide.

    Flipping the switch always drops cached tensors, so enabling after
    a training phase can never serve weights quantized before it.
    """
    for _, layer in quantized_layers(model):
        layer._wq_cache_enabled = enabled
        layer._wq_cache.clear()


def invalidate_weight_cache(model: Module) -> None:
    """Drop every cached quantized-weight tensor (weights changed)."""
    for _, layer in quantized_layers(model):
        layer._wq_cache.clear()


def weight_cache_stats(model: Module) -> Dict[str, int]:
    """Lifetime cache counters aggregated over all quantized layers."""
    hits = 0
    misses = 0
    for _, layer in quantized_layers(model):
        hits += layer._wq_cache_hits
        misses += layer._wq_cache_misses
    return {"hits": hits, "misses": misses}


def collect_quantizer_parameters(model: Module) -> List[Parameter]:
    """All learnable quantizer parameters in the model."""
    params: List[Parameter] = []
    for _, layer in quantized_layers(model):
        params.extend(layer.quantizer_parameters())
    return params


def collect_regularization(model: Module) -> Optional[Tensor]:
    """Sum of all quantizer regularization terms (e.g. PACT alpha L2)."""
    total: Optional[Tensor] = None
    for _, layer in quantized_layers(model):
        reg = layer.act_quantizer.regularization()
        if reg is None:
            continue
        total = reg if total is None else total + reg
    return total
