"""Binary quantizers: BNN (Courbariaux et al.) and XNOR-Net (Rastegari et al.).

The earliest quantization-aware-training policies the paper's related work
starts from:

* **BNN** maps weights and activations to ±1 with a straight-through sign
  whose gradient is masked outside [-1, 1] (the "hard-tanh STE").
* **XNOR-Net** adds a per-output-channel scaling factor
  ``alpha_f = E[|W_f|]`` so the binary convolution approximates the real
  one; activations are binarized with a dynamic scale.

Both generalize to multiple bits here (CCQ's ladders visit 8..2 before any
binary floor): for ``bits > 1`` they fall back to the corresponding
DoReFa-style multi-bit grid, keeping the per-channel scaling in the XNOR
case — which doubles as this library's per-channel weight quantization.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor
from .base import ActivationQuantizer, WeightQuantizer, quantize_unit_ste

__all__ = [
    "BNNWeightQuantizer",
    "BNNActivationQuantizer",
    "XNORWeightQuantizer",
    "per_channel_symmetric_quantize",
]


def _sign_ste(x: Tensor) -> Tensor:
    """±1 sign with the BNN hard-tanh straight-through gradient."""
    clipped = x.clip(-1.0, 1.0)
    return F.round_ste((clipped + 1.0) * 0.5) * 2.0 - 1.0


def per_channel_symmetric_quantize(weight: Tensor, bits: int) -> Tensor:
    """Symmetric uniform quantization with one scale per output channel.

    The clip magnitude of each output channel (axis 0) is its own
    ``max|w|``; channels therefore keep their native dynamic range, which
    matters for depthwise-narrow layers where a single tensor-wide scale
    wastes most of the grid.
    """
    steps = max(2 ** (bits - 1) - 1, 1)
    reduce_axes = tuple(range(1, weight.ndim))
    if reduce_axes:
        alphas = np.abs(weight.data).max(axis=reduce_axes, keepdims=True)
    else:
        # 1-D tensors have no channel axis to split on: one global scale.
        alphas = np.abs(weight.data).max(keepdims=True)
    alphas = np.maximum(alphas, 1e-12)
    scale = alphas / steps
    # clip(w, -a, a) per channel via two ReLU compositions (a is an
    # ndarray, so Tensor.clip's scalar bounds don't apply).
    upper = weight - (weight - alphas).relu()
    clipped = upper + (-(upper) - alphas).relu()
    return F.round_ste(clipped / scale) * scale


class BNNWeightQuantizer(WeightQuantizer):
    """sign(w) at 1 bit; DoReFa-style grid at higher precision."""

    def quantize(self, weight: Tensor, bits: int) -> Tensor:
        if bits == 1:
            return _sign_ste(weight)
        steps = max(2 ** (bits - 1) - 1, 1)
        clipped = weight.clip(-1.0, 1.0)
        return F.round_ste(clipped * steps) / steps


class BNNActivationQuantizer(ActivationQuantizer):
    """sign(x) at 1 bit; unit-interval grid at higher precision."""

    def __init__(self, signed: bool = False) -> None:
        super().__init__()
        self.signed = signed

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        if bits == 1:
            return _sign_ste(x)
        if self.signed:
            steps = max(2 ** (bits - 1) - 1, 1)
            return F.round_ste(x.clip(-1.0, 1.0) * steps) / steps
        return quantize_unit_ste(x.clip(0.0, 1.0), bits)


class XNORWeightQuantizer(WeightQuantizer):
    """Per-output-channel scaled binarization / symmetric quantization.

    At 1 bit this is exactly XNOR-Net's ``alpha_f * sign(W_f)`` with
    ``alpha_f = E[|W_f|]``; at higher precision it becomes per-channel
    symmetric uniform quantization.
    """

    def quantize(self, weight: Tensor, bits: int) -> Tensor:
        if bits == 1:
            reduce_axes = tuple(range(1, weight.ndim))
            if reduce_axes:
                alphas = np.abs(weight.data).mean(
                    axis=reduce_axes, keepdims=True
                )
            else:
                alphas = np.abs(weight.data).mean(keepdims=True)
            return _sign_ste(weight) * alphas
        return per_channel_symmetric_quantize(weight, bits)
