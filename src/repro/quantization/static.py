"""Static (post-training) quantization: ACIQ and KL-divergence calibration.

These implement the "static quantization" branch of the paper's related
work, providing the pre-CCQ comparison points:

* **ACIQ** (Banner et al., 2018): choose the clip analytically by matching
  the empirical distribution to a Gaussian or Laplace and using the
  MSE-optimal clip for that family at the given bit width.
* **KL calibration** (Migacz, TensorRT, 2017): sweep clip thresholds over
  an activation histogram and keep the one minimizing the KL divergence
  between the clipped reference distribution and its quantized
  approximation.
"""

from __future__ import annotations

from typing import Literal

import numpy as np
from scipy import optimize, stats

from .base import n_levels

__all__ = [
    "aciq_clip",
    "kl_divergence_clip",
    "quantize_array_symmetric",
]


def quantize_array_symmetric(
    values: np.ndarray, bits: int, alpha: float
) -> np.ndarray:
    """Plain (non-autograd) symmetric uniform quantization of an ndarray."""
    steps = n_levels(bits, signed=True)
    scale = alpha / steps
    return np.clip(np.round(values / scale), -steps, steps) * scale


def _expected_mse(alpha: float, bits: int, dist: str) -> float:
    """Expected quantization MSE for a unit-scale ``dist`` clipped at alpha.

    Clip noise: ``2 * E[(|x| - alpha)^2 ; |x| > alpha]``;
    rounding noise: ``step^2 / 12`` over the kept mass.
    """
    steps = n_levels(bits, signed=True)
    step = alpha / steps
    if dist == "gauss":
        rv = stats.norm()
    elif dist == "laplace":
        rv = stats.laplace()
    else:
        raise ValueError(f"unknown distribution {dist!r}")
    # E[(x - alpha)^2 * 1{x > alpha}] via numerical integration.
    xs = np.linspace(alpha, alpha + 12.0, 4000)
    tail = np.trapezoid((xs - alpha) ** 2 * rv.pdf(xs), xs)
    kept_mass = rv.cdf(alpha) - rv.cdf(-alpha)
    return 2.0 * tail + (step ** 2) / 12.0 * kept_mass


def aciq_clip(
    values: np.ndarray,
    bits: int,
    dist: Literal["gauss", "laplace", "auto"] = "auto",
) -> float:
    """ACIQ analytic clip for ``values`` at ``bits`` precision.

    The empirical scale (std for Gaussian, mean-|x| for Laplace) maps the
    unit-family optimum onto the data.  ``dist="auto"`` picks the family
    with the higher likelihood, as the ACIQ paper suggests by comparing
    the empirical distribution against both.
    """
    flat = np.asarray(values, dtype=np.float64).reshape(-1)
    centered = flat - flat.mean()
    if dist == "auto":
        sigma = centered.std() or 1e-12
        b = np.mean(np.abs(centered)) or 1e-12
        ll_gauss = stats.norm(scale=sigma).logpdf(centered).sum()
        ll_laplace = stats.laplace(scale=b).logpdf(centered).sum()
        dist = "gauss" if ll_gauss >= ll_laplace else "laplace"
    if dist == "gauss":
        scale = centered.std() or 1e-12
    else:
        scale = float(np.mean(np.abs(centered))) or 1e-12
    result = optimize.minimize_scalar(
        lambda a: _expected_mse(a, bits, dist),
        bounds=(0.1, 20.0),
        method="bounded",
    )
    return float(result.x) * scale


def _quantize_histogram(ref: np.ndarray, n_quant_bins: int) -> np.ndarray:
    """Collapse a histogram onto ``n_quant_bins`` levels then re-expand."""
    n = len(ref)
    out = np.zeros_like(ref)
    edges = np.linspace(0, n, n_quant_bins + 1).astype(int)
    for lo, hi in zip(edges[:-1], edges[1:]):
        chunk = ref[lo:hi]
        nonzero = chunk > 0
        if nonzero.any():
            avg = chunk[nonzero].sum() / nonzero.sum()
            out[lo:hi][nonzero] = avg
    return out


def kl_divergence_clip(
    counts: np.ndarray,
    max_abs: float,
    bits: int,
    min_bins: int = 128,
) -> float:
    """TensorRT-style KL-minimizing clip from a magnitude histogram.

    ``counts`` is a histogram of ``|x|`` over ``[0, max_abs]``.  For every
    candidate truncation point, the tail mass is folded into the last kept
    bin, the kept histogram is quantized to ``2^bits`` levels, and the KL
    divergence between the two (normalized) distributions is measured.
    """
    counts = np.asarray(counts, dtype=np.float64)
    n_bins = len(counts)
    n_quant = 2 ** bits
    bin_width = max_abs / n_bins
    best_kl, best_i = np.inf, n_bins
    start = max(min_bins, n_quant)
    for i in range(start, n_bins + 1):
        ref = counts[:i].copy()
        ref[i - 1] += counts[i:].sum()  # fold the clipped tail in
        if ref.sum() == 0:
            continue
        cand = _quantize_histogram(counts[:i].copy(), n_quant)
        p = ref / ref.sum()
        q_sum = cand.sum()
        if q_sum == 0:
            continue
        q = cand / q_sum
        mask = p > 0
        q_safe = np.where(q[mask] > 0, q[mask], 1e-12)
        kl = float(np.sum(p[mask] * np.log(p[mask] / q_safe)))
        if kl < best_kl:
            best_kl, best_i = kl, i
    return best_i * bin_width
