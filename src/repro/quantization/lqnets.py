"""LQ-Nets-style learned quantization levels (Zhang et al., 2018).

LQ-Nets learns a non-uniform level set jointly with the network by
alternating a quantization-error-minimization (QEM) step with SGD.  We
reproduce the QEM half with Lloyd-Max iterations over the layer's weight
values: the level set is the fixed point of

    level_j <- mean of the values assigned to level j

which is exactly the 1-D k-means / QEM solution LQ-Nets converges to.  The
levels are refreshed on every bit-width change and periodically during
fine-tuning (``refresh_interval`` forward passes); between refreshes the
forward pass snaps values to the nearest learned level with an STE
gradient.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.autograd import Context, Function
from ..nn.tensor import Tensor
from .base import ActivationQuantizer, WeightQuantizer

__all__ = ["lloyd_levels", "LQNetsWeightQuantizer", "LQNetsActivationQuantizer"]


def lloyd_levels(
    values: np.ndarray,
    n_levels: int,
    iterations: int = 12,
    symmetric: bool = False,
) -> np.ndarray:
    """Lloyd-Max level placement for a 1-D sample.

    Starts from uniform levels over the value range and alternates
    assignment / centroid updates.  ``symmetric=True`` mirrors the level
    set around zero after every update (weight distributions are roughly
    symmetric and a symmetric codebook halves the storage).
    """
    flat = np.asarray(values, dtype=np.float64).reshape(-1)
    lo, hi = float(flat.min()), float(flat.max())
    if hi <= lo:
        return np.full(n_levels, lo)
    levels = np.linspace(lo, hi, n_levels)
    for _ in range(iterations):
        edges = (levels[1:] + levels[:-1]) / 2.0
        assignment = np.searchsorted(edges, flat)
        for j in range(n_levels):
            members = flat[assignment == j]
            if members.size:
                levels[j] = members.mean()
        levels.sort()
        if symmetric:
            levels = (levels - levels[::-1]) / 2.0
            levels.sort()
    return levels


class _NearestLevelSTE(Function):
    """Snap to the nearest codebook level; identity gradient."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, levels: np.ndarray) -> np.ndarray:
        edges = (levels[1:] + levels[:-1]) / 2.0
        idx = np.searchsorted(edges, x)
        return levels[idx]

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (grad,)


class LQNetsWeightQuantizer(WeightQuantizer):
    """Weight quantizer with Lloyd-refreshed learned levels."""

    def __init__(self, refresh_interval: int = 50) -> None:
        super().__init__()
        self.refresh_interval = refresh_interval
        self._levels: Optional[np.ndarray] = None
        self._calls_since_refresh = 0

    def on_bits_change(self, previous: Optional[int], new: Optional[int]) -> None:
        self._levels = None

    def refresh(self, values: np.ndarray, bits: int) -> None:
        """Re-run the QEM (Lloyd) step against the current weights."""
        self._levels = lloyd_levels(values, 2 ** bits, symmetric=True)
        self._calls_since_refresh = 0

    def quantize(self, weight: Tensor, bits: int) -> Tensor:
        if (
            self._levels is None
            or self._calls_since_refresh >= self.refresh_interval
        ):
            self.refresh(weight.data, bits)
        self._calls_since_refresh += 1
        return _NearestLevelSTE.apply(weight, self._levels)


class LQNetsActivationQuantizer(ActivationQuantizer):
    """Activation quantizer with learned non-negative levels."""

    def __init__(self, refresh_interval: int = 50, signed: bool = False) -> None:
        super().__init__()
        self.refresh_interval = refresh_interval
        self.signed = signed
        self._levels: Optional[np.ndarray] = None
        self._calls_since_refresh = 0

    def on_bits_change(self, previous: Optional[int], new: Optional[int]) -> None:
        self._levels = None

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        if (
            self._levels is None
            or self._calls_since_refresh >= self.refresh_interval
        ):
            values = x.data if self.signed else np.maximum(x.data, 0.0)
            self._levels = lloyd_levels(values, 2 ** bits, symmetric=self.signed)
            self._calls_since_refresh = 0
        self._calls_since_refresh += 1
        pre = x if self.signed else x.relu()
        return _NearestLevelSTE.apply(pre, self._levels)
