"""Learned Step-size Quantization (Esser et al., 2019).

LSQ learns the quantizer step size ``s`` by gradient descent jointly with
the weights:

    q = clip(x / s, Qn, Qp);  x_hat = round(q) * s

The round uses an STE, so the gradient w.r.t. ``s`` comes out as
``round(q) - q`` inside the clip range and ``Qn``/``Qp`` on the saturated
tails — exactly the LSQ update.  The step size is (re-)initialized from
the tensor statistics ``2 E[|x|] / sqrt(Qp)`` whenever the bit width
changes, which is what lets LSQ follow CCQ's gradual bit reductions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.modules import Parameter
from ..nn.tensor import Tensor
from .base import ActivationQuantizer, WeightQuantizer

__all__ = ["LSQWeightQuantizer", "LSQActivationQuantizer"]


def _lsq_bounds(bits: int, signed: bool) -> tuple:
    if signed:
        return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    return 0, 2 ** bits - 1


def _lsq_quantize(x: Tensor, step: Parameter, bits: int, signed: bool) -> Tensor:
    if float(step.data) <= 1e-8:
        # Gradient descent can push the step through zero; re-anchor it.
        step.data[...] = _init_step(x.data, bits, signed)
    qn, qp = _lsq_bounds(bits, signed)
    q = (x / step).clip(float(qn), float(qp))
    return F.round_ste(q) * step


def _init_step(data: np.ndarray, bits: int, signed: bool) -> float:
    _, qp = _lsq_bounds(bits, signed)
    mean_abs = float(np.mean(np.abs(data))) or 1e-3
    return 2.0 * mean_abs / np.sqrt(max(qp, 1))


class LSQWeightQuantizer(WeightQuantizer):
    """Signed LSQ quantizer with a learnable per-layer step size."""

    def __init__(self) -> None:
        super().__init__()
        self.step = Parameter(np.asarray(0.0))
        self._initialized = False

    def parameters(self) -> List[Parameter]:
        return [self.step]

    def on_bits_change(self, previous: Optional[int], new: Optional[int]) -> None:
        # Force re-initialization from statistics at the new precision.
        self._initialized = False

    def quantize(self, weight: Tensor, bits: int) -> Tensor:
        if not self._initialized:
            self.step.data[...] = _init_step(weight.data, bits, signed=True)
            self._initialized = True
        return _lsq_quantize(weight, self.step, bits, signed=True)


class LSQActivationQuantizer(ActivationQuantizer):
    """Unsigned (or signed, for raw inputs) LSQ activation quantizer."""

    def __init__(self, signed: bool = False) -> None:
        super().__init__()
        self.signed = signed
        self.step = Parameter(np.asarray(0.0))
        self._initialized = False

    def parameters(self) -> List[Parameter]:
        return [self.step]

    def on_bits_change(self, previous: Optional[int], new: Optional[int]) -> None:
        self._initialized = False

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        if not self._initialized:
            self.step.data[...] = _init_step(x.data, bits, signed=self.signed)
            self._initialized = True
        return _lsq_quantize(x, self.step, bits, signed=self.signed)
