"""Deployable export: pack quantized weights into real integer storage.

The compression ratios of :mod:`repro.core.compression` are *accounting*
numbers (params x bits).  This module realizes them: every quantized
layer's fake-quantized weights are converted to a small **codebook** (the
layer's distinct quantization levels) plus a **bit-packed index array**,
which is exactly how a mixed-precision checkpoint ships to an edge target.
Because the packing is codebook-based it is policy-agnostic — uniform
grids (DoReFa/WRPN/PACT/SAWB/LSQ) and non-uniform learned levels (LQ-Nets)
serialize identically.

Round-trip fidelity is exact: unpacking reproduces the fake-quantized
weights bit-for-bit, so a packed model evaluates identically to the
QAT model it came from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..nn.modules import Module
from .qmodules import QuantModule, quantized_layers

__all__ = ["PackedLayer", "PackedModel", "pack_model", "unpack_into"]


@dataclass
class PackedLayer:
    """One layer's integer-packed weights."""

    name: str
    shape: Tuple[int, ...]
    codebook: np.ndarray        # distinct levels, float64, sorted
    packed_indices: np.ndarray  # np.uint8 bit-packed level indices
    index_bits: int             # bits per index
    n_values: int

    @property
    def payload_bytes(self) -> int:
        """Actual storage: packed indices + codebook (fp32 entries)."""
        return self.packed_indices.nbytes + self.codebook.size * 4

    def unpack(self) -> np.ndarray:
        """Reconstruct the fake-quantized weight tensor exactly."""
        bits = np.unpackbits(self.packed_indices)
        bits = bits[: self.n_values * self.index_bits]
        bits = bits.reshape(self.n_values, self.index_bits)
        weights = (1 << np.arange(self.index_bits - 1, -1, -1)).astype(np.int64)
        indices = bits.astype(np.int64) @ weights
        return self.codebook[indices].reshape(self.shape)


@dataclass
class PackedModel:
    """A whole model's packed layers plus size bookkeeping."""

    layers: Dict[str, PackedLayer]

    @property
    def payload_bytes(self) -> int:
        return sum(layer.payload_bytes for layer in self.layers.values())

    @property
    def fp32_bytes(self) -> int:
        return sum(
            int(np.prod(layer.shape)) * 4 for layer in self.layers.values()
        )

    @property
    def realized_compression(self) -> float:
        """Measured (not accounting) compression of the packed weights."""
        return self.fp32_bytes / self.payload_bytes


def _pack_layer(name: str, values: np.ndarray) -> PackedLayer:
    flat = values.reshape(-1)
    codebook, indices = np.unique(flat, return_inverse=True)
    index_bits = max(1, math.ceil(math.log2(len(codebook))))
    bits = (
        (indices[:, None] >> np.arange(index_bits - 1, -1, -1)) & 1
    ).astype(np.uint8)
    packed = np.packbits(bits.reshape(-1))
    return PackedLayer(
        name=name,
        shape=values.shape,
        codebook=codebook,
        packed_indices=packed,
        index_bits=index_bits,
        n_values=flat.size,
    )


def pack_model(model: Module) -> PackedModel:
    """Pack every quantized layer at its current precision.

    Layers still at full precision (``w_bits is None``) are skipped —
    they would need the whole fp32 tensor anyway.
    """
    packed: Dict[str, PackedLayer] = {}
    for name, layer in quantized_layers(model):
        if layer.w_bits is None:
            continue
        quantized = layer.quantized_weight().data
        packed[name] = _pack_layer(name, quantized)
    return PackedModel(layers=packed)


def unpack_into(model: Module, packed: PackedModel) -> None:
    """Overwrite the model's shadow weights with the packed values.

    After this the layer computes with exactly the deployed weights even
    at full precision (useful for validating a deployment artifact).
    """
    layers = dict(quantized_layers(model))
    for name, packed_layer in packed.layers.items():
        if name not in layers:
            raise KeyError(f"model has no quantized layer {name!r}")
        layers[name].weight.data[...] = packed_layer.unpack()
