"""Statistics-Aware Weight Binning (PACT-SAWB, Choi et al., 2018).

SAWB chooses the weight clipping scale ``alpha_w`` from the first two
absolute moments of the weight distribution:

    alpha_w* = c1 * sqrt(E[w^2]) + c2 * E[|w|]

with bit-width-dependent coefficients fit offline over a family of
reference distributions.  We reproduce that fitting procedure at import
time against Gaussian/Laplace/uniform mixtures (the paper fit against the
same family), so the table below is derived, not copied.  Values outside
the fitted range fall back to an MSE line search over candidate clips,
which is the quantity SAWB's closed form approximates.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor
from .base import WeightQuantizer, n_levels

__all__ = ["SAWBWeightQuantizer", "sawb_alpha", "fit_sawb_coefficients"]


def _mse_optimal_alpha(values: np.ndarray, bits: int) -> float:
    """Line-search the clip magnitude minimizing quantization MSE."""
    max_abs = float(np.abs(values).max())
    if max_abs == 0.0:
        return 1.0
    steps = n_levels(bits, signed=True)
    best_alpha, best_mse = max_abs, np.inf
    for frac in np.linspace(0.05, 1.0, 40):
        alpha = frac * max_abs
        scale = alpha / steps
        q = np.clip(np.round(values / scale), -steps, steps) * scale
        mse = float(((values - q) ** 2).mean())
        if mse < best_mse:
            best_mse, best_alpha = mse, alpha
    return best_alpha


def fit_sawb_coefficients(
    bits: int, seed: int = 0, n_samples: int = 20000
) -> Tuple[float, float]:
    """Fit ``(c1, c2)`` by least squares over reference distributions.

    For each reference distribution we compute the MSE-optimal clip and the
    two statistics ``sqrt(E[w^2])`` and ``E[|w|]``, then solve the 2-column
    least-squares system — the exact construction of the SAWB paper.
    """
    rng = np.random.default_rng(seed)
    rows, targets = [], []
    generators = [
        lambda: rng.normal(0, 1, n_samples),
        lambda: rng.laplace(0, 1, n_samples),
        lambda: rng.uniform(-1, 1, n_samples),
        lambda: rng.standard_t(4, n_samples),
        lambda: rng.normal(0, 1, n_samples) * rng.uniform(0.5, 1.5),
    ]
    for gen in generators:
        w = gen()
        rows.append([np.sqrt(np.mean(w ** 2)), np.mean(np.abs(w))])
        targets.append(_mse_optimal_alpha(w, bits))
    coeffs, *_ = np.linalg.lstsq(np.asarray(rows), np.asarray(targets), rcond=None)
    return float(coeffs[0]), float(coeffs[1])


_COEFFS: Dict[int, Tuple[float, float]] = {}


def _coefficients(bits: int) -> Tuple[float, float]:
    if bits not in _COEFFS:
        _COEFFS[bits] = fit_sawb_coefficients(bits)
    return _COEFFS[bits]


def sawb_alpha(weight: np.ndarray, bits: int) -> float:
    """SAWB closed-form clip scale for ``weight`` at ``bits`` precision."""
    c1, c2 = _coefficients(bits)
    e2 = float(np.sqrt(np.mean(weight ** 2)))
    e1 = float(np.mean(np.abs(weight)))
    alpha = c1 * e2 + c2 * e1
    if alpha <= 0.0:
        alpha = _mse_optimal_alpha(weight.reshape(-1), bits)
    return max(alpha, 1e-8)


class SAWBWeightQuantizer(WeightQuantizer):
    """Symmetric uniform weight quantizer with a SAWB-chosen clip."""

    def quantize(self, weight: Tensor, bits: int) -> Tensor:
        alpha = sawb_alpha(weight.data, bits)
        steps = n_levels(bits, signed=True)
        scale = alpha / steps
        clipped = weight.clip(-alpha, alpha)
        return F.round_ste(clipped / scale) * scale
