"""Integer-arithmetic inference: validate fake-quant against real int math.

Quantization-aware training simulates low-precision execution with
*fake* quantization (float values snapped to a grid).  A deployed
accelerator instead runs integer MACs: codes multiplied in int arithmetic,
accumulated in a wide register, rescaled once at the end.  This module
executes that integer pipeline for uniformly quantized layers and checks
it reproduces the fake-quant forward — the correctness link between the
training-time simulation and the hardware the paper's Fig. 5 models.

The affine-code extraction is policy-agnostic: any quantizer whose output
levels form a uniform grid (DoReFa, WRPN, PACT, SAWB, LSQ, fixed-clip
calibration) decomposes as ``q = scale * codes + offset`` with integer
codes.  Note DoReFa's ``2^k``-level weight grid has *no* representable
zero (levels ``2m/(2^k-1) - 1``), which is why the general offset form is
used instead of a zero-point form.  The integer convolution expands as

    Σ x_q·w_q = s_x s_w Σ c_x c_w + s_x b_w Σ c_x + b_x s_w Σ_v c_w
                + b_x b_w N_v

where every Σ is exact int64 arithmetic and the ``_v`` sums run over
*valid* (non-padded) positions — padding contributes the float value 0,
not the offset.

The lowering runs on the integer kernels of the current
:mod:`repro.nn.backends` backend (``int_im2col`` / ``int_gemm``): codes
stay int64 from extraction to the final rescale, with no float64
transport anywhere.  (The original implementation round-tripped the
codes through a float64 im2col and ``np.round`` — lossy beyond 2^53 and
a pointless conversion below it.)  Validity only depends on spatial
geometry, so one ``(OH*OW, KH*KW)`` mask and the weight's
channel-summed codes replace the full ``(N*OH*OW, C*KH*KW)`` float mask
the old path materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import backends

__all__ = [
    "AffineCode",
    "extract_affine_code",
    "integer_conv2d",
    "integer_linear",
]


@dataclass(frozen=True)
class AffineCode:
    """Integer representation of a uniformly quantized tensor."""

    codes: np.ndarray       # int64, >= 0 (anchored at the lowest level)
    scale: float
    offset: float           # value of code 0

    def dequantize(self) -> np.ndarray:
        """Back to float: ``scale * codes + offset``."""
        return self.scale * self.codes + self.offset

    @property
    def n_levels(self) -> int:
        return int(self.codes.max()) + 1


def extract_affine_code(
    quantized: np.ndarray, atol: float = 1e-9
) -> AffineCode:
    """Decompose fake-quantized values into ``scale * codes + offset``.

    Raises ``ValueError`` if the distinct values are not (numerically) a
    uniform grid — e.g. LQ-Nets' learned levels, which need a codebook
    representation (see :mod:`repro.quantization.export`) instead.
    """
    quantized = np.asarray(quantized, dtype=np.float64)
    levels = np.unique(quantized)
    if len(levels) == 1:
        return AffineCode(
            codes=np.zeros(quantized.shape, dtype=np.int64),
            scale=1.0,
            offset=float(levels[0]),
        )
    gaps = np.diff(levels)
    scale = float(gaps.min())
    ratios = gaps / scale
    if scale <= 0 or not np.allclose(ratios, np.round(ratios), atol=1e-6):
        raise ValueError("values do not lie on a uniform grid")
    offset = float(levels[0])
    codes = np.round((quantized - offset) / scale).astype(np.int64)
    if not np.allclose(codes * scale + offset, quantized, atol=atol):
        raise ValueError("grid reconstruction mismatch")
    return AffineCode(codes=codes, scale=scale, offset=offset)


def integer_conv2d(
    x: AffineCode,
    w: AffineCode,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """NCHW convolution with int64 accumulation, rescaled at the end.

    ``x.codes`` is ``(N, C, H, W)``; ``w.codes`` is ``(F, C, KH, KW)``.
    Zero padding contributes the float value 0 (as in the float conv), so
    padded positions are excluded from the offset correction terms via a
    validity mask.
    """
    n = x.codes.shape[0]
    f, c, kh, kw = w.codes.shape
    backend = backends.current()

    # Integer-native lowering: codes travel as int64, zero padding lands
    # as code 0 and so contributes nothing to the code sums.
    cols, spatial_mask, (oh, ow) = backend.int_im2col(
        x.codes, (kh, kw), (stride, stride), (padding, padding)
    )

    w_flat = np.ascontiguousarray(w.codes.reshape(f, -1), dtype=np.int64)

    acc = backend.int_gemm(cols, w_flat.T)      # Σ c_x c_w  (padded -> 0)
    sum_cx = cols.sum(axis=1, keepdims=True)    # Σ c_x      (padded -> 0)
    # Offset corrections depend only on window geometry: the spatial
    # mask times the channel-summed weight codes gives Σ_valid c_w per
    # output pixel, shared by every sample in the batch.
    w_spatial = w.codes.reshape(f, c, kh * kw).sum(axis=1)
    sum_cw_valid = backend.int_gemm(spatial_mask, w_spatial.T)
    n_valid = spatial_mask.sum(axis=1, keepdims=True) * c

    out = (
        acc.reshape(n, oh * ow, f).astype(np.float64) * (x.scale * w.scale)
        + sum_cx.reshape(n, oh * ow, 1).astype(np.float64)
        * (x.scale * w.offset)
        + sum_cw_valid.astype(np.float64)[None] * (x.offset * w.scale)
        + n_valid.astype(np.float64)[None] * (x.offset * w.offset)
    )
    out = out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out


def integer_linear(
    x: AffineCode,
    w: AffineCode,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``x_q @ w_q.T + b`` with int64 accumulation.

    ``x.codes`` is ``(N, In)``; ``w.codes`` is ``(Out, In)``.
    """
    cx = np.ascontiguousarray(x.codes, dtype=np.int64)
    cw = np.ascontiguousarray(w.codes, dtype=np.int64)
    k = cx.shape[1]
    acc = backends.current().int_gemm(cx, cw.T)
    sum_cx = cx.sum(axis=1, keepdims=True)
    sum_cw = cw.sum(axis=1)[None, :]
    out = (
        acc.astype(np.float64) * (x.scale * w.scale)
        + sum_cx.astype(np.float64) * (x.scale * w.offset)
        + sum_cw.astype(np.float64) * (x.offset * w.scale)
        + float(k) * (x.offset * w.offset)
    )
    if bias is not None:
        out += bias
    return out
