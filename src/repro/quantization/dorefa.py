"""DoReFa-Net quantizers (Zhou et al., 2016).

Weights are squashed with ``tanh``, affinely mapped onto ``[0, 1]``,
quantized on a uniform ``2^k``-level grid, then mapped back to
``[-1, 1]``.  Activations are clipped to ``[0, 1]`` and quantized on the
same grid.  Gradients use the straight-through estimator.
"""

from __future__ import annotations

from ..nn import functional as F
from ..nn.tensor import Tensor
from .base import ActivationQuantizer, WeightQuantizer, quantize_unit_ste

__all__ = ["DoReFaWeightQuantizer", "DoReFaActivationQuantizer"]


class DoReFaWeightQuantizer(WeightQuantizer):
    """DoReFa weight transform: tanh-normalize -> k-bit grid -> [-1, 1]."""

    def quantize(self, weight: Tensor, bits: int) -> Tensor:
        if bits == 1:
            # Binary special case from the paper: sign(w) * E[|w|].
            scale = weight.abs().mean().item()
            return _binarize(weight) * scale
        squashed = weight.tanh()
        max_abs = squashed.abs().max()
        if float(max_abs.data) == 0.0:
            # All-zero layer: the affine map onto [0, 1] is 0/0 and the
            # signed-activation path's `or 1.0` guard has no weight-side
            # twin, so this used to emit NaNs.  Zero weights quantize to
            # zero at any precision; keep them there with an identity
            # (straight-through) gradient.
            return weight * 1.0
        unit = squashed / (max_abs * 2.0) + 0.5
        return quantize_unit_ste(unit, bits) * 2.0 - 1.0


def _binarize(weight: Tensor) -> Tensor:
    """Map to ±1 with a straight-through gradient."""
    # round(clip(0.5 w + 0.5)) yields {0, 1}; affine to {-1, +1}.
    unit = (weight * 0.5 + 0.5).clip(0.0, 1.0)
    return F.round_ste(unit) * 2.0 - 1.0


class DoReFaActivationQuantizer(ActivationQuantizer):
    """Clip activations to ``[0, 1]`` and quantize to ``2^k`` levels.

    With ``signed=True`` (used when a layer's input can be negative, e.g.
    the network input image) a per-batch symmetric dynamic range
    ``[-max|x|, max|x|]`` is quantized instead.
    """

    def __init__(self, signed: bool = False) -> None:
        super().__init__()
        self.signed = signed

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        if self.signed:
            max_abs = float(abs(x.data).max()) or 1.0
            unit = (x / (2.0 * max_abs) + 0.5).clip(0.0, 1.0)
            return (quantize_unit_ste(unit, bits) - 0.5) * (2.0 * max_abs)
        return quantize_unit_ste(x.clip(0.0, 1.0), bits)
