"""WRPN quantizers (Mishra et al., 2017).

Weights are clipped to ``[-1, 1]`` and quantized with ``k - 1`` fractional
bits (one bit is spent on sign); activations are clipped to ``[0, 1]`` and
quantized with ``k`` bits.  WRPN pairs this with widened layers; width
scaling lives in the model constructors (``width_mult``), keeping the
quantizer itself minimal.
"""

from __future__ import annotations

from ..nn import functional as F
from ..nn.tensor import Tensor
from .base import ActivationQuantizer, WeightQuantizer, quantize_unit_ste

__all__ = ["WRPNWeightQuantizer", "WRPNActivationQuantizer"]


class WRPNWeightQuantizer(WeightQuantizer):
    """Clip to ``[-1, 1]`` then round onto ``2^(k-1) - 1`` magnitude steps."""

    def quantize(self, weight: Tensor, bits: int) -> Tensor:
        steps = max(2 ** (bits - 1) - 1, 1)
        clipped = weight.clip(-1.0, 1.0)
        return F.round_ste(clipped * steps) / steps


class WRPNActivationQuantizer(ActivationQuantizer):
    """Clip to ``[0, 1]`` then quantize to ``2^k - 1`` steps."""

    def __init__(self, signed: bool = False) -> None:
        super().__init__()
        self.signed = signed

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        if self.signed:
            steps = max(2 ** (bits - 1) - 1, 1)
            clipped = x.clip(-1.0, 1.0)
            return F.round_ste(clipped * steps) / steps
        return quantize_unit_ste(x.clip(0.0, 1.0), bits)
