"""Post-training activation calibration.

Static quantization needs a clip range for every layer's *input
activations*, which — unlike weights — are only observable by running
data through the network.  This module runs a calibration pass over a
loader, records per-layer activation statistics with the observers of
:mod:`repro.quantization.observers`, chooses a clip per layer (min/max,
ACIQ, or TensorRT-style KL), and installs fixed-clip quantizers.

Together with the weight-side :mod:`repro.quantization.static` this gives
the complete static-quantization pipeline the paper's related work
contrasts CCQ against.
"""

from __future__ import annotations

from typing import Dict, Literal, Optional

import numpy as np

from ..nn import no_grad
from ..nn.data import DataLoader
from ..nn.modules import Module
from ..nn.tensor import Tensor
from .base import ActivationQuantizer, fake_quantize_symmetric, fake_quantize_unsigned
from .observers import HistogramObserver, MinMaxObserver
from .qmodules import quantized_layers
from .static import aciq_clip, kl_divergence_clip

__all__ = ["FixedClipActivationQuantizer", "calibrate_activations"]

Method = Literal["minmax", "aciq", "kl"]


class FixedClipActivationQuantizer(ActivationQuantizer):
    """Activation quantizer with a calibration-time frozen clip."""

    def __init__(self, alpha: float, signed: bool = False) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)
        self.signed = signed

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        if self.signed:
            return fake_quantize_symmetric(x, bits, self.alpha)
        return fake_quantize_unsigned(x, bits, self.alpha)

    def __repr__(self) -> str:
        kind = "signed" if self.signed else "unsigned"
        return f"FixedClipActivationQuantizer(alpha={self.alpha:.4g}, {kind})"


def _choose_clip(
    method: Method,
    samples: np.ndarray,
    histogram: HistogramObserver,
    minmax: MinMaxObserver,
    bits: int,
) -> float:
    if method == "minmax":
        lo, hi = minmax.range()
        return max(abs(lo), abs(hi), 1e-8)
    if method == "aciq":
        return aciq_clip(samples, bits=bits, dist="auto")
    if method == "kl":
        counts, max_abs = histogram.histogram()
        return max(kl_divergence_clip(counts, max_abs, bits=bits), 1e-8)
    raise ValueError(f"unknown calibration method {method!r}")


def calibrate_activations(
    model: Module,
    loader: DataLoader,
    bits: int,
    method: Method = "kl",
    max_batches: Optional[int] = 4,
    sample_cap: int = 50000,
    seed: int = 0,
) -> Dict[str, float]:
    """Observe activations, choose clips, install fixed quantizers.

    Every quantized layer's activation quantizer is replaced with a
    :class:`FixedClipActivationQuantizer` at the calibrated clip and set
    to ``bits`` precision.  Returns ``{layer_name: alpha}``.

    The calibration forward passes run with activation quantization
    disabled (weights keep their current precision), matching the usual
    calibrate-then-quantize order.
    """
    layers = quantized_layers(model)
    if not layers:
        raise ValueError("model has no quantized layers")
    rng = np.random.default_rng(seed)

    observers = {
        name: (MinMaxObserver(), HistogramObserver(), [])
        for name, _ in layers
    }
    originals = {}
    for name, layer in layers:
        originals[name] = layer.act_quantizer

        class _Recorder(ActivationQuantizer):
            def __init__(self, key: str) -> None:
                super().__init__()
                self._key = key

            def __call__(self, x: Tensor) -> Tensor:
                minmax, hist, samples = observers[self._key]
                minmax.observe(x.data)
                hist.observe(x.data)
                flat = x.data.reshape(-1)
                if flat.size > 2048:
                    flat = rng.choice(flat, size=2048, replace=False)
                samples.append(flat.copy())
                return x

        layer.act_quantizer = _Recorder(name)

    try:
        was_training = model.training
        model.eval()
        with no_grad():
            for batch_index, (images, _) in enumerate(loader):
                if max_batches is not None and batch_index >= max_batches:
                    break
                model(Tensor(images))
        if was_training:
            model.train()
    finally:
        for name, layer in layers:
            layer.act_quantizer = originals[name]

    clips: Dict[str, float] = {}
    for i, (name, layer) in enumerate(layers):
        minmax, hist, samples = observers[name]
        stacked = np.concatenate(samples)[:sample_cap]
        alpha = _choose_clip(method, stacked, hist, minmax, bits)
        signed = i == 0  # network input is zero-centred
        layer.act_quantizer = FixedClipActivationQuantizer(alpha, signed=signed)
        layer.a_bits = bits
        clips[name] = alpha
    return clips
