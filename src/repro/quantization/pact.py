"""PACT quantizers (Choi et al., 2018).

PACT learns a per-layer clipping value ``alpha`` for the activations:

    y = 0.5 * (|x| - |x - alpha| + alpha)        # == clip(x, 0, alpha)
    y_q = round(y / s) * s,   s = alpha / (2^k - 1)

The absolute-value formulation gives exactly PACT's gradient
``dy/dalpha = 1`` on the saturated region and ``0`` elsewhere; the scale
``s`` uses a detached copy of ``alpha`` so no extra gradient path is
introduced beyond the paper's.  An L2 penalty on ``alpha`` regularizes the
clip level.  PACT quantizes weights with the DoReFa transform, as in the
original paper.

The paper under reproduction singles PACT out as the best-behaved policy
inside CCQ because the learnable ``alpha`` re-adapts after every per-layer
bit-width change.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.modules import Parameter
from ..nn.tensor import Tensor
from .base import ActivationQuantizer, n_levels
from .dorefa import DoReFaWeightQuantizer

__all__ = ["PACTActivationQuantizer", "PACTWeightQuantizer"]


class PACTActivationQuantizer(ActivationQuantizer):
    """Learnable-clip activation quantizer.

    ``alpha`` is registered as a learnable parameter that the collaboration
    (fine-tuning) stage optimizes jointly with the weights.
    """

    def __init__(
        self,
        init_alpha: float = 10.0,
        reg_lambda: float = 2e-4,
        signed: bool = False,
    ) -> None:
        super().__init__()
        self.alpha = Parameter(np.asarray(float(init_alpha)))
        self.reg_lambda = reg_lambda
        self.signed = signed

    def parameters(self) -> List[Parameter]:
        return [self.alpha]

    def regularization(self) -> Optional[Tensor]:
        """PACT's L2 penalty keeping ``alpha`` small (tighter grids)."""
        return self.alpha * self.alpha * self.reg_lambda

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        alpha_val = max(float(self.alpha.data), 1e-3)
        steps = n_levels(bits, signed=self.signed)
        scale = alpha_val / steps
        if self.signed:
            # Two-sided PACT variant for possibly-negative inputs:
            # clip(x, -alpha, alpha) with gradient to alpha from both tails.
            clipped = _two_sided_clip(x, self.alpha)
            return F.round_ste(clipped / scale) * scale
        clipped = (x.abs() - (x - self.alpha).abs() + self.alpha) * 0.5
        return F.round_ste(clipped / scale) * scale


def _two_sided_clip(x: Tensor, alpha: Parameter) -> Tensor:
    """``clip(x, -alpha, alpha)`` with PACT-style gradients to ``alpha``.

    The identity ``clip(x, -a, a) = (|x + a| - |x - a|) / 2`` yields
    ``d/da = +1`` on the upper saturated tail, ``-1`` on the lower tail
    and ``0`` inside the clip range — the two-sided analogue of PACT's
    one-sided gradient.
    """
    return ((x + alpha).abs() - (x - alpha).abs()) * 0.5


class PACTWeightQuantizer(DoReFaWeightQuantizer):
    """PACT uses the DoReFa weight transform; alias for clarity."""
