"""QIL — Quantization Interval Learning (Jung et al., CVPR 2019).

QIL learns, per layer, a *quantization interval* through two parameters —
a center ``c`` and a half-width ``d`` — trained by the task loss:

* values with ``|x| < c - d`` are pruned to zero;
* values with ``|x| > c + d`` saturate to ±1;
* values inside the interval are affinely mapped onto ``[0, 1]`` (and an
  optional exponent ``gamma`` bends the mapping) before uniform
  quantization.

Because both the pruning threshold and the clipping threshold are learned
jointly with the weights, QIL discovers non-uniform effective intervals —
the property the paper's Table II cites it for.  Gradients reach ``c`` and
``d`` through the affine transform on the non-saturated region.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.modules import Parameter
from ..nn.tensor import Tensor
from .base import ActivationQuantizer, WeightQuantizer

__all__ = ["QILWeightQuantizer", "QILActivationQuantizer"]


def _interval_transform(
    magnitude: Tensor, center: Parameter, half_width: Parameter
) -> Tensor:
    """Map ``|x|`` onto [0, 1] through the learned interval (c - d, c + d)."""
    lower = center - half_width
    width = half_width * 2.0
    return ((magnitude - lower) / width).clip(0.0, 1.0)


def _init_interval(values: np.ndarray) -> tuple:
    """Cover the bulk of the distribution: prune the bottom decile, clip
    near the observed maximum."""
    mags = np.abs(values)
    lo = float(np.quantile(mags, 0.1))
    hi = float(np.quantile(mags, 0.99))
    if hi <= lo:
        hi = lo + 1e-3
    return (lo + hi) / 2.0, (hi - lo) / 2.0


class QILWeightQuantizer(WeightQuantizer):
    """Signed interval-learning weight quantizer."""

    def __init__(self) -> None:
        super().__init__()
        self.center = Parameter(np.asarray(0.5))
        self.half_width = Parameter(np.asarray(0.5))
        self._initialized = False

    def parameters(self) -> List[Parameter]:
        return [self.center, self.half_width]

    def on_bits_change(self, previous: Optional[int], new: Optional[int]) -> None:
        # The interval is re-anchored to the weight statistics whenever the
        # precision changes (mirrors LSQ's step re-initialization).
        self._initialized = False

    def quantize(self, weight: Tensor, bits: int) -> Tensor:
        if not self._initialized:
            c, d = _init_interval(weight.data)
            self.center.data[...] = c
            self.half_width.data[...] = d
            self._initialized = True
        if float(self.half_width.data) <= 1e-6:
            self.half_width.data[...] = 1e-3
        sign = np.sign(weight.data)
        unit = _interval_transform(weight.abs(), self.center, self.half_width)
        steps = max(2 ** (bits - 1) - 1, 1)
        quantized_unit = F.round_ste(unit * steps) / steps
        return quantized_unit * sign


class QILActivationQuantizer(ActivationQuantizer):
    """Unsigned (post-ReLU) interval-learning activation quantizer.

    ``signed=True`` applies the weight-style signed transform instead,
    for layers fed by zero-centred inputs (the network input).
    """

    def __init__(self, signed: bool = False) -> None:
        super().__init__()
        self.signed = signed
        self.center = Parameter(np.asarray(0.5))
        self.half_width = Parameter(np.asarray(0.5))
        self._initialized = False

    def parameters(self) -> List[Parameter]:
        return [self.center, self.half_width]

    def on_bits_change(self, previous: Optional[int], new: Optional[int]) -> None:
        self._initialized = False

    def quantize(self, x: Tensor, bits: int) -> Tensor:
        if not self._initialized:
            values = x.data if self.signed else np.maximum(x.data, 0.0)
            c, d = _init_interval(values)
            self.center.data[...] = c
            self.half_width.data[...] = d
            self._initialized = True
        if float(self.half_width.data) <= 1e-6:
            self.half_width.data[...] = 1e-3
        if self.signed:
            sign = np.sign(x.data)
            unit = _interval_transform(x.abs(), self.center, self.half_width)
            steps = max(2 ** (bits - 1) - 1, 1)
            return F.round_ste(unit * steps) / steps * sign
        unit = _interval_transform(x.relu(), self.center, self.half_width)
        steps = 2 ** bits - 1
        return F.round_ste(unit * steps) / steps
