"""Range observers for post-training (static) quantization calibration."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["MinMaxObserver", "MovingAverageMinMaxObserver", "HistogramObserver"]


class MinMaxObserver:
    """Track the global min/max of everything observed."""

    def __init__(self) -> None:
        self.min_val: Optional[float] = None
        self.max_val: Optional[float] = None

    def observe(self, values: np.ndarray) -> None:
        lo = float(values.min())
        hi = float(values.max())
        self.min_val = lo if self.min_val is None else min(self.min_val, lo)
        self.max_val = hi if self.max_val is None else max(self.max_val, hi)

    def range(self) -> Tuple[float, float]:
        if self.min_val is None:
            raise RuntimeError("observer has seen no data")
        return self.min_val, self.max_val


class MovingAverageMinMaxObserver:
    """Exponential-moving-average min/max (robust to outlier batches)."""

    def __init__(self, momentum: float = 0.9) -> None:
        self.momentum = momentum
        self.min_val: Optional[float] = None
        self.max_val: Optional[float] = None

    def observe(self, values: np.ndarray) -> None:
        lo = float(values.min())
        hi = float(values.max())
        if self.min_val is None:
            self.min_val, self.max_val = lo, hi
        else:
            m = self.momentum
            self.min_val = m * self.min_val + (1 - m) * lo
            self.max_val = m * self.max_val + (1 - m) * hi

    def range(self) -> Tuple[float, float]:
        if self.min_val is None:
            raise RuntimeError("observer has seen no data")
        return self.min_val, self.max_val


class HistogramObserver:
    """Accumulate a histogram of observed magnitudes for KL calibration."""

    def __init__(self, n_bins: int = 2048) -> None:
        self.n_bins = n_bins
        self.counts: Optional[np.ndarray] = None
        self.max_abs = 0.0

    def observe(self, values: np.ndarray) -> None:
        abs_vals = np.abs(np.asarray(values, dtype=np.float64)).reshape(-1)
        hi = float(abs_vals.max()) if abs_vals.size else 0.0
        if self.counts is None:
            self.max_abs = max(hi, 1e-12)
            self.counts = np.histogram(
                abs_vals, bins=self.n_bins, range=(0.0, self.max_abs)
            )[0].astype(np.float64)
            return
        if hi > self.max_abs:
            # Re-bin the existing histogram onto the wider range.
            old_edges = np.linspace(0.0, self.max_abs, self.n_bins + 1)
            centers = (old_edges[:-1] + old_edges[1:]) / 2.0
            self.max_abs = hi
            new_counts = np.histogram(
                centers, bins=self.n_bins, range=(0.0, self.max_abs),
                weights=self.counts,
            )[0]
            self.counts = new_counts
        self.counts += np.histogram(
            abs_vals, bins=self.n_bins, range=(0.0, self.max_abs)
        )[0]

    def histogram(self) -> Tuple[np.ndarray, float]:
        """Return ``(counts, max_abs)``; raises if nothing observed."""
        if self.counts is None:
            raise RuntimeError("observer has seen no data")
        return self.counts, self.max_abs
