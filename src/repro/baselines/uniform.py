"""Uniform-precision baseline rows (the non-MP lines of Table II).

Each baseline framework in Table II (DoReFa, PACT, PACT-SAWB, LQ-Nets,
QIL/LSQ) quantizes every middle layer to the same ``W/A`` precision while
keeping the first and last layers at full precision.  This module runs
that recipe for any registered policy and returns a row matching the
table's columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..nn.data import DataLoader
from ..nn.modules import Module
from ..quantization.qmodules import quantize_model
from .oneshot import OneShotConfig, OneShotResult, edge_aware_config, one_shot_quantize

__all__ = ["TableRow", "uniform_quantize"]


@dataclass(frozen=True)
class TableRow:
    """One line of a Table II-style comparison."""

    framework: str
    baseline_top1: float
    bits: str              # "3/3" or "MP"
    first_last: str        # "32/32" or "MP"
    quantized_top1: float
    compression: float
    degradation: float

    def formatted(self) -> str:
        return (
            f"{self.framework:<18} {self.baseline_top1*100:7.2f} "
            f"{self.bits:>6} {self.first_last:>8} "
            f"{self.quantized_top1*100:9.2f} {self.compression:9.2f}x "
            f"{self.degradation*100:8.2f}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'Framework':<18} {'Base%':>7} {'Bits':>6} {'1st/last':>8} "
            f"{'Quant%':>9} {'Compr':>10} {'Degr%':>8}"
        )


def uniform_quantize(
    model: Module,
    train_loader: DataLoader,
    val_loader: DataLoader,
    policy: str,
    bits: int,
    baseline_accuracy: float,
    first_last_fp: bool = True,
    config: Optional[OneShotConfig] = None,
    framework_name: Optional[str] = None,
) -> "tuple[TableRow, OneShotResult]":
    """Run one uniform-precision baseline and format it as a table row."""
    quantize_model(model, policy)
    edge = None if first_last_fp else bits
    bit_config = edge_aware_config(
        model, middle_bits=bits, first_bits=edge, last_bits=edge
    )
    result = one_shot_quantize(
        model, train_loader, val_loader, bit_config, policy=None, config=config
    )
    row = TableRow(
        framework=framework_name or policy,
        baseline_top1=baseline_accuracy,
        bits=f"{bits}/{bits}",
        first_last="32/32" if first_last_fp else f"{bits}/{bits}",
        quantized_top1=result.final.accuracy,
        compression=result.compression,
        degradation=baseline_accuracy - result.final.accuracy,
    )
    return row, result
