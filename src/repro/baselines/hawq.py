"""HAWQ-style Hessian-aware mixed-precision baseline (Dong et al., 2019).

HAWQ ranks layers by second-order sensitivity — the dominant Hessian
eigenvalue / trace of each layer's block — and gives sensitive layers more
bits.  Our autograd is first-order only, so the Hessian-vector products
are formed by **finite differences of gradients** (a standard Hutchinson
estimator):

    H_m v  ≈  (g_m(w + eps v) - g_m(w)) / eps,   v ~ Rademacher
    trace(H_m)  ≈  E_v [ v . H_m v ]

which preserves the layer *ordering* HAWQ actually uses (DESIGN.md lists
this as an explicit substitution).  Bits are then assigned by greedily
upgrading the layer with the largest sensitivity-per-parameter gain until
a model-size budget is met, and the network is fine-tuned one-shot style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.data import DataLoader
from ..nn.modules import Module
from ..nn.tensor import Tensor
from ..quantization.qmodules import QuantModule, quantized_layers
from .oneshot import OneShotConfig, OneShotResult, one_shot_quantize

__all__ = [
    "LayerSensitivity",
    "estimate_layer_sensitivities",
    "assign_bits_by_sensitivity",
    "hawq_quantize",
]


@dataclass(frozen=True)
class LayerSensitivity:
    """Hessian-trace estimate for one layer."""

    name: str
    n_params: int
    trace: float

    @property
    def mean_curvature(self) -> float:
        """Trace normalized by parameter count (HAWQ's ranking quantity)."""
        return self.trace / max(self.n_params, 1)


def _layer_gradient(
    model: Module,
    layer: QuantModule,
    images: np.ndarray,
    targets: np.ndarray,
) -> np.ndarray:
    """Gradient of the batch loss w.r.t. one layer's weights."""
    model.zero_grad()
    loss = F.cross_entropy(model(Tensor(images)), targets)
    loss.backward()
    grad = layer.weight.grad
    if grad is None:
        raise RuntimeError("layer received no gradient")
    return grad.copy()


def estimate_layer_sensitivities(
    model: Module,
    loader: DataLoader,
    n_probes: int = 2,
    n_batches: int = 1,
    eps: float = 1e-3,
    seed: int = 0,
) -> List[LayerSensitivity]:
    """Hutchinson trace estimates for every quantized layer.

    For each probe, a Rademacher direction perturbs one layer's weights
    and the induced gradient change approximates ``H v``.
    """
    rng = np.random.default_rng(seed)
    layers = quantized_layers(model)
    was_training = model.training
    model.train()
    estimates: Dict[str, List[float]] = {name: [] for name, _ in layers}
    batches = []
    for i, batch in enumerate(loader):
        if i >= n_batches:
            break
        batches.append(batch)
    if not batches:
        raise RuntimeError("loader produced no batches")

    for images, targets in batches:
        for name, layer in layers:
            base_grad = _layer_gradient(model, layer, images, targets)
            for _ in range(n_probes):
                v = rng.choice([-1.0, 1.0], size=layer.weight.shape)
                original = layer.weight.data.copy()
                layer.weight.data += eps * v
                try:
                    pert_grad = _layer_gradient(model, layer, images, targets)
                finally:
                    layer.weight.data[...] = original
                hv = (pert_grad - base_grad) / eps
                estimates[name].append(float((v * hv).sum()))
    if was_training:
        model.train()
    else:
        model.eval()
    return [
        LayerSensitivity(
            name=name,
            n_params=layer.weight.size,
            trace=float(np.mean(estimates[name])),
        )
        for name, layer in layers
    ]


def assign_bits_by_sensitivity(
    sensitivities: Sequence[LayerSensitivity],
    bit_menu: Sequence[int] = (2, 3, 4, 8),
    target_compression: float = 8.0,
) -> Dict[str, Tuple[int, int]]:
    """Greedy HAWQ-style bit assignment under a size budget.

    Everything starts at the lowest menu precision; the layer with the
    highest positive mean curvature is repeatedly upgraded one menu step
    while the model still satisfies ``target_compression``.
    """
    menu = sorted(bit_menu)
    if not menu:
        raise ValueError("empty bit menu")
    total_params = sum(s.n_params for s in sensitivities)
    budget_bits = total_params * 32.0 / target_compression

    assignment = {s.name: 0 for s in sensitivities}  # menu indices
    # Upgrade order: most curved (sensitive) layers first; ties by
    # smallest parameter count (cheap upgrades first).
    order = sorted(
        sensitivities,
        key=lambda s: (-max(s.mean_curvature, 0.0), s.n_params),
    )

    def current_size() -> float:
        by_name = {s.name: s for s in sensitivities}
        return sum(
            by_name[name].n_params * menu[idx]
            for name, idx in assignment.items()
        )

    upgraded = True
    while upgraded:
        upgraded = False
        for s in order:
            idx = assignment[s.name]
            if idx + 1 >= len(menu):
                continue
            step_cost = s.n_params * (menu[idx + 1] - menu[idx])
            if current_size() + step_cost <= budget_bits:
                assignment[s.name] = idx + 1
                upgraded = True
    return {
        name: (menu[idx], menu[idx]) for name, idx in assignment.items()
    }


def hawq_quantize(
    model: Module,
    train_loader: DataLoader,
    val_loader: DataLoader,
    policy: str = "pact",
    bit_menu: Sequence[int] = (2, 3, 4, 8),
    target_compression: float = 8.0,
    config: Optional[OneShotConfig] = None,
    n_probes: int = 2,
    seed: int = 0,
) -> OneShotResult:
    """Full HAWQ-proxy pipeline: sensitivity -> bit assignment -> fine-tune.

    ``model`` must be a pretrained float network; it is converted with
    ``policy`` before the sensitivity pass so the layer set matches what
    will be quantized.
    """
    from ..quantization.qmodules import quantize_model

    quantize_model(model, policy)
    sensitivities = estimate_layer_sensitivities(
        model, train_loader, n_probes=n_probes, seed=seed
    )
    bit_config = assign_bits_by_sensitivity(
        sensitivities, bit_menu=bit_menu, target_compression=target_compression
    )
    return one_shot_quantize(
        model, train_loader, val_loader, bit_config, policy=None, config=config
    )
