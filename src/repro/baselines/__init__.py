"""``repro.baselines`` — the comparison points of Tables I and II.

* :func:`pretrain` — the shared full-precision starting checkpoint.
* :func:`one_shot_quantize` — conventional QAT: jump to the target bit
  configuration at once, then fine-tune (Table I's "one-shot" rows).
* :func:`uniform_quantize` — uniform-precision rows with fp first/last
  (the DoReFa/PACT/SAWB/LQ-Nets/QIL lines of Table II).
* :func:`hawq_quantize` — Hessian-sensitivity mixed-precision assignment
  (the HAWQ lines of Table II), built on a finite-difference Hutchinson
  trace estimator.
"""

from .haq import HAQConfig, HAQEpisode, HAQResult, haq_search
from .hawq import (
    LayerSensitivity,
    assign_bits_by_sensitivity,
    estimate_layer_sensitivities,
    hawq_quantize,
)
from .oneshot import (
    OneShotConfig,
    OneShotResult,
    edge_aware_config,
    one_shot_quantize,
)
from .pretrain import PretrainConfig, PretrainResult, pretrain
from .uniform import TableRow, uniform_quantize

__all__ = [
    "pretrain",
    "PretrainConfig",
    "PretrainResult",
    "one_shot_quantize",
    "OneShotConfig",
    "OneShotResult",
    "edge_aware_config",
    "uniform_quantize",
    "TableRow",
    "hawq_quantize",
    "haq_search",
    "HAQConfig",
    "HAQEpisode",
    "HAQResult",
    "estimate_layer_sensitivities",
    "assign_bits_by_sensitivity",
    "LayerSensitivity",
]
