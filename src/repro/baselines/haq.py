"""HAQ-style reinforcement-learning bit search (Wang et al., CVPR 2019).

HAQ searches per-layer bit widths with an RL agent trained on quantize →
fine-tune → reward episodes under a resource constraint.  We implement
the search as REINFORCE with a running baseline over per-layer categorical
bit choices (HAQ's DDPG actor reduces to this on a discrete menu), with
HAQ's constrained action remapping: configurations over the size budget
are repaired by greedily demoting the largest layers until the budget
holds.

The paper under reproduction argues that "the exploration phase for the
agent is vast and can take a significantly long time" compared to CCQ's
feed-forward probes; ``benchmarks/bench_ablation_search_cost.py`` uses
this implementation to measure exactly that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.data import DataLoader
from ..nn.modules import Module
from ..core.compression import model_size_report
from ..core.training import evaluate, make_sgd, train_epoch
from ..quantization.qmodules import quantized_layers, set_bit_config

__all__ = ["HAQConfig", "HAQEpisode", "HAQResult", "haq_search"]

BitPair = Tuple[Optional[int], Optional[int]]


@dataclass(frozen=True)
class HAQConfig:
    """Search budget and agent hyper-parameters."""

    episodes: int = 8
    finetune_epochs: int = 1
    bit_menu: Tuple[int, ...] = (2, 3, 4, 8)
    target_compression: float = 8.0
    policy_lr: float = 0.5
    temperature: float = 1.0
    seed: int = 0
    max_batches_per_epoch: Optional[int] = None


@dataclass
class HAQEpisode:
    """One rollout of the agent."""

    bit_config: Dict[str, BitPair]
    accuracy: float
    compression: float
    reward: float


@dataclass
class HAQResult:
    """Search outcome and cost accounting."""

    best: HAQEpisode
    episodes: List[HAQEpisode] = field(default_factory=list)
    finetune_epochs_spent: int = 0

    @property
    def search_cost_epochs(self) -> int:
        """Total fine-tuning epochs burned by the search."""
        return self.finetune_epochs_spent


def _repair_to_budget(
    choice: np.ndarray,
    sizes: np.ndarray,
    menu: Sequence[int],
    budget_bits: float,
) -> np.ndarray:
    """HAQ's constrained remapping: demote biggest layers until in budget."""
    choice = choice.copy()
    menu_arr = np.asarray(menu)

    def total() -> float:
        return float((sizes * menu_arr[choice]).sum())

    while total() > budget_bits:
        # Demote the layer with the largest current storage that can
        # still go down a menu step.
        storage = sizes * menu_arr[choice]
        order = np.argsort(-storage)
        for idx in order:
            if choice[idx] > 0:
                choice[idx] -= 1
                break
        else:
            break  # everything at the menu floor; cannot repair further
    return choice


def haq_search(
    make_pretrained: Callable[[], Module],
    train_loader: DataLoader,
    val_loader: DataLoader,
    config: Optional[HAQConfig] = None,
) -> HAQResult:
    """Run the RL bit search.

    ``make_pretrained`` must return a *quantized* (converted) model loaded
    with the pretrained float checkpoint; each episode consumes a fresh
    copy so fine-tuning never leaks across rollouts.
    """
    config = config or HAQConfig()
    rng = np.random.default_rng(config.seed)
    menu = sorted(config.bit_menu)

    probe_model = make_pretrained()
    layers = quantized_layers(probe_model)
    if not layers:
        raise ValueError("make_pretrained() must return a quantized model")
    names = [name for name, _ in layers]
    sizes = np.asarray([layer.weight.size for _, layer in layers], float)
    budget_bits = sizes.sum() * 32.0 / config.target_compression

    # Per-layer categorical policy over the menu (REINFORCE).
    logits = np.zeros((len(names), len(menu)))
    reward_baseline = 0.0
    episodes: List[HAQEpisode] = []
    epochs_spent = 0

    for episode_index in range(config.episodes):
        probs = np.exp(logits / config.temperature)
        probs /= probs.sum(axis=1, keepdims=True)
        choice = np.array(
            [rng.choice(len(menu), p=p) for p in probs], dtype=int
        )
        choice = _repair_to_budget(choice, sizes, menu, budget_bits)

        bit_config: Dict[str, BitPair] = {
            name: (menu[c], menu[c]) for name, c in zip(names, choice)
        }
        model = make_pretrained()
        set_bit_config(model, bit_config)
        optimizer = make_sgd(model, lr=0.02)
        for _ in range(config.finetune_epochs):
            train_epoch(
                model, train_loader, optimizer,
                max_batches=config.max_batches_per_epoch,
            )
            epochs_spent += 1
        result = evaluate(model, val_loader)
        compression = model_size_report(model).compression
        reward = result.accuracy

        episodes.append(
            HAQEpisode(
                bit_config=bit_config,
                accuracy=result.accuracy,
                compression=compression,
                reward=reward,
            )
        )

        # REINFORCE with a running mean baseline.
        advantage = reward - reward_baseline
        reward_baseline += 0.3 * advantage
        for row, (p, c) in enumerate(zip(probs, choice)):
            grad = -p
            grad[c] += 1.0
            logits[row] += config.policy_lr * advantage * grad

    best = max(episodes, key=lambda e: e.accuracy)
    return HAQResult(
        best=best, episodes=episodes, finetune_epochs_spent=epochs_spent
    )
