"""One-shot quantization baseline (Table I's comparison point).

"One-shot" is the paper's name for the conventional QAT recipe: take a
pretrained full-precision network, drop every layer to its target bit
configuration *at once*, then fine-tune.  CCQ reaches the identical final
configuration *gradually* and recovers between steps; Table I shows the
gradual path ends at a better optimum for every policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..nn.data import DataLoader
from ..nn.modules import Module
from ..quantization.policy import QuantPolicy
from ..quantization.qmodules import quantize_model, quantized_layers
from ..core.compression import model_size_report
from ..core.training import EvalResult, evaluate, make_sgd, train_epoch

__all__ = ["OneShotConfig", "OneShotResult", "one_shot_quantize", "edge_aware_config"]

BitPair = Tuple[Optional[int], Optional[int]]


def edge_aware_config(
    model: Module,
    middle_bits: Optional[int],
    first_bits: Optional[int] = None,
    last_bits: Optional[int] = None,
) -> Dict[str, BitPair]:
    """Bit configuration with distinct first/last-layer precision.

    ``None`` keeps a layer at full precision — ``edge_aware_config(m, 3)``
    is the classic ``fp-3b-fp`` pattern of DoReFa/WRPN/PACT papers.
    The model must already contain quantized layers.
    """
    layers = quantized_layers(model)
    if not layers:
        raise ValueError("model has no quantized layers")
    config: Dict[str, BitPair] = {}
    last_index = len(layers) - 1
    for i, (name, _) in enumerate(layers):
        if i == 0:
            bits = first_bits
        elif i == last_index:
            bits = last_bits
        else:
            bits = middle_bits
        config[name] = (bits, bits)
    return config


@dataclass(frozen=True)
class OneShotConfig:
    """Fine-tuning recipe after the single quantization jump."""

    epochs: int = 5
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 0.0
    max_batches_per_epoch: Optional[int] = None


@dataclass
class OneShotResult:
    """Outcome of a one-shot quantization run."""

    final: EvalResult
    post_quant: EvalResult          # right after the jump, before tuning
    compression: float
    bit_config: Dict[str, BitPair]
    accuracy_history: List[float] = field(default_factory=list)


def one_shot_quantize(
    model: Module,
    train_loader: DataLoader,
    val_loader: DataLoader,
    bit_config: Dict[str, BitPair],
    policy: "QuantPolicy | str | None" = None,
    config: Optional[OneShotConfig] = None,
) -> OneShotResult:
    """Quantize to ``bit_config`` in one step, then fine-tune.

    ``bit_config`` maps layer names to ``(w_bits, a_bits)`` pairs, with
    ``None`` meaning full precision.
    """
    config = config or OneShotConfig()
    if policy is not None:
        quantize_model(model, policy)
    layers = dict(quantized_layers(model))
    for name, (w_bits, a_bits) in bit_config.items():
        if name not in layers:
            raise KeyError(f"no quantized layer named {name!r}")
        layers[name].w_bits = w_bits
        layers[name].a_bits = a_bits

    post_quant = evaluate(model, val_loader)
    optimizer = make_sgd(
        model,
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    history: List[float] = []
    for _ in range(config.epochs):
        train_epoch(
            model, train_loader, optimizer,
            max_batches=config.max_batches_per_epoch,
        )
        history.append(evaluate(model, val_loader).accuracy)
    return OneShotResult(
        final=evaluate(model, val_loader),
        post_quant=post_quant,
        compression=model_size_report(model).compression,
        bit_config=dict(bit_config),
        accuracy_history=history,
    )
