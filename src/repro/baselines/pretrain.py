"""Full-precision pretraining — the common starting point of every run.

Every experiment in the paper begins from a trained full-precision
baseline whose top-1 accuracy anchors the "degradation" column of
Table II.  This module provides that trainer with the usual SGD +
step-decay recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..nn.data import DataLoader
from ..nn.modules import Module
from ..nn.schedule import StepLR
from ..core.training import EvalResult, evaluate, make_sgd, train_epoch

__all__ = ["PretrainConfig", "PretrainResult", "pretrain"]


@dataclass(frozen=True)
class PretrainConfig:
    """Hyper-parameters of the float pretraining run."""

    epochs: int = 10
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_step: int = 6            # StepLR decay point
    lr_gamma: float = 0.1
    max_batches_per_epoch: Optional[int] = None


@dataclass
class PretrainResult:
    """Baseline accuracy and per-epoch history."""

    final: EvalResult
    accuracy_history: List[float] = field(default_factory=list)
    loss_history: List[float] = field(default_factory=list)

    @property
    def baseline_accuracy(self) -> float:
        return self.final.accuracy


def pretrain(
    model: Module,
    train_loader: DataLoader,
    val_loader: DataLoader,
    config: Optional[PretrainConfig] = None,
) -> PretrainResult:
    """Train ``model`` at full precision and report the baseline."""
    config = config or PretrainConfig()
    optimizer = make_sgd(
        model,
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        include_quantizer_params=False,
    )
    scheduler = StepLR(optimizer, step_size=config.lr_step, gamma=config.lr_gamma)
    accs: List[float] = []
    losses: List[float] = []
    for _ in range(config.epochs):
        loss = train_epoch(
            model, train_loader, optimizer,
            max_batches=config.max_batches_per_epoch,
        )
        result = evaluate(model, val_loader)
        losses.append(loss)
        accs.append(result.accuracy)
        scheduler.step(metric=result.accuracy)
    return PretrainResult(
        final=evaluate(model, val_loader),
        accuracy_history=accs,
        loss_history=losses,
    )
