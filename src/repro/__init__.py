"""repro — Competitive-Collaborative Quantization (CCQ, DAC 2020).

A full-stack reproduction of *"Learning to Quantize Deep Neural Networks:
A Competitive-Collaborative Approach"*: an accuracy-driven, policy-
agnostic, mixed-precision quantization framework, together with every
substrate it needs — a numpy deep-learning framework (``repro.nn``),
ResNet architectures (``repro.models``), the quantization-policy zoo
(``repro.quantization``), baselines (``repro.baselines``), a MAC power
model (``repro.hardware``) and synthetic datasets (``repro.datasets``).

Quickstart::

    from repro import models, datasets
    from repro.core import CCQQuantizer, CCQConfig
    from repro.nn.data import DataLoader

    splits = datasets.make_synthetic_cifar10(image_size=16)
    net = models.resnet20(width_mult=0.5)
    ccq = CCQQuantizer(
        net,
        DataLoader(splits.train, batch_size=64, shuffle=True),
        DataLoader(splits.val, batch_size=128),
        policy="pact",
    )
    result = ccq.run()
    print(result.bit_config, result.compression)
"""

from . import baselines, core, datasets, experiments, hardware, models, nn, quantization, utils

__version__ = "0.1.0"

__all__ = [
    "baselines",
    "core",
    "datasets",
    "hardware",
    "models",
    "nn",
    "quantization",
    "experiments",
    "utils",
    "__version__",
]
