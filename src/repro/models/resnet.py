"""ResNet architectures used throughout the paper's evaluation.

Two families are provided, matching He et al. (2016):

* **CIFAR-style** (:func:`resnet20` / 32 / 44 / 56): a 3x3 stem into three
  stages of ``n`` basic blocks at 16/32/64 channels.
* **ImageNet-style** (:func:`resnet18` / 34 / 50): a 7x7/2 stem + max-pool
  into four stages at 64..512 channels with basic (18/34) or bottleneck
  (50) blocks.

Because the reproduction substitutes a scaled synthetic dataset for
ImageNet (see DESIGN.md), every constructor accepts ``width_mult`` (shrinks
all channel counts) and ``small_input`` (swaps the 7x7/2 + max-pool stem
for a CIFAR-style 3x3/1 stem) so the full topology — including the strongly
size-skewed layer spectrum that drives the paper's memory-aware λ knob —
can be trained on CPU at low resolution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = [
    "BasicBlock",
    "Bottleneck",
    "ResNet",
    "CifarResNet",
    "resnet20",
    "resnet32",
    "resnet44",
    "resnet56",
    "resnet18",
    "resnet34",
    "resnet50",
]


def _channels(base: int, width_mult: float) -> int:
    """Scale a channel count, never dropping below 4."""
    return max(4, int(round(base * width_mult)))


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with an identity (or projection) shortcut."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1,
            bias=False, rng=rng,
        )
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(
            out_channels, out_channels, 3, padding=1, bias=False, rng=rng
        )
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(
                    in_channels, out_channels, 1, stride=stride,
                    bias=False, rng=rng,
                ),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class Bottleneck(nn.Module):
    """1x1 -> 3x3 -> 1x1 bottleneck block with 4x expansion (ResNet-50)."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        width: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        out_channels = width * self.expansion
        self.conv1 = nn.Conv2d(in_channels, width, 1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(width)
        self.conv2 = nn.Conv2d(
            width, width, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn2 = nn.BatchNorm2d(width)
        self.conv3 = nn.Conv2d(width, out_channels, 1, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(
                    in_channels, out_channels, 1, stride=stride,
                    bias=False, rng=rng,
                ),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        return (out + self.shortcut(x)).relu()


class CifarResNet(nn.Module):
    """CIFAR-style ResNet: 3 stages of ``n`` basic blocks (depth = 6n + 2)."""

    def __init__(
        self,
        num_blocks: int,
        num_classes: int = 10,
        width_mult: float = 1.0,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        widths = [_channels(c, width_mult) for c in (16, 32, 64)]
        self.conv1 = nn.Conv2d(
            in_channels, widths[0], 3, padding=1, bias=False, rng=rng
        )
        self.bn1 = nn.BatchNorm2d(widths[0])
        self.layer1 = self._make_stage(widths[0], widths[0], num_blocks, 1, rng)
        self.layer2 = self._make_stage(widths[0], widths[1], num_blocks, 2, rng)
        self.layer3 = self._make_stage(widths[1], widths[2], num_blocks, 2, rng)
        self.fc = nn.Linear(widths[2], num_classes, rng=rng)

    @staticmethod
    def _make_stage(
        in_channels: int,
        out_channels: int,
        num_blocks: int,
        stride: int,
        rng: np.random.Generator,
    ) -> nn.Sequential:
        blocks: List[nn.Module] = []
        for i in range(num_blocks):
            blocks.append(
                BasicBlock(
                    in_channels if i == 0 else out_channels,
                    out_channels,
                    stride=stride if i == 0 else 1,
                    rng=rng,
                )
            )
        return nn.Sequential(*blocks)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        out = F.global_avg_pool2d(out)
        return self.fc(out)


class ResNet(nn.Module):
    """ImageNet-style ResNet with basic or bottleneck blocks."""

    def __init__(
        self,
        block: type,
        stage_blocks: Sequence[int],
        num_classes: int = 1000,
        width_mult: float = 1.0,
        small_input: bool = False,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        widths = [_channels(c, width_mult) for c in (64, 128, 256, 512)]
        self.small_input = small_input
        if small_input:
            self.conv1 = nn.Conv2d(
                in_channels, widths[0], 3, padding=1, bias=False, rng=rng
            )
            self.maxpool = nn.Identity()
        else:
            self.conv1 = nn.Conv2d(
                in_channels, widths[0], 7, stride=2, padding=3,
                bias=False, rng=rng,
            )
            self.maxpool = nn.MaxPool2d(3, stride=2, padding=1)
        self.bn1 = nn.BatchNorm2d(widths[0])

        strides = [1, 2, 2, 2]
        in_c = widths[0]
        for stage, (n_blocks, width, stride) in enumerate(
            zip(stage_blocks, widths, strides), start=1
        ):
            blocks: List[nn.Module] = []
            for i in range(n_blocks):
                blocks.append(
                    block(in_c, width, stride=stride if i == 0 else 1, rng=rng)
                )
                in_c = width * block.expansion
            self.add_module(f"layer{stage}", nn.Sequential(*blocks))
        self.fc = nn.Linear(in_c, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.maxpool(out)
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        out = self.layer4(out)
        out = F.global_avg_pool2d(out)
        return self.fc(out)


def resnet20(num_classes: int = 10, **kwargs) -> CifarResNet:
    """ResNet-20 for CIFAR-sized inputs (the paper's CIFAR10 network)."""
    return CifarResNet(3, num_classes=num_classes, **kwargs)


def resnet32(num_classes: int = 10, **kwargs) -> CifarResNet:
    """ResNet-32 for CIFAR-sized inputs."""
    return CifarResNet(5, num_classes=num_classes, **kwargs)


def resnet44(num_classes: int = 10, **kwargs) -> CifarResNet:
    """ResNet-44 for CIFAR-sized inputs."""
    return CifarResNet(7, num_classes=num_classes, **kwargs)


def resnet56(num_classes: int = 10, **kwargs) -> CifarResNet:
    """ResNet-56 for CIFAR-sized inputs."""
    return CifarResNet(9, num_classes=num_classes, **kwargs)


def resnet18(num_classes: int = 1000, **kwargs) -> ResNet:
    """ResNet-18 (basic blocks, [2, 2, 2, 2])."""
    return ResNet(BasicBlock, [2, 2, 2, 2], num_classes=num_classes, **kwargs)


def resnet34(num_classes: int = 1000, **kwargs) -> ResNet:
    """ResNet-34 (basic blocks, [3, 4, 6, 3])."""
    return ResNet(BasicBlock, [3, 4, 6, 3], num_classes=num_classes, **kwargs)


def resnet50(num_classes: int = 1000, **kwargs) -> ResNet:
    """ResNet-50 (bottleneck blocks, [3, 4, 6, 3])."""
    return ResNet(Bottleneck, [3, 4, 6, 3], num_classes=num_classes, **kwargs)
