"""Small reference networks for tests, examples and fast CCQ smoke runs."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["MLP", "SmallConvNet", "LeNet"]


class MLP(nn.Module):
    """Fully-connected classifier over flattened inputs."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        dims = [in_features, *hidden]
        layers = []
        for a, b in zip(dims[:-1], dims[1:]):
            layers.append(nn.Linear(a, b, rng=rng))
            layers.append(nn.ReLU())
        layers.append(nn.Linear(dims[-1], num_classes, rng=rng))
        self.body = nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x.flatten(start_dim=1))


class SmallConvNet(nn.Module):
    """Three-conv classifier: quick to train, still has first/mid/last layers.

    Handy for CCQ smoke tests — it exposes exactly the structural features
    the paper's algorithm cares about (a first layer, differently-sized
    middle layers and a last linear layer) at a tiny compute cost.
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        width: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = nn.Conv2d(in_channels, width, 3, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(width)
        self.conv2 = nn.Conv2d(width, 2 * width, 3, stride=2, padding=1,
                               bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(2 * width)
        self.conv3 = nn.Conv2d(2 * width, 4 * width, 3, stride=2, padding=1,
                               bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(4 * width)
        self.fc = nn.Linear(4 * width, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out)).relu()
        out = F.global_avg_pool2d(out)
        return self.fc(out)


class LeNet(nn.Module):
    """LeNet-5-style network for 32x32 inputs."""

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = nn.Conv2d(in_channels, 6, 5, rng=rng)
        self.conv2 = nn.Conv2d(6, 16, 5, rng=rng)
        self.fc1 = nn.Linear(16 * 5 * 5, 120, rng=rng)
        self.fc2 = nn.Linear(120, 84, rng=rng)
        self.fc3 = nn.Linear(84, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = F.max_pool2d(self.conv1(x).relu(), 2)
        out = F.max_pool2d(self.conv2(out).relu(), 2)
        out = out.flatten(start_dim=1)
        out = self.fc1(out).relu()
        out = self.fc2(out).relu()
        return self.fc3(out)
