"""``repro.models`` — the network architectures used in the paper."""

from .resnet import (
    BasicBlock,
    Bottleneck,
    CifarResNet,
    ResNet,
    resnet18,
    resnet20,
    resnet32,
    resnet34,
    resnet44,
    resnet50,
    resnet56,
)
from .small import MLP, LeNet, SmallConvNet

__all__ = [
    "BasicBlock",
    "Bottleneck",
    "CifarResNet",
    "ResNet",
    "resnet18",
    "resnet20",
    "resnet32",
    "resnet34",
    "resnet44",
    "resnet50",
    "resnet56",
    "MLP",
    "LeNet",
    "SmallConvNet",
]
