"""Synthetic image-classification datasets standing in for CIFAR10/ImageNet.

The environment has no network access and no dataset files, so the paper's
CIFAR10 and ImageNet workloads are substituted with deterministic synthetic
tasks (see DESIGN.md).  The generator produces class-conditional images
that share the properties the CCQ experiments actually depend on:

* a convolutional network can learn the task well but not instantly
  (per-class smooth spatial templates + within-class geometric jitter
  + additive noise keep validation accuracy below the ceiling until the
  network has trained for a while);
* quantizing the network *hurts* measurably and fine-tuning *recovers*
  the loss, giving the valley/peak learning curves of Fig. 2;
* different layers matter differently, so the competition has a real
  signal to learn from.

Images are standardized to roughly zero mean / unit variance, matching the
normalized-input regime the first layer's signed quantizer expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

from ..nn.data import ArrayDataset, Compose, RandomCrop, RandomHorizontalFlip

__all__ = [
    "SyntheticImageConfig",
    "generate_class_templates",
    "generate_dataset",
    "SyntheticSplits",
    "make_synthetic_cifar10",
    "make_synthetic_imagenet",
]


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Generator parameters for a synthetic classification task."""

    n_classes: int = 10
    image_size: int = 32
    channels: int = 3
    templates_per_class: int = 2
    smoothness: float = 1.5     # Gaussian-filter sigma for the templates
    max_shift: int = 5          # within-class translation jitter (pixels)
    noise_std: float = 1.5      # additive Gaussian noise after mixing
    amplitude_jitter: float = 0.4
    seed: int = 0


def generate_class_templates(config: SyntheticImageConfig) -> np.ndarray:
    """Smooth random spatial templates, ``(classes, T, C, H, W)``.

    Templates are white noise low-passed with a Gaussian filter, then
    standardized; smoothness controls how "image-like" (spatially
    correlated) the class evidence is.
    """
    rng = np.random.default_rng(config.seed)
    shape = (
        config.n_classes,
        config.templates_per_class,
        config.channels,
        config.image_size,
        config.image_size,
    )
    raw = rng.normal(size=shape)
    smooth = ndimage.gaussian_filter(
        raw, sigma=(0, 0, 0, config.smoothness, config.smoothness)
    )
    std = smooth.std(axis=(-1, -2), keepdims=True)
    return smooth / np.maximum(std, 1e-8)


def generate_dataset(
    config: SyntheticImageConfig,
    n_samples: int,
    split_seed: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``(images, labels)`` from the class-conditional generator.

    Each sample mixes its class's templates with jittered amplitudes,
    applies a random circular shift (translation invariance pressure) and
    adds pixel noise.
    """
    templates = generate_class_templates(config)
    rng = np.random.default_rng(split_seed)
    labels = rng.integers(0, config.n_classes, size=n_samples)
    images = np.empty(
        (n_samples, config.channels, config.image_size, config.image_size)
    )
    t_count = config.templates_per_class
    for i, label in enumerate(labels):
        weights = 1.0 + config.amplitude_jitter * rng.normal(size=t_count)
        mixed = np.tensordot(weights, templates[label], axes=(0, 0))
        if config.max_shift:
            dx = int(rng.integers(-config.max_shift, config.max_shift + 1))
            dy = int(rng.integers(-config.max_shift, config.max_shift + 1))
            mixed = np.roll(mixed, (dy, dx), axis=(1, 2))
        noise = config.noise_std * rng.normal(size=mixed.shape)
        images[i] = mixed + noise
    # Global standardization (the usual normalize transform).
    images -= images.mean()
    images /= images.std()
    return images, labels.astype(np.int64)


@dataclass
class SyntheticSplits:
    """Train / validation / test splits of one synthetic task."""

    train: ArrayDataset
    val: ArrayDataset
    test: ArrayDataset
    config: SyntheticImageConfig = field(
        default_factory=SyntheticImageConfig
    )

    @property
    def n_classes(self) -> int:
        return self.config.n_classes

    @property
    def image_size(self) -> int:
        return self.config.image_size


def _make_splits(
    config: SyntheticImageConfig,
    n_train: int,
    n_val: int,
    n_test: int,
    augment: bool,
) -> SyntheticSplits:
    train_x, train_y = generate_dataset(config, n_train, split_seed=1)
    val_x, val_y = generate_dataset(config, n_val, split_seed=2)
    test_x, test_y = generate_dataset(config, n_test, split_seed=3)
    transform = None
    if augment:
        transform = Compose(
            [RandomCrop(config.image_size, padding=2), RandomHorizontalFlip()]
        )
    return SyntheticSplits(
        train=ArrayDataset(train_x, train_y, transform=transform),
        val=ArrayDataset(val_x, val_y),
        test=ArrayDataset(test_x, test_y),
        config=config,
    )


def make_synthetic_cifar10(
    n_train: int = 2000,
    n_val: int = 500,
    n_test: int = 500,
    image_size: int = 32,
    augment: bool = True,
    seed: int = 0,
) -> SyntheticSplits:
    """The CIFAR10 stand-in: 10 classes, 3x32x32 by default."""
    config = SyntheticImageConfig(
        n_classes=10, image_size=image_size, channels=3, seed=seed
    )
    return _make_splits(config, n_train, n_val, n_test, augment)


def make_synthetic_imagenet(
    n_classes: int = 100,
    n_train: int = 4000,
    n_val: int = 1000,
    n_test: int = 1000,
    image_size: int = 32,
    augment: bool = True,
    seed: int = 10,
) -> SyntheticSplits:
    """The ImageNet stand-in: more classes, harder mixing, same machinery.

    The class count and resolution are configurable so experiments can
    scale between CI-speed smoke runs and the fuller `paper` scale.
    """
    config = SyntheticImageConfig(
        n_classes=n_classes,
        image_size=image_size,
        channels=3,
        templates_per_class=3,
        noise_std=1.7,
        seed=seed,
    )
    return _make_splits(config, n_train, n_val, n_test, augment)
