"""``repro.datasets`` — deterministic synthetic stand-ins for CIFAR10/ImageNet."""

from .synthetic import (
    SyntheticImageConfig,
    SyntheticSplits,
    generate_class_templates,
    generate_dataset,
    make_synthetic_cifar10,
    make_synthetic_imagenet,
)

__all__ = [
    "SyntheticImageConfig",
    "SyntheticSplits",
    "generate_class_templates",
    "generate_dataset",
    "make_synthetic_cifar10",
    "make_synthetic_imagenet",
]
