"""Expert-grouping helpers for block-granularity CCQ.

:class:`~repro.core.ccq.CCQQuantizer` accepts a ``groups`` mapping that
coarsens the competition from individual layers to blocks.  This module
derives sensible groupings automatically from a model's module-name
structure — e.g. one expert per residual block of a ResNet — so the
block-level variant (the granularity HAWQ operates at) is one call away.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from ..nn.modules import Module
from ..quantization.qmodules import quantized_layers

__all__ = ["group_by_prefix", "residual_block_groups"]


def group_by_prefix(model: Module, depth: int) -> Dict[str, List[str]]:
    """Group quantized layers by the first ``depth`` name components.

    ``depth=1`` on a ResNet groups per stage (``layer1``, ``layer2``, ...);
    ``depth=2`` groups per residual block (``layer1.0``, ``layer1.1``, ...).
    Layers with fewer name components than ``depth`` (the stem conv, the
    final fc) become singleton groups.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    groups: "OrderedDict[str, List[str]]" = OrderedDict()
    for name, _ in quantized_layers(model):
        parts = name.split(".")
        key = ".".join(parts[:depth]) if len(parts) > depth else name
        groups.setdefault(key, []).append(name)
    return dict(groups)


def residual_block_groups(model: Module) -> Dict[str, List[str]]:
    """One expert per residual block, singletons for stem/head layers.

    This is the granularity the paper's HAWQ comparison point assigns
    precision at ("layers/blocks"), and it cuts the competition's expert
    count roughly 3x on ResNets — fewer probes per step for very deep
    networks.
    """
    return group_by_prefix(model, depth=2)
