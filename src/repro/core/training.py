"""Shared training / evaluation loops.

These are the quantization-aware training primitives used by the CCQ
collaboration stage, the one-shot baselines and the uniform-precision
baselines: a plain SGD epoch over a loader (including quantizer-internal
parameters such as PACT's alpha and the PACT regularization term) and a
no-grad evaluation pass returning loss and top-1 accuracy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn import no_grad
from ..nn.data import DataLoader
from ..nn.modules import Module
from ..nn.optim import SGD, Optimizer
from ..nn.tensor import Tensor
from ..quantization.qmodules import (
    collect_quantizer_parameters,
    collect_regularization,
)
from .resilience import ensure_all_finite, ensure_finite

__all__ = [
    "EvalResult",
    "evaluate",
    "train_epoch",
    "make_sgd",
    "trainable_parameters",
    "accuracy_from_logits",
]


@dataclass(frozen=True)
class EvalResult:
    """Loss and top-1 accuracy over an evaluation set."""

    loss: float
    accuracy: float
    n_samples: int

    def __repr__(self) -> str:
        return (
            f"EvalResult(loss={self.loss:.4f}, "
            f"accuracy={self.accuracy:.4f}, n={self.n_samples})"
        )


def accuracy_from_logits(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the target."""
    return float((logits.argmax(axis=1) == targets).mean())


def evaluate(
    model: Module,
    loader: DataLoader,
    max_batches: Optional[int] = None,
    check_divergence: bool = True,
    telemetry: Optional[object] = None,
) -> EvalResult:
    """Feed-forward evaluation: mean loss and top-1 accuracy.

    This is the cheap operation the CCQ competition leans on — a pure
    forward pass (``no_grad``) over (a subset of) the validation set.
    With ``check_divergence`` (the default) a NaN/Inf batch loss raises
    :class:`~repro.core.resilience.DivergenceError` instead of silently
    poisoning the mean.

    ``telemetry`` (a live :class:`repro.telemetry.Telemetry`) records
    throughput into the ``eval.samples_per_sec`` histogram; the default
    ``None`` adds zero work to the hot path.
    """
    observe = telemetry is not None and getattr(telemetry, "enabled", False)
    t0 = time.perf_counter() if observe else 0.0
    was_training = model.training
    model.eval()
    total_loss = 0.0
    total_correct = 0
    total = 0
    with no_grad():
        for batch_index, (images, targets) in enumerate(loader):
            if max_batches is not None and batch_index >= max_batches:
                break
            logits = model(Tensor(images))
            loss = F.cross_entropy(logits, targets)
            if check_divergence:
                ensure_finite(
                    loss.item(), "validation loss",
                    stage="evaluate", batch_index=batch_index,
                )
            n = len(targets)
            total_loss += loss.item() * n
            total_correct += int(
                (logits.data.argmax(axis=1) == targets).sum()
            )
            total += n
    if was_training:
        model.train()
    if total == 0:
        raise RuntimeError("evaluation loader produced no batches")
    if observe:
        elapsed = time.perf_counter() - t0
        telemetry.histogram("eval.samples_per_sec").observe(
            total / max(elapsed, 1e-9)
        )
        telemetry.counter("eval.samples").inc(total)
    return EvalResult(total_loss / total, total_correct / total, total)


def train_epoch(
    model: Module,
    loader: DataLoader,
    optimizer: Optimizer,
    max_batches: Optional[int] = None,
    check_divergence: bool = True,
    telemetry: Optional[object] = None,
) -> float:
    """One quantization-aware SGD epoch; returns the mean training loss.

    The quantizer regularization (PACT's alpha penalty) is added to the
    task loss when present, so quantizer-internal parameters train jointly
    with the weights — the "collaboration" of all layers.

    With ``check_divergence`` (the default) the epoch raises
    :class:`~repro.core.resilience.DivergenceError` the moment a batch
    loss or any parameter gradient goes NaN/Inf — *before* the optimizer
    applies the poisoned update — so a rollback policy can restore the
    last good snapshot instead of training on garbage.

    ``telemetry`` (a live :class:`repro.telemetry.Telemetry`) records
    ``train.samples_per_sec`` and the current learning rate.
    """
    observe = telemetry is not None and getattr(telemetry, "enabled", False)
    t0 = time.perf_counter() if observe else 0.0
    n_samples = 0
    model.train()
    losses: List[float] = []
    for batch_index, (images, targets) in enumerate(loader):
        if max_batches is not None and batch_index >= max_batches:
            break
        n_samples += len(targets)
        optimizer.zero_grad()
        logits = model(Tensor(images))
        loss = F.cross_entropy(logits, targets)
        reg = collect_regularization(model)
        total = loss if reg is None else loss + reg
        if check_divergence:
            ensure_finite(
                total.item(), "training loss",
                stage="train", batch_index=batch_index,
            )
        total.backward()
        if check_divergence:
            for p in optimizer.params:
                if p.grad is not None:
                    ensure_all_finite(
                        p.grad, "parameter gradient",
                        stage="train", batch_index=batch_index,
                    )
        optimizer.step()
        losses.append(loss.item())
    if not losses:
        raise RuntimeError("training loader produced no batches")
    if observe:
        elapsed = time.perf_counter() - t0
        telemetry.histogram("train.samples_per_sec").observe(
            n_samples / max(elapsed, 1e-9)
        )
        telemetry.counter("train.samples").inc(n_samples)
        telemetry.gauge("train.lr").set(optimizer.lr)
    return float(np.mean(losses))


def trainable_parameters(
    model: Module, include_quantizer_params: bool = True
) -> List[Tensor]:
    """The canonical ordered list of everything SGD trains.

    Model parameters in module-tree order, plus (optionally) quantizer
    parameters that were attached without registration.  The order is a
    pure function of the module tree, so a forked worker replica
    enumerates exactly the same list as the parent — which is what lets
    the data-parallel recovery trainer (:mod:`repro.parallel.ddp`) ship
    gradients positionally.
    """
    params = list(model.parameters())
    if include_quantizer_params:
        seen = {id(p) for p in params}
        for extra in collect_quantizer_parameters(model):
            if id(extra) not in seen:
                params.append(extra)
                seen.add(id(extra))
    return params


def make_sgd(
    model: Module,
    lr: float,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
    include_quantizer_params: bool = True,
) -> SGD:
    """SGD over model parameters plus (optionally) quantizer parameters.

    Quantizer parameters registered on the module tree (the usual case
    after :func:`repro.quantization.quantize_model`) are already covered
    by ``model.parameters()``; the explicit collection handles hand-built
    layers whose quantizers were attached without registration.
    """
    params = trainable_parameters(model, include_quantizer_params)
    return SGD(params, lr=lr, momentum=momentum, weight_decay=weight_decay)
