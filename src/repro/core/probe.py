"""The probe-evaluation engine backing the CCQ competition stage.

Every quantization step runs ``U`` probe rounds, and each round evaluates
one candidate (a single expert dropped to its next bit level) on a
validation subset.  Two properties of that loop make a dedicated engine
worthwhile:

**Per-step exact memoization.**  Within one competition stage the model's
weights are frozen — only the probed expert's bit width changes, and it
is restored right after the probe.  A candidate is therefore fully
identified by ``(expert index, next bits)``, and re-probing it returns a
bit-identical loss.  The engine caches the first evaluation of each
candidate and serves repeats from the cache, cutting the forward passes
per step from ``U`` to at most ``min(U, n_awake)`` with a provably
unchanged Hedge trajectory (the *losses* the competition observes are
the same numbers either way).

**Pinned probe subsets.**  The probe data is materialized once per step
directly from the validation *dataset* in deterministic index order —
deliberately bypassing the loader's shuffle RNG.  This fixes a latent
correctness bug: with a shuffling validation loader, consecutive probes
used to score *different layers on different batches*, making the Hedge
losses incomparable across experts.  Pinning also means cache hits
cannot perturb the loader's RNG stream, so memoization on/off (and
kill-and-resume) stay bit-for-bit deterministic.

The engine is observable through the shared telemetry layer
(``ccq.probe_cache_hits`` / ``ccq.probe_cache_misses`` counters and the
``ccq.probe_eval_s`` fast-path timer histogram) and deliberately holds
no trajectory-relevant state across steps: :meth:`ProbeEngine.begin_step`
drops the memo table, so a run resumed at a step boundary needs no
engine state in the checkpoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from ..nn.data import DataLoader
from ..telemetry import NULL_TELEMETRY, Telemetry
from .resilience import DivergenceError

__all__ = [
    "PinnedProbeSet",
    "ProbeEngine",
    "ProbeOutcome",
    "pin_probe_batches",
]

Batch = Tuple[np.ndarray, np.ndarray]


def _is_transform_free(dataset: object) -> bool:
    """Whether ``dataset`` declares itself free of stochastic transforms.

    True for array-backed datasets (``.images`` / ``.labels`` ndarrays)
    with no transform attached: indexing such a dataset is a pure array
    read, so a pinned subset taken once is valid forever.
    """
    return (
        getattr(dataset, "transform", object()) is None
        and isinstance(getattr(dataset, "images", None), np.ndarray)
        and isinstance(getattr(dataset, "labels", None), np.ndarray)
    )


class PinnedProbeSet:
    """A materialized validation subset, iterable like a loader.

    Holds concrete ``(images, labels)`` ndarray batches so every
    candidate probed within a step is scored on *identical* data, no
    matter what the originating loader's shuffle RNG does in between.
    Satisfies the loader protocol :func:`repro.core.training.evaluate`
    expects (iteration + ``len``).
    """

    def __init__(self, batches: List[Batch]) -> None:
        if not batches:
            raise ValueError("a pinned probe set needs at least one batch")
        self.batches = batches

    def __iter__(self) -> Iterator[Batch]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def n_samples(self) -> int:
        return sum(len(labels) for _, labels in self.batches)


def pin_probe_batches(
    loader: DataLoader, max_batches: Optional[int] = None
) -> PinnedProbeSet:
    """Materialize the probe subset from ``loader``'s dataset.

    Samples are taken in deterministic dataset order (the order an
    unshuffled loader would yield), sliced into ``loader.batch_size``
    batches, at most ``max_batches`` of them.  The loader's own RNG is
    never consulted, so pinning is invisible to any later iteration of
    the loader.

    Falls back to iterating the loader itself for duck-typed loaders
    that expose no ``dataset``/``batch_size`` (test doubles); those
    lose the RNG decoupling but keep the per-step pinning.
    """
    dataset = getattr(loader, "dataset", None)
    batch_size = getattr(loader, "batch_size", None)
    batches: List[Batch] = []
    if dataset is not None and batch_size is not None:
        n = len(dataset)
        if max_batches is not None:
            n = min(n, max_batches * batch_size)
        if _is_transform_free(dataset):
            # Pure array reads: slice the backing arrays directly
            # instead of the per-sample loop + np.stack — identical
            # values (no transform runs either way), far fewer Python
            # round-trips.
            for start in range(0, n, batch_size):
                end = min(start + batch_size, n)
                batches.append((
                    dataset.images[start:end],
                    dataset.labels[start:end].astype(np.int64),
                ))
        else:
            for start in range(0, n, batch_size):
                pairs = [
                    dataset[i]
                    for i in range(start, min(start + batch_size, n))
                ]
                images = np.stack([img for img, _ in pairs])
                labels = np.asarray(
                    [label for _, label in pairs], dtype=np.int64
                )
                batches.append((images, labels))
    else:
        for batch_index, (images, labels) in enumerate(loader):
            if max_batches is not None and batch_index >= max_batches:
                break
            batches.append((np.asarray(images), np.asarray(labels)))
    return PinnedProbeSet(batches)


@dataclass(frozen=True)
class ProbeOutcome:
    """One candidate's result as computed by the parallel backend.

    ``loss`` is set for clean evaluations; a diverged evaluation
    carries the :class:`~repro.core.resilience.DivergenceError` context
    fields instead, so consumption can re-raise a faithful
    reconstruction.  ``elapsed`` is the worker-side wall clock of the
    forward pass (what the serial path would have timed).
    """

    loss: Optional[float] = None
    elapsed: float = 0.0
    diverged: bool = False
    worker: Optional[int] = None
    message: str = ""
    stage: str = ""
    batch_index: Optional[int] = None
    value: Optional[float] = None

    def make_error(self) -> DivergenceError:
        return DivergenceError(
            self.message,
            stage=self.stage,
            batch_index=self.batch_index,
            value=self.value,
        )


class ProbeEngine:
    """Memoizing evaluator for competition probes.

    Parameters
    ----------
    loader:
        The validation loader whose dataset backs the pinned subsets.
    probe_batches:
        How many batches each probe scores (``None`` = the full set) —
        the same knob as ``CCQConfig.probe_batches``.
    memoize:
        Enables the per-step cache.  Off, every probe runs the forward
        pass (the pre-engine behavior); the observed losses — and hence
        the whole CCQ trajectory — are identical either way.
    telemetry:
        Optional live :class:`repro.telemetry.Telemetry`; hits/misses
        land in ``ccq.probe_cache_hits`` / ``ccq.probe_cache_misses``
        and each actual evaluation is timed into ``ccq.probe_eval_s``.
    """

    def __init__(
        self,
        loader: DataLoader,
        probe_batches: Optional[int] = None,
        memoize: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.loader = loader
        self.probe_batches = probe_batches
        self.memoize = memoize
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._memo: Dict[Hashable, float] = {}
        self._prefetched: Dict[Hashable, ProbeOutcome] = {}
        self._pinned: Optional[PinnedProbeSet] = None
        # Bumps every time the pinned subset is actually re-materialized
        # — the parallel backend uses it to tell "same data as last
        # broadcast" from "fresh draw".
        self.pin_version = 0
        self._pin_reusable = False
        self.cache_hits = 0
        self.cache_misses = 0

    # -- step lifecycle ------------------------------------------------------

    def begin_step(self, step: Optional[int] = None) -> None:
        """Start a new competition stage: fresh memo table, fresh pin.

        The memo (and any prefetched results) MUST be dropped between
        steps — the model's weights change during collaboration, so a
        candidate's loss from an earlier step is stale.  The probe
        subset is re-pinned only when it could differ from the previous
        step's: a transform-free dataset read in dataset order yields
        identical batches every time, so its pin is taken once and
        reused; datasets with stochastic transforms re-pin each step so
        they draw identically whether or not the previous step's cache
        was hit.
        """
        self._memo.clear()
        self._prefetched.clear()
        if self._pinned is not None and self._pin_reusable:
            return
        self._pin()

    def _pin(self) -> None:
        self._pinned = pin_probe_batches(self.loader, self.probe_batches)
        self.pin_version += 1
        self._pin_reusable = _is_transform_free(
            getattr(self.loader, "dataset", None)
        )

    @property
    def pinned(self) -> PinnedProbeSet:
        """The current step's probe subset (pinned on first use)."""
        if self._pinned is None:
            self._pin()
        return self._pinned

    # -- evaluation ----------------------------------------------------------

    def evaluate(
        self,
        key: Hashable,
        run_eval: Callable[[PinnedProbeSet], float],
    ) -> float:
        """Return the loss for candidate ``key``, memoized within the step.

        ``run_eval`` receives the pinned probe subset and must return
        the scalar validation loss.  It is only invoked on a cache
        miss with no prefetched result pending; a raised exception
        (e.g. ``DivergenceError``) propagates without populating the
        cache — use :meth:`record` to memoize a substitute loss for
        such candidates.

        Lookup order: memo, then prefetched parallel results (a
        diverged prefetch re-raises its reconstructed
        ``DivergenceError`` here, at consumption time, so journaling
        order matches a serial run exactly), then the serial
        ``run_eval``.
        """
        if self.memoize and key in self._memo:
            self.cache_hits += 1
            self.telemetry.counter("ccq.probe_cache_hits").inc()
            return self._memo[key]
        outcome = self._prefetched.get(key)
        if outcome is not None:
            if outcome.diverged:
                self.telemetry.histogram(
                    "ccq.probe_eval_failed_s"
                ).observe(outcome.elapsed)
                raise outcome.make_error()
            self.telemetry.histogram("ccq.probe_eval_s").observe(
                outcome.elapsed
            )
            self.cache_misses += 1
            self.telemetry.counter("ccq.probe_cache_misses").inc()
            loss = float(outcome.loss)
            if self.memoize:
                self._memo[key] = loss
            return loss
        t0 = time.perf_counter()
        try:
            loss = float(run_eval(self.pinned))
        except Exception:
            # The elapsed time of a failed (typically diverged)
            # evaluation is real wall-clock; timing it into its own
            # histogram keeps report-run coverage honest without
            # polluting the fast-path timings.
            self.telemetry.histogram("ccq.probe_eval_failed_s").observe(
                time.perf_counter() - t0
            )
            raise
        self.telemetry.histogram("ccq.probe_eval_s").observe(
            time.perf_counter() - t0
        )
        self.cache_misses += 1
        self.telemetry.counter("ccq.probe_cache_misses").inc()
        if self.memoize:
            self._memo[key] = loss
        return loss

    def prefetch(self, outcomes: Mapping[Hashable, ProbeOutcome]) -> None:
        """Stage parallel-backend results for consumption by ``evaluate``.

        Prefetched losses are *not* observations yet: counters,
        telemetry and journals only move when the competition actually
        asks for a candidate, so a speculative evaluation the Hedge
        loop never draws leaves no trace in the trajectory-adjacent
        accounting.  Prefetched entries survive ``memoize=False`` (they
        are served repeatedly), and are dropped at ``begin_step``.
        """
        self._prefetched.update(outcomes)

    def record(self, key: Hashable, loss: float) -> None:
        """Memoize ``loss`` for ``key`` without running an evaluation.

        Used for divergence penalties: a candidate whose evaluation
        deterministically diverges would diverge again on a re-probe,
        so its penalty loss is served from the cache like any other.
        """
        if self.memoize:
            self._memo[key] = float(loss)

    def stats(self) -> Dict[str, int]:
        """Lifetime cache counters (hits + misses = probe rounds issued)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "rounds": self.cache_hits + self.cache_misses,
        }
