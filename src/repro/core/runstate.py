"""Run journaling and crash-safe checkpointing for CCQ searches.

A CCQ run is a long alternating search (probe → quantize → recover,
repeated for tens of steps); this module makes that search *resumable*:

* :class:`RunJournal` — an append-only JSONL log of everything that
  happens (steps, retries, skips, checkpoints).  Each line is one JSON
  object with an ``event`` tag and a monotonically increasing ``seq``;
  the reader tolerates a torn final line, which is exactly what a crash
  mid-append leaves behind.
* :class:`RunStateStore` — atomic checkpoints of the *complete* search
  state: model parameters + per-layer bit config (via
  ``repro.nn.serialization``), optimizer slot state, Hedge expert
  weights, λ-schedule position, step counter and NumPy RNG states.  The
  commit point is a single ``os.replace`` of ``state.json``; the model /
  optimizer archives it references are written first, so a crash at any
  instant leaves either the previous checkpoint or the new one — never a
  torn hybrid.

The serialized trace is rich enough that a run interrupted at an
arbitrary step and resumed from the store reproduces the uninterrupted
run's trajectory bit-for-bit (same winners, same bit configs, same
accuracies).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..nn.optim import Optimizer
from ..nn.modules import Module
from ..nn.serialization import (
    CheckpointError,
    atomic_savez,
    digest_path,
    load_checkpoint,
    save_checkpoint,
    verify_archive,
)
from .collaboration import RecoveryReport
from .competition import CompetitionResult
from .training import EvalResult

__all__ = [
    "RunJournal",
    "RunStateStore",
    "get_rng_state",
    "set_rng_state",
    "eval_to_json",
    "eval_from_json",
    "record_to_json",
    "record_from_json",
]


# -- RNG state ----------------------------------------------------------------

def get_rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """The generator's bit-generator state as a JSON-serializable dict."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a state captured by :func:`get_rng_state`."""
    rng.bit_generator.state = state


# -- JSON codecs --------------------------------------------------------------

def eval_to_json(result: EvalResult) -> Dict[str, Any]:
    return {
        "loss": result.loss,
        "accuracy": result.accuracy,
        "n_samples": result.n_samples,
    }


def eval_from_json(data: Dict[str, Any]) -> EvalResult:
    return EvalResult(
        loss=float(data["loss"]),
        accuracy=float(data["accuracy"]),
        n_samples=int(data["n_samples"]),
    )


def _recovery_to_json(report: RecoveryReport) -> Dict[str, Any]:
    return {
        "epochs_used": report.epochs_used,
        "start_accuracy": report.start_accuracy,
        "end_accuracy": report.end_accuracy,
        "target_accuracy": report.target_accuracy,
        "recovered": report.recovered,
        "accuracy_history": list(report.accuracy_history),
        "train_loss_history": list(report.train_loss_history),
        "lr_history": list(report.lr_history),
    }


def _recovery_from_json(data: Dict[str, Any]) -> RecoveryReport:
    return RecoveryReport(
        epochs_used=int(data["epochs_used"]),
        start_accuracy=float(data["start_accuracy"]),
        end_accuracy=float(data["end_accuracy"]),
        target_accuracy=(
            None if data["target_accuracy"] is None
            else float(data["target_accuracy"])
        ),
        recovered=bool(data["recovered"]),
        accuracy_history=[float(x) for x in data["accuracy_history"]],
        train_loss_history=[float(x) for x in data["train_loss_history"]],
        lr_history=[float(x) for x in data["lr_history"]],
    )


def _competition_to_json(result: CompetitionResult) -> Dict[str, Any]:
    return {
        "winner": result.winner,
        "probabilities": [float(x) for x in result.probabilities],
        "learned_probabilities": [
            float(x) for x in result.learned_probabilities
        ],
        "probe_losses": {
            str(k): float(v) for k, v in result.probe_losses.items()
        },
        "probes": list(result.probes),
        "lambda_used": result.lambda_used,
    }


def _competition_from_json(data: Dict[str, Any]) -> CompetitionResult:
    return CompetitionResult(
        winner=int(data["winner"]),
        probabilities=np.asarray(data["probabilities"], dtype=np.float64),
        learned_probabilities=np.asarray(
            data["learned_probabilities"], dtype=np.float64
        ),
        probe_losses={
            int(k): float(v) for k, v in data["probe_losses"].items()
        },
        probes=[int(x) for x in data["probes"]],
        lambda_used=float(data["lambda_used"]),
    )


def record_to_json(record: "Any") -> Dict[str, Any]:
    """Serialize a :class:`~repro.core.ccq.StepRecord` to JSON values."""
    return {
        "step": record.step,
        "layer_index": record.layer_index,
        "layer_name": record.layer_name,
        "from_bits": record.from_bits,
        "to_bits": record.to_bits,
        "lambda_used": record.lambda_used,
        "pre_accuracy": record.pre_accuracy,
        "post_quant_accuracy": record.post_quant_accuracy,
        "recovered_accuracy": record.recovered_accuracy,
        "recovery": _recovery_to_json(record.recovery),
        "competition": _competition_to_json(record.competition),
        "compression": record.compression,
    }


def record_from_json(data: Dict[str, Any]) -> "Any":
    """Rebuild a :class:`~repro.core.ccq.StepRecord` from JSON values."""
    from .ccq import StepRecord  # deferred: ccq imports this module

    return StepRecord(
        step=int(data["step"]),
        layer_index=int(data["layer_index"]),
        layer_name=str(data["layer_name"]),
        from_bits=int(data["from_bits"]),
        to_bits=int(data["to_bits"]),
        lambda_used=float(data["lambda_used"]),
        pre_accuracy=float(data["pre_accuracy"]),
        post_quant_accuracy=float(data["post_quant_accuracy"]),
        recovered_accuracy=float(data["recovered_accuracy"]),
        recovery=_recovery_from_json(data["recovery"]),
        competition=_competition_from_json(data["competition"]),
        compression=float(data["compression"]),
    )


# -- the journal --------------------------------------------------------------

class RunJournal:
    """Append-only JSONL log of run events.

    Every append is flushed and fsynced before returning, so the journal
    survives a hard kill up to (and including) the last completed write.
    A crash *during* a write leaves a torn final line; :meth:`events`
    silently drops it.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._repair_torn_tail()
        self._seq = self._next_seq()

    def _repair_torn_tail(self) -> None:
        """Truncate the file to its last complete, parseable line.

        A crash mid-append leaves a torn final line with no newline;
        appending after it would concatenate the next event onto the
        garbage, corrupting *that* event too.  Truncating on open keeps
        the append path simple and the file always line-valid.
        """
        if not self.path.exists():
            return
        keep = 0
        with open(self.path, "rb") as f:
            for raw in f:
                if not raw.endswith(b"\n"):
                    break
                try:
                    json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
                keep += len(raw)
        if keep < self.path.stat().st_size:
            with open(self.path, "r+b") as f:
                f.truncate(keep)
                f.flush()
                os.fsync(f.fileno())

    def _next_seq(self) -> int:
        if not self.path.exists():
            return 0
        events = self.events()
        if not events:
            return 0
        return max(int(e.get("seq", -1)) for e in events) + 1

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Durably append one event line and return it.

        Every entry carries ``seq`` (monotone counter), ``ts`` (wall
        clock, ``time.time()``) and ``mono`` (``time.perf_counter()``)
        so journal entries can be correlated with telemetry events
        post-hoc: ``mono`` orders events robustly within one process
        (immune to clock steps), ``ts`` aligns across processes.
        Readers treat both as optional, so journals written before
        these fields existed stay readable.
        """
        entry = {
            "seq": self._seq,
            "event": event,
            "ts": time.time(),
            "mono": time.perf_counter(),
            **fields,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(entry) + "\n")
            f.flush()
            os.fsync(f.fileno())
        self._seq += 1
        return entry

    def events(self, event: Optional[str] = None) -> List[Dict[str, Any]]:
        """All parseable journal entries, optionally filtered by tag."""
        if not self.path.exists():
            return []
        entries: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A torn tail from a crash mid-append; anything after
                    # it cannot exist (appends are sequential).
                    break
                entries.append(entry)
        if event is not None:
            entries = [e for e in entries if e.get("event") == event]
        return entries


# -- optimizer state <-> npz --------------------------------------------------

def _flatten_optimizer_state(state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Flatten an ``Optimizer.state_dict()`` into npz-storable arrays.

    Scalars become 0-d arrays under ``scalar.<key>``; per-parameter slot
    dicts become ``<slot>.<index>`` arrays.
    """
    arrays: Dict[str, np.ndarray] = {}
    for key, value in state.items():
        if isinstance(value, dict):
            for sub, arr in value.items():
                arrays[f"{key}.{sub}"] = np.asarray(arr)
        else:
            arrays[f"scalar.{key}"] = np.asarray(value)
    return arrays


def _unflatten_optimizer_state(
    arrays: Dict[str, np.ndarray]
) -> Dict[str, Any]:
    state: Dict[str, Any] = {}
    for key, value in arrays.items():
        head, _, tail = key.partition(".")
        if head == "scalar":
            state[tail] = value.item()
        else:
            state.setdefault(head, {})[tail] = value
    return state


# -- the store ----------------------------------------------------------------

def _atomic_write_text(path: Path, text: str) -> None:
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(text)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class RunStateStore:
    """Checkpoint directory layout and atomic save/load for one run.

    Layout::

        <directory>/
            journal.jsonl        append-only event log
            state.json           the commit point (JSON search state)
            state.prev.json      the superseded snapshot (rollback target)
            model-<seq>.npz      model params + bit config at that save
            model-<seq>.npz.sha256   integrity sidecar
            optim-<seq>.npz      optimizer slot state at that save
            optim-<seq>.npz.sha256   integrity sidecar

    ``state.json`` names the archives belonging to it, carries a
    self-digest, and is replaced atomically *after* the archives (and
    their sha256 sidecars) are fully written; the previous snapshot is
    rotated to ``state.prev.json`` first and its archives are kept, so
    corruption of the newest snapshot — detected by digest
    verification at load — rolls back one generation instead of
    killing the resume.  Archives older than the two retained
    generations are pruned.
    """

    STATE_FILE = "state.json"
    PREV_STATE_FILE = "state.prev.json"
    JOURNAL_FILE = "journal.jsonl"
    # The self-digest key inside state.json: sha256 of the canonical
    # JSON of the payload *without* this key.
    STATE_DIGEST_KEY = "state_sha256"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal = RunJournal(self.directory / self.JOURNAL_FILE)
        # Human-readable descriptions of integrity failures the last
        # load() survived by rolling back — the caller surfaces them.
        self.load_warnings: List[str] = []

    @property
    def state_path(self) -> Path:
        return self.directory / self.STATE_FILE

    @property
    def prev_state_path(self) -> Path:
        return self.directory / self.PREV_STATE_FILE

    def has_checkpoint(self) -> bool:
        return self.state_path.exists() or self.prev_state_path.exists()

    @staticmethod
    def _payload_digest(payload: Dict[str, Any]) -> str:
        import hashlib

        canonical = json.dumps(
            {
                k: v for k, v in payload.items()
                if k != RunStateStore.STATE_DIGEST_KEY
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def save(
        self,
        model: Module,
        optimizer: Optimizer,
        state: Dict[str, Any],
        seq: int,
    ) -> None:
        """Atomically persist one complete search-state snapshot.

        ``state`` must be JSON-serializable; ``seq`` tags the archive
        files (any monotonically increasing counter works).  The
        superseded snapshot is kept as ``state.prev.json`` (plus its
        archives) so a snapshot that later fails digest verification
        has a good predecessor to roll back to.
        """
        model_file = f"model-{seq:06d}.npz"
        optim_file = f"optim-{seq:06d}.npz"
        save_checkpoint(model, self.directory / model_file)
        atomic_savez(
            self.directory / optim_file,
            **_flatten_optimizer_state(optimizer.state_dict()),
        )
        payload = dict(state)
        payload["model_file"] = model_file
        payload["optim_file"] = optim_file
        payload["save_seq"] = seq
        payload[self.STATE_DIGEST_KEY] = self._payload_digest(payload)
        # Rotate: the current snapshot becomes the rollback target.
        # os.replace keeps every intermediate crash state loadable —
        # at any instant there is a complete (state, archives) pair
        # under one of the two names.
        if self.state_path.exists():
            os.replace(self.state_path, self.prev_state_path)
        _atomic_write_text(
            self.state_path, json.dumps(payload, indent=2)
        )
        keep = {model_file, optim_file}
        keep.update(self._referenced_archives(self.prev_state_path))
        self._prune(keep=keep)

    def _referenced_archives(self, state_path: Path) -> set:
        """Archive names a state file references (best effort)."""
        if not state_path.exists():
            return set()
        try:
            with open(state_path, "r", encoding="utf-8") as f:
                state = json.load(f)
            return {
                name for name in (
                    state.get("model_file"), state.get("optim_file")
                ) if name
            }
        except (json.JSONDecodeError, OSError):
            return set()

    def _prune(self, keep: set) -> None:
        for pattern in ("model-*.npz", "optim-*.npz"):
            for path in self.directory.glob(pattern):
                if path.name not in keep:
                    path.unlink(missing_ok=True)
                    digest_path(path).unlink(missing_ok=True)

    def _read_verified_state(self, state_path: Path) -> Dict[str, Any]:
        """Parse + integrity-check one state file and its archives.

        Raises :class:`CheckpointError` on any corruption: unparseable
        JSON, a self-digest mismatch, a missing archive, or an archive
        whose ``.sha256`` sidecar does not match its bytes.
        """
        try:
            with open(state_path, "r", encoding="utf-8") as f:
                state = json.load(f)
        except (json.JSONDecodeError, UnicodeDecodeError) as err:
            raise CheckpointError(
                f"checkpoint state {state_path.name} is not valid "
                f"JSON: {err}"
            ) from err
        recorded = state.get(self.STATE_DIGEST_KEY)
        if recorded is not None and recorded != self._payload_digest(state):
            raise CheckpointError(
                f"checkpoint state {state_path.name} failed its "
                f"self-digest check"
            )
        for key in ("model_file", "optim_file"):
            name = state.get(key)
            if not name:
                raise CheckpointError(
                    f"checkpoint state {state_path.name} lacks {key}"
                )
            archive = self.directory / name
            if not archive.exists():
                raise CheckpointError(
                    f"checkpoint state {state_path.name} references "
                    f"missing archive {name}"
                )
            if verify_archive(archive) is False:
                raise CheckpointError(
                    f"archive {name} failed sha256 digest verification"
                )
        return state

    def load(
        self, model: Module, optimizer: Optimizer
    ) -> Dict[str, Any]:
        """Restore the newest *intact* snapshot into ``model`` and
        ``optimizer`` and return its JSON search state.

        Every snapshot is digest-verified before a single byte reaches
        the model: a corrupted ``state.json`` or archive makes the load
        roll back to ``state.prev.json`` (journaled as
        ``checkpoint_rollback`` and surfaced via ``load_warnings``)
        instead of crashing the resume.  Only when no candidate
        survives verification does :class:`CheckpointError` propagate.
        """
        self.load_warnings = []
        if not self.has_checkpoint():
            raise CheckpointError(
                f"no checkpoint found in {self.directory} "
                f"(missing {self.STATE_FILE})"
            )
        for state_path in (self.state_path, self.prev_state_path):
            if not state_path.exists():
                continue
            try:
                state = self._read_verified_state(state_path)
            except CheckpointError as err:
                self.load_warnings.append(str(err))
                self.journal.append(
                    "checkpoint_rollback",
                    state_file=state_path.name, reason=str(err),
                )
                continue
            model_path = self.directory / state["model_file"]
            optim_path = self.directory / state["optim_file"]
            try:
                load_checkpoint(model, model_path)
                with np.load(str(optim_path)) as archive:
                    arrays = {
                        key: archive[key] for key in archive.files
                    }
                optimizer.load_state_dict(
                    _unflatten_optimizer_state(arrays)
                )
            except CheckpointError:
                # A real model/config mismatch — the predecessor was
                # written by the same run, so rolling back cannot help.
                raise
            except Exception as err:
                # Undetectable-by-digest corruption (legacy archive
                # without a sidecar, torn zip): try the predecessor.
                self.load_warnings.append(
                    f"archive load from {state_path.name} failed: {err}"
                )
                self.journal.append(
                    "checkpoint_rollback",
                    state_file=state_path.name, reason=repr(err),
                )
                continue
            return state
        raise CheckpointError(
            f"no loadable checkpoint in {self.directory}: "
            + "; ".join(self.load_warnings)
        )
