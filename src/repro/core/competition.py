"""The competition stage: an exponential-weights game between layers.

Implements lines 6–11 of the paper's Algorithm 1.  Each layer is an
*expert*; at probe round ``u`` a layer ``m_u`` is sampled from the current
probability distribution ``p``, the network is evaluated on the validation
set with only that layer dropped to its next bit level, and the layer's
weight is updated multiplicatively:

    pi_{m_u} <- pi_{m_u} * exp(-gamma * xi_{m_u})

so layers whose quantization hurts validation loss the least accumulate
the most weight.  Layers already at the ladder floor (or at their forced
target) are *sleeping experts*: they are excluded from sampling and their
weight is frozen until — in the general framework — they could re-awaken.

The memory-awareness extension (Eq. 7) mixes the learned distribution
with a layer-size distribution before the final winner draw:

    p_new = (1 - lambda) * p + lambda * |Q_m| / sum_i |Q_i|

and ``lambda`` decays linearly over quantization steps, shifting the
framework from compression-driven early on to accuracy-driven later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["LambdaSchedule", "HedgeCompetition", "CompetitionResult"]


@dataclass(frozen=True)
class LambdaSchedule:
    """Linearly decaying memory-awareness coefficient.

    ``value(t)`` interpolates from ``start`` at step 0 to ``end`` at step
    ``decay_steps`` (clamped thereafter).  The paper uses a linear decay
    because early steps are easy to recover from (be memory-greedy) while
    late steps are fragile (be accuracy-driven).
    """

    start: float = 0.8
    end: float = 0.2
    decay_steps: int = 20

    def __post_init__(self) -> None:
        for name, v in (("start", self.start), ("end", self.end)):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"lambda {name} must be in [0, 1], got {v}")

    def value(self, step: int) -> float:
        if self.decay_steps <= 0:
            return self.end
        frac = min(max(step, 0) / self.decay_steps, 1.0)
        return self.start + (self.end - self.start) * frac

    @property
    def average(self) -> float:
        """Mean lambda over the decay window (the paper's Fig. 1 x-axis)."""
        return (self.start + self.end) / 2.0

    @classmethod
    def constant(cls, value: float) -> "LambdaSchedule":
        """A non-decaying schedule (for the Fig. 1 ablation)."""
        return cls(start=value, end=value, decay_steps=1)


@dataclass
class CompetitionResult:
    """Outcome of one competition stage (one quantization step)."""

    winner: int
    probabilities: np.ndarray        # final mixed distribution used for draw
    learned_probabilities: np.ndarray  # Hedge distribution before mixing
    probe_losses: Dict[int, float]   # last observed loss per probed layer
    probes: List[int] = field(default_factory=list)
    lambda_used: float = 0.0


class HedgeCompetition:
    """Exponential-weights learner over the layers of a network.

    Parameters
    ----------
    n_layers:
        Number of experts ``M``.
    gamma:
        Hedge learning rate (the temperature of ``exp(-gamma * loss)``).
    probes_per_step:
        ``U``, the number of probe rounds per quantization step.
    lambda_schedule:
        Memory-awareness mixing (Eq. 7); ``None`` disables mixing.
    rng:
        Source of randomness for probe and winner draws.
    loss_scale:
        Optional normalizer applied to probe losses before the
        exponential-weights update; ``"auto"`` rescales by the running
        mean probe loss, which keeps ``gamma`` meaningful across tasks
        whose loss magnitudes differ wildly.
    outlier_threshold:
        Losses at or above this value (e.g. the CCQ probe divergence
        penalty) still demote their expert through the weight update
        but are **excluded from the auto loss-scale history** — one
        huge penalty would otherwise drag the running mean up
        permanently, flattening every later scaled loss toward 0 and
        destroying Hedge discrimination.  ``None`` disables the
        distinction (every loss enters the history).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; when live, every
        probe round emits a ``hedge_round`` event snapshotting the
        updated distribution (observer only — never part of
        ``state_dict`` and never touches the trajectory).
    """

    def __init__(
        self,
        n_layers: int,
        gamma: float = 1.0,
        probes_per_step: int = 8,
        lambda_schedule: Optional[LambdaSchedule] = None,
        rng: Optional[np.random.Generator] = None,
        loss_scale: "float | str" = "auto",
        outlier_threshold: Optional[float] = None,
        telemetry: Optional[object] = None,
    ) -> None:
        if n_layers < 1:
            raise ValueError("need at least one layer")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if probes_per_step < 1:
            raise ValueError("need at least one probe per step")
        self.n_layers = n_layers
        self.gamma = gamma
        self.probes_per_step = probes_per_step
        self.lambda_schedule = lambda_schedule
        self.rng = rng or np.random.default_rng(0)
        self.loss_scale = loss_scale
        self.outlier_threshold = outlier_threshold
        if telemetry is None:
            from ..telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry
        # pi starts uniform at 1 (Algorithm 1 line 1).
        self.weights = np.ones(n_layers, dtype=np.float64)
        self._loss_history: List[float] = []

    # -- distributions ------------------------------------------------------

    def probabilities(self, awake: Sequence[bool]) -> np.ndarray:
        """Hedge distribution over awake experts (sleepers get 0)."""
        mask = np.asarray(awake, dtype=bool)
        if mask.shape != (self.n_layers,):
            raise ValueError(
                f"awake mask must have shape ({self.n_layers},), "
                f"got {mask.shape}"
            )
        if not mask.any():
            raise RuntimeError("all experts are asleep; nothing to quantize")
        p = np.where(mask, self.weights, 0.0)
        return p / p.sum()

    def mixed_probabilities(
        self,
        awake: Sequence[bool],
        layer_sizes: Optional[Sequence[float]],
        step: int,
    ) -> np.ndarray:
        """Apply the Eq. 7 memory mixing to the learned distribution."""
        p = self.probabilities(awake)
        if self.lambda_schedule is None or layer_sizes is None:
            return p
        lam = self.lambda_schedule.value(step)
        sizes = np.asarray(layer_sizes, dtype=np.float64)
        sizes = np.where(np.asarray(awake, dtype=bool), sizes, 0.0)
        total = sizes.sum()
        if total <= 0:
            return p
        mixed = (1.0 - lam) * p + lam * sizes / total
        return mixed / mixed.sum()

    # -- state (for crash-safe checkpoints) ----------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Snapshot the full competition state as JSON-ready values.

        Includes the expert weights, the loss history backing the
        ``"auto"`` loss scale, and the RNG state, so a restored
        competition draws the *identical* probe and winner sequence the
        uninterrupted one would have drawn.
        """
        return {
            "version": 1,
            "n_layers": self.n_layers,
            "gamma": self.gamma,
            "probes_per_step": self.probes_per_step,
            "loss_scale": self.loss_scale,
            "weights": [float(w) for w in self.weights],
            "loss_history": [float(x) for x in self._loss_history],
            "rng_state": self.rng.bit_generator.state,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        n = int(state["n_layers"])
        if n != self.n_layers:
            raise ValueError(
                f"competition state is for {n} experts, "
                f"this competition has {self.n_layers}"
            )
        weights = np.asarray(state["weights"], dtype=np.float64)
        if weights.shape != (self.n_layers,):
            raise ValueError(
                f"expected {self.n_layers} expert weights, "
                f"got shape {weights.shape}"
            )
        self.weights = weights
        self._loss_history = [float(x) for x in state["loss_history"]]
        rng_state = state.get("rng_state")
        if rng_state is not None:
            self.rng.bit_generator.state = rng_state

    # -- the game ------------------------------------------------------------

    def _is_outlier(self, loss: float) -> bool:
        return (
            self.outlier_threshold is not None
            and loss >= self.outlier_threshold
        )

    def _scaled(self, loss: float) -> float:
        outlier = self._is_outlier(loss)
        if not outlier:
            self._loss_history.append(loss)
        if self.loss_scale == "auto":
            if not self._loss_history:
                # An outlier before any honest loss: no reference scale
                # exists yet, so treat it as one unit of loss — exactly
                # what the old self-normalizing first observation did.
                return 1.0
            return loss / (np.mean(self._loss_history) + 1e-12)
        return loss / float(self.loss_scale)

    def observe(self, layer: int, loss: float) -> None:
        """Multiplicative weight update for one probe observation.

        Outlier losses (see ``outlier_threshold``) take part in this
        update — the expert is demoted hard — but are kept out of the
        running loss-scale history so they cannot flatten the scale for
        every subsequent honest probe.
        """
        self.weights[layer] *= np.exp(-self.gamma * self._scaled(loss))
        # Renormalize to dodge underflow; the distribution is unchanged.
        self.weights /= self.weights.max()

    def run_step(
        self,
        evaluate_candidate: Callable[[int], float],
        awake: Sequence[bool],
        layer_sizes: Optional[Sequence[float]] = None,
        step: int = 0,
    ) -> CompetitionResult:
        """Run one full competition stage and pick a winner.

        ``evaluate_candidate(m)`` must return the validation loss of the
        network with layer ``m`` (and only layer ``m``) quantized to its
        next bit level — Eq. (4)/(5) of the paper.

        The loop is deliberately sequential and must stay that way:
        each round's draw depends on the distribution updated by every
        previous round's observed loss, so rounds cannot be reordered
        or batched here.  Parallelism lives a level below — within a
        step the model is frozen, so each candidate's loss is a fixed
        number that ``evaluate_candidate`` may serve from a memo or
        from results a worker pool computed ahead of the draw
        (``repro.parallel``); either way this loop observes the same
        losses in the same order as a fully serial run.
        """
        probes: List[int] = []
        probe_losses: Dict[int, float] = {}
        telemetry = self.telemetry
        # One distribution per round: the post-update distribution that
        # the telemetry event snapshots IS the distribution the next
        # round draws from, so it is computed once and carried over
        # instead of being rebuilt for the event and again for the draw.
        p = self.probabilities(awake)
        for round_index in range(self.probes_per_step):
            m_u = int(self.rng.choice(self.n_layers, p=p))
            loss = float(evaluate_candidate(m_u))
            self.observe(m_u, loss)
            probes.append(m_u)
            probe_losses[m_u] = loss
            p = self.probabilities(awake)
            if telemetry.enabled:
                telemetry.event(
                    "hedge_round",
                    step=step,
                    round=round_index,
                    expert=m_u,
                    loss=loss,
                    probabilities=[float(x) for x in p],
                )
        learned = p
        mixed = self.mixed_probabilities(awake, layer_sizes, step)
        winner = int(self.rng.choice(self.n_layers, p=mixed))
        if telemetry.enabled:
            telemetry.event(
                "hedge_winner",
                step=step,
                winner=winner,
                lambda_used=(
                    self.lambda_schedule.value(step)
                    if self.lambda_schedule is not None else 0.0
                ),
                learned=[float(x) for x in learned],
                mixed=[float(x) for x in mixed],
            )
        lam = (
            self.lambda_schedule.value(step)
            if self.lambda_schedule is not None
            else 0.0
        )
        return CompetitionResult(
            winner=winner,
            probabilities=mixed,
            learned_probabilities=learned,
            probe_losses=probe_losses,
            probes=probes,
            lambda_used=lam,
        )
