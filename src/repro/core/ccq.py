"""The Competitive-Collaborative Quantization driver (Algorithm 1).

:class:`CCQQuantizer` orchestrates the full framework of the paper:

1. quantize every layer to the ladder's starting precision ``N^(0)`` and
   briefly fine-tune;
2. repeat until every layer sleeps (or a step/compression budget is hit):

   a. **competition** — probe candidate one-layer quantizations on the
      validation set, update the exponential-weights distribution, mix in
      the memory term (Eq. 7), and draw a winner;
   b. quantize the winner to its next bit level;
   c. **collaboration** — fine-tune all layers (weights + quantizer
      parameters) until the accuracy recovers.

The driver is *policy-agnostic*: it accepts any registered quantization
policy (or an already-converted model) and only ever manipulates per-layer
bit widths.  Passing ``target_config`` pins each layer's final precision,
which is how Table I forces CCQ to reach the exact ``fp-3b-fp``
configuration of the one-shot baselines, but gradually.

The driver is also *fault tolerant*.  With ``CCQConfig.checkpoint_dir``
set, every step is journaled (append-only JSONL) and followed by an
atomic checkpoint of the complete search state — model, bit config,
Hedge weights, λ position, step counter, optimizer slots and RNG states
— so an interrupted run resumed with ``run(resume=True)`` reproduces the
uninterrupted trajectory bit-for-bit.  A collaboration stage whose loss
or gradients diverge (NaN/Inf) is rolled back to the pre-step snapshot
and retried with a decayed learning rate; after ``max_retries`` failures
the winner's bit drop is reverted, the expert is put to sleep, the skip
is journaled, and the search continues instead of dying.

The competition stage is the search's dominant cost, so its candidate
evaluations route through a :class:`~repro.core.probe.ProbeEngine`:
probe batches are pinned once per step in dataset order (all candidates
in a step score on identical data, regardless of the validation
loader's shuffle RNG) and repeated candidates within a step are served
from an exact per-step cache instead of re-running the forward pass —
``U`` probe rounds cost at most ``min(U, n_awake)`` forward passes with
a provably unchanged trajectory.  With ``CCQConfig.probe_workers > 0``
those forward passes additionally fan out across a persistent forked
worker pool (``repro.parallel``) that shares the frozen model state
through shared memory; the sequential Hedge loop consumes the
prefetched losses, which are bit-identical to serial for any worker
count.  Orthogonally, ``CCQConfig.qweight_cache`` reuses each frozen
layer's quantized weight tensor across all probes of a stage instead
of re-quantizing every layer on every probe forward.

The driver is also *observable*.  Passing a live
:class:`repro.telemetry.Telemetry` as ``CCQQuantizer(telemetry=...)``
emits nested wall-clock spans for every stage (``run`` > ``step`` >
``probe`` / ``eval`` / ``recover`` / ``checkpoint``), probe-loss
histograms, per-expert Hedge-weight and per-layer bit gauges,
divergence/retry/skip counters, throughput histograms and a live
progress line — without affecting the search trajectory in any way
(telemetry is deliberately not part of :class:`CCQConfig` or the resume
fingerprint).  The default is a shared null object whose operations are
no-ops, so an uninstrumented run pays nothing.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..nn.data import DataLoader
from ..nn.modules import Module
from ..nn.serialization import CheckpointError, named_state_arrays
from ..quantization.policy import QuantPolicy
from ..quantization.qmodules import (
    enable_weight_cache,
    get_bit_config,
    quantize_model,
    quantized_layers,
    set_bit_config,
    weight_cache_stats,
)
from .collaboration import RecoveryConfig, RecoveryReport, recover
from .competition import CompetitionResult, HedgeCompetition, LambdaSchedule
from .compression import model_size_report
from .probe import ProbeEngine, ProbeOutcome
from .resilience import DivergenceError, RetryPolicy
from .runstate import (
    RunStateStore,
    eval_from_json,
    eval_to_json,
    get_rng_state,
    record_from_json,
    record_to_json,
    set_rng_state,
)
from .schedule import DEFAULT_LADDER, BitLadder
from .training import EvalResult, evaluate, make_sgd, train_epoch
from ..telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["CCQConfig", "StepRecord", "CCQResult", "CCQQuantizer"]

BitTarget = Optional[int]

# Loss credited to a probe whose evaluation diverged: large enough that
# Hedge treats the candidate as a terrible move, finite so the
# exponential-weights update stays well defined.
PROBE_DIVERGENCE_PENALTY = 1e3


@dataclass(frozen=True)
class CCQConfig:
    """All knobs of the framework, with the paper's defaults."""

    ladder: BitLadder = DEFAULT_LADDER
    gamma: float = 1.0
    probes_per_step: int = 8
    probe_batches: Optional[int] = 2     # val-subset size for probes
    lambda_schedule: Optional[LambdaSchedule] = None
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 0.0
    max_steps: Optional[int] = None      # T (None = until all layers sleep)
    target_compression: Optional[float] = None
    initial_recovery_epochs: int = 1
    # Recover the initial N^(0) quantization with the full collaboration
    # machinery (adaptive, targeting the float accuracy) instead of a
    # fixed epoch count.  Policies whose activation transform is lossy
    # even at high bits (e.g. DoReFa's [0, 1] clip) need this: without
    # it the run starts from a collapsed reference and the adaptive
    # recoveries never engage.
    initial_recovery_adaptive: bool = True
    quantize_activations: bool = True    # step a_bits together with w_bits
    # What |Q_m| measures in the Eq. 7 memory mixing: "memory" (the
    # paper's storage bits) or "macs" (compute cost — a hardware-aware
    # variant in the spirit of HAQ's latency/energy constraints, which
    # prioritizes quantizing the layers that dominate MAC energy).
    size_metric: str = "memory"
    # Input shape (C, H, W) used to trace per-layer MACs when
    # size_metric="macs"; required in that mode.
    input_shape: Optional[Tuple[int, int, int]] = None
    seed: int = 0
    # Per-step probe memoization (see repro.core.probe).  Within one
    # competition stage the model is frozen, so a re-probed candidate's
    # loss is bit-identical to its first evaluation; caching it skips
    # the redundant forward pass.  The observed losses — and therefore
    # the whole trajectory — are the same on or off, which is why this
    # knob is deliberately NOT part of the resume fingerprint: runs
    # with different cache settings are interchangeable.
    probe_cache: bool = True
    # Parallel probe fan-out (see repro.parallel).  With N > 0 workers,
    # each step's distinct (expert, next_bits) candidates are evaluated
    # speculatively on a persistent forked worker pool — sharing the
    # frozen model state through shared memory — and the sequential
    # Hedge loop consumes the prefetched losses.  The losses are
    # bit-identical to the serial path for any worker count, so like
    # probe_cache this knob is trajectory-invariant and deliberately
    # NOT part of the resume fingerprint.  0 = serial (the default);
    # a pool that cannot start (sandboxed CI) falls back to serial.
    probe_workers: int = 0
    # Data-parallel recovery fan-out (see repro.parallel.ddp).  With
    # N > 0 workers and ``recovery.trainer == "ddp"``, each recovery
    # batch's canonical shards run on the worker pool instead of
    # in-process.  The shard *plan* (``recovery.grad_shards``) is
    # trajectory-defining and fingerprinted; the worker count only
    # decides where shards run — the deterministic fixed-order
    # all-reduce makes the SGD trajectory bit-identical for any value,
    # including 0 — so like probe_workers this knob is deliberately
    # NOT part of the resume fingerprint.
    recover_workers: int = 0
    # Probe/recovery pipelining: after each step's collaboration, start
    # the next step's probe fan-out speculatively so the workers
    # compute during the parent's accounting, checkpoint and pre-step
    # evaluation.  Speculation the realized step invalidates is
    # discarded; consumed results are bit-identical to a fresh fan-out,
    # so this is trajectory-invariant and fingerprint-excluded.
    probe_pipeline: bool = True
    # Per-step frozen-layer quantized-weight cache: within a
    # competition stage the shadow weights are constant, so each
    # layer's quantized weight tensor is computed once per (layer,
    # bits) and reused across probes.  Inference-only (training
    # forwards bypass it), invalidated whenever the weights may have
    # moved — exact, trajectory-invariant, and excluded from the
    # fingerprint like the two knobs above.
    qweight_cache: bool = True
    # Fixed per-candidate pool deadline in seconds (``--probe-timeout``).
    # None (the default) derives the deadline adaptively from the
    # pinned-batch count times a measured per-batch EMA — see
    # repro.parallel.supervisor.  Where a loss is computed never changes
    # which loss the competition observes, so like the other pool knobs
    # this is trajectory-invariant and NOT part of the resume
    # fingerprint.
    probe_timeout: Optional[float] = None
    # Total worker respawns allowed before the pool is declared beyond
    # saving and the run degrades to serial probing.  Fingerprint-
    # excluded (supervision is invisible to the trajectory).
    pool_respawn_budget: int = 8
    # After degrading to serial, retry the pool once this many clean
    # steps have passed (0 disables re-promotion — degraded stays
    # degraded, the pre-supervision behaviour).  Fingerprint-excluded.
    pool_repromote_after: int = 4
    # -- resilience ------------------------------------------------------
    # Directory for the run journal + atomic checkpoints (None disables
    # both; the run is then neither resumable nor crash-safe).
    checkpoint_dir: Optional[str] = None
    # How many times a diverged collaboration stage is rolled back and
    # retried (with the recovery LR decayed by retry_lr_decay each time)
    # before the step is skipped and the expert put to sleep.
    max_retries: int = 2
    retry_lr_decay: float = 0.5


@dataclass
class StepRecord:
    """Everything that happened in one quantization step."""

    step: int
    layer_index: int
    layer_name: str
    from_bits: int
    to_bits: int
    lambda_used: float
    pre_accuracy: float
    post_quant_accuracy: float
    recovered_accuracy: float
    recovery: RecoveryReport
    competition: CompetitionResult
    compression: float


@dataclass
class CCQResult:
    """Final state and full trace of a CCQ run."""

    records: List[StepRecord]
    final_eval: EvalResult
    initial_eval: EvalResult
    bit_config: Dict[str, Tuple[Optional[int], Optional[int]]]
    compression: float
    probe_forward_passes: int
    # Probe-engine accounting: rounds served from the per-step memo vs
    # rounds whose loss came from a fresh evaluation.  On the serial
    # path misses == probe_forward_passes; with the parallel backend
    # forward passes also count speculative worker evaluations the
    # Hedge loop never consumed, so they can exceed the misses.
    probe_cache_hits: int = 0
    probe_cache_misses: int = 0
    # Frozen-layer quantized-weight cache counters (serial and parallel
    # parent-side forwards; worker-side replicas are not aggregated).
    qweight_cache_hits: int = 0
    qweight_cache_misses: int = 0
    # Aggregated parallel fan-out accounting across the run (empty when
    # the run never fanned out): rounds/attempted/completed plus the
    # salvage/requeue/respawn/quarantine totals from each round's
    # FanOutReport and the final deadline EMA.  Observability only —
    # never consulted by the search.
    fanout_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def probe_rounds(self) -> int:
        """Total competition probe rounds issued (hits + misses)."""
        return self.probe_cache_hits + self.probe_cache_misses

    @property
    def accuracy_trace(self) -> List[Tuple[int, float, str]]:
        """Flattened ``(epoch, accuracy, event)`` series for Fig. 2.

        Each step contributes its post-quantization valley followed by
        the per-epoch recovery accuracies.
        """
        trace: List[Tuple[int, float, str]] = []
        epoch = 0
        trace.append((epoch, self.initial_eval.accuracy, "initial"))
        for rec in self.records:
            epoch += 1
            trace.append((epoch, rec.post_quant_accuracy,
                          f"quantize:{rec.layer_name}->{rec.to_bits}b"))
            for acc in rec.recovery.accuracy_history[1:]:
                epoch += 1
                trace.append((epoch, acc, "recover"))
        return trace


class CCQQuantizer:
    """Run the competitive-collaborative framework on one model."""

    def __init__(
        self,
        model: Module,
        train_loader: DataLoader,
        val_loader: DataLoader,
        config: Optional[CCQConfig] = None,
        policy: "QuantPolicy | str | None" = None,
        target_config: Optional[Dict[str, BitTarget]] = None,
        groups: Optional[Dict[str, Sequence[str]]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or CCQConfig()
        # Observability: all spans/metrics/log lines route through this
        # handle.  The default is the shared null singleton, whose every
        # operation is a no-op — instrumentation costs nothing unless a
        # live Telemetry is passed.  Deliberately NOT part of CCQConfig:
        # it never affects the search trajectory or the fingerprint.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if policy is not None:
            quantize_model(model, policy)
        self.model = model
        self.train_loader = train_loader
        self.val_loader = val_loader
        self.layers = quantized_layers(model)
        if not self.layers:
            raise ValueError(
                "model has no quantized layers; pass a policy or convert "
                "it with quantize_model() first"
            )
        self.target_config = dict(target_config) if target_config else None
        if self.target_config is not None:
            names = {name for name, _ in self.layers}
            unknown = set(self.target_config) - names
            if unknown:
                raise KeyError(f"target_config names unknown layers: {unknown}")
        # Experts: the units that compete.  One per layer by default; a
        # ``groups`` mapping {expert_name: [layer names]} coarsens the
        # granularity to blocks (paper: "different parts of the model,
        # e.g. layers") — grouped layers always share one precision.
        self.experts = self._build_experts(groups)
        self.rng = np.random.default_rng(self.config.seed)
        self.competition = HedgeCompetition(
            n_layers=len(self.experts),
            gamma=self.config.gamma,
            probes_per_step=self.config.probes_per_step,
            lambda_schedule=self.config.lambda_schedule,
            rng=self.rng,
            # Divergence penalties demote their expert but must not
            # pollute the auto loss-scale history (satellite of the
            # probe-engine work; see HedgeCompetition.outlier_threshold).
            outlier_threshold=PROBE_DIVERGENCE_PENALTY,
            telemetry=self.telemetry,
        )
        # All candidate evaluations route through the probe engine:
        # per-step memoization plus probe subsets pinned in dataset
        # order, decoupled from the validation loader's shuffle RNG.
        self.probe_engine = ProbeEngine(
            loader=val_loader,
            probe_batches=self.config.probe_batches,
            memoize=self.config.probe_cache,
            telemetry=self.telemetry,
        )
        self.optimizer = make_sgd(
            model,
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self._base_lr = self.config.lr
        self.probe_forward_passes = 0
        if self.config.probe_workers < 0:
            raise ValueError(
                f"probe_workers must be >= 0, "
                f"got {self.config.probe_workers}"
            )
        if self.config.recover_workers < 0:
            raise ValueError(
                f"recover_workers must be >= 0, "
                f"got {self.config.recover_workers}"
            )
        if self.config.recovery.trainer not in ("serial", "ddp"):
            raise ValueError(
                f"recovery.trainer must be 'serial' or 'ddp', "
                f"got {self.config.recovery.trainer!r}"
            )
        if self.config.recovery.grad_shards < 1:
            raise ValueError(
                f"recovery.grad_shards must be >= 1, "
                f"got {self.config.recovery.grad_shards}"
            )
        # Parallel probe backend: created lazily at the first fan-out
        # (so serial runs never fork), torn down in run()'s finally.
        # A pool that fails to start or dies mid-run flips
        # _pool_failed and the search continues serially — same
        # losses, same trajectory.
        self._pool: Optional[Any] = None
        self._pool_failed = False
        # Serial steps since the pool degraded; once it reaches
        # pool_repromote_after the pool gets another chance.
        self._pool_clean_steps = 0
        # The supervision layer (deadlines, respawn, salvage,
        # quarantine) lives for the whole run so its EMA, quarantine
        # set and respawn budget span pool generations.
        self._supervisor: Optional[Any] = None
        # The data-parallel recovery trainer (recovery.trainer="ddp"),
        # built lazily; shares the pool and supervisor with probing.
        self._ddp_trainer: Optional[Any] = None
        # A speculative probe round started at the end of the previous
        # step and not yet collected: (step it targets, PendingRound).
        # In-memory only — a resumed run simply starts without one.
        self._spec: Optional[Tuple[int, Any]] = None
        if (
            self.config.probe_timeout is not None
            and self.config.probe_timeout <= 0
        ):
            raise ValueError(
                f"probe_timeout must be positive, "
                f"got {self.config.probe_timeout}"
            )
        # Cooperative interruption (SIGTERM/SIGINT): the run finishes
        # the step in flight, checkpoints, journals and returns.
        self._stop_requested = False
        # Frozen-layer quantized-weight cache: enabled for the whole
        # run, scoped per stage (off while collaboration trains, reset
        # whenever the weights may have moved).
        if self.config.qweight_cache:
            enable_weight_cache(self.model, True)
        self._qweight_restored = (0, 0)
        self._qweight_prev = (0, 0)
        if self.config.size_metric not in ("memory", "macs"):
            raise ValueError(
                f"size_metric must be 'memory' or 'macs', "
                f"got {self.config.size_metric!r}"
            )
        self._mac_counts: Optional[Dict[str, int]] = None
        if self.config.size_metric == "macs":
            if self.config.input_shape is None:
                raise ValueError(
                    "size_metric='macs' requires CCQConfig.input_shape"
                )
            from ..hardware.mac import trace_layer_macs

            self._mac_counts = {
                entry.name: entry.macs
                for entry in trace_layer_macs(
                    self.model, self.config.input_shape
                )
            }
        # -- resilience state -------------------------------------------
        self.retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            lr_decay=self.config.retry_lr_decay,
        )
        self.store: Optional[RunStateStore] = (
            RunStateStore(self.config.checkpoint_dir)
            if self.config.checkpoint_dir is not None
            else None
        )
        self._forced_asleep: Set[int] = set()
        self._records: List[StepRecord] = []
        self._step = 0
        self._save_seq = 0
        self._best_accuracy = 0.0
        self._initial_eval: Optional[EvalResult] = None
        if self.telemetry.enabled:
            # Pre-register the resilience counters at zero so every
            # run's metrics.json answers "how often did recovery fail?"
            # even when the answer is "never".
            for counter_name in (
                "ccq.steps", "ccq.checkpoints", "ccq.probe_divergence",
                "ccq.recovery_retry", "ccq.expert_skipped",
                "ccq.fatal_divergence",
                "ccq.probe_cache_hits", "ccq.probe_cache_misses",
                "ccq.qweight_cache_hits", "ccq.qweight_cache_misses",
                "ccq.probe_pool_evals", "ccq.probe_pool_fallbacks",
                "ccq.pool_respawns", "ccq.pool_salvaged_results",
                "ccq.pool_requeued", "ccq.pool_repromotions",
                "ccq.quarantined_candidates",
                "ccq.checkpoint_integrity_failures",
                "ccq.spec_probe_hits", "ccq.spec_probe_discarded",
                "ccq.recover_pool_fallbacks",
            ):
                self.telemetry.counter(counter_name)
        # Running totals of the per-round FanOutReports, surfaced in
        # CCQResult.fanout_stats and the run-ccq results JSON.
        self._fanout_totals: Dict[str, int] = {
            "rounds": 0, "attempted": 0, "completed": 0, "salvaged": 0,
            "requeued": 0, "respawned": 0, "quarantined": 0,
            "missing": 0, "degraded_rounds": 0,
        }

    # -- expert bookkeeping -----------------------------------------------------

    def _build_experts(
        self, groups: Optional[Dict[str, Sequence[str]]]
    ) -> List[Tuple[str, List[int]]]:
        """Resolve the competing units: singleton layers or named groups."""
        index_of = {name: i for i, (name, _) in enumerate(self.layers)}
        if not groups:
            return [(name, [i]) for i, (name, _) in enumerate(self.layers)]
        experts: List[Tuple[str, List[int]]] = []
        claimed: Dict[str, str] = {}
        for expert_name, members in groups.items():
            indices = []
            for member in members:
                if member not in index_of:
                    raise KeyError(
                        f"group {expert_name!r} names unknown layer "
                        f"{member!r}"
                    )
                if member in claimed:
                    raise ValueError(
                        f"layer {member!r} appears in groups "
                        f"{claimed[member]!r} and {expert_name!r}"
                    )
                claimed[member] = expert_name
                indices.append(index_of[member])
            if not indices:
                raise ValueError(f"group {expert_name!r} is empty")
            targets = {self._layer_target(i) for i in indices}
            if len(targets) > 1:
                raise ValueError(
                    f"group {expert_name!r} mixes target precisions "
                    f"{sorted(targets, key=str)}"
                )
            experts.append((expert_name, indices))
        # Ungrouped layers compete individually.
        for i, (name, _) in enumerate(self.layers):
            if name not in claimed:
                experts.append((name, [i]))
        return experts

    def _layer_target(self, layer_index: int) -> BitTarget:
        name, _ = self.layers[layer_index]
        if self.target_config is None:
            return self.config.ladder.floor
        return self.target_config.get(name, self.config.ladder.floor)

    def _target_bits(self, index: int) -> BitTarget:
        """Final precision for expert ``index`` (ladder floor by default)."""
        _, members = self.experts[index]
        return self._layer_target(members[0])

    def _participates(self, index: int) -> bool:
        """Whether the expert is quantized at all (fp-pinned ones are not)."""
        return self._target_bits(index) is not None

    def _current_bits(self, index: int) -> Optional[int]:
        _, members = self.experts[index]
        return self.layers[members[0]][1].w_bits

    def _is_awake(self, index: int) -> bool:
        """Awake = can still be quantized one more level toward its target."""
        if index in self._forced_asleep:
            return False  # retired by the retry policy after repeated failures
        target = self._target_bits(index)
        if target is None:
            return False
        current = self._current_bits(index)
        if current is None:
            return False  # not yet initialized
        return current > target

    def _awake_mask(self) -> List[bool]:
        return [self._is_awake(i) for i in range(len(self.experts))]

    def _layer_sizes(self) -> List[float]:
        """Per-expert ``|Q_m|`` for the Eq. 7 mixing.

        ``memory``: current storage bits (the paper's definition) —
        quantize big layers sooner to shrink the model fastest.
        ``macs``: compute cost weighted by current precision — quantize
        the layers that dominate MAC energy sooner.
        """
        sizes = []
        for _, members in self.experts:
            total = 0.0
            for m in members:
                name, layer = self.layers[m]
                bits = layer.w_bits if layer.w_bits is not None else 32
                if self._mac_counts is not None:
                    total += float(self._mac_counts[name] * bits)
                else:
                    total += float(layer.weight.size * bits)
            sizes.append(total)
        return sizes

    def _set_bits(self, index: int, bits: int) -> None:
        _, members = self.experts[index]
        for m in members:
            layer = self.layers[m][1]
            layer.w_bits = bits
            if self.config.quantize_activations:
                layer.a_bits = bits

    def _next_bits(self, index: int) -> int:
        current = self._current_bits(index)
        next_level = self.config.ladder.next_level(current)
        if next_level is None:
            raise RuntimeError("asked for the next level of a floor expert")
        return next_level

    # -- probes ----------------------------------------------------------------

    def _probe_loss(self, index: int) -> float:
        """Validation loss with only expert ``index`` at its next level.

        This is Eq. (4)/(5): a cheap feed-forward on a validation subset.
        The evaluation routes through the probe engine: the subset is
        the step's pinned batches (identical data for every candidate
        in the step) and a re-probed candidate is served from the
        per-step cache instead of re-running the forward pass — the
        model is frozen within a step, so the cached loss is exact.
        """
        next_bits = self._next_bits(index)

        def run_eval(pinned) -> float:
            _, members = self.experts[index]
            saved = [
                (self.layers[m][1].w_bits, self.layers[m][1].a_bits)
                for m in members
            ]
            self._set_bits(index, next_bits)
            try:
                with self.telemetry.span(
                    "probe", expert=self.experts[index][0],
                    to_bits=next_bits,
                ):
                    result = evaluate(
                        self.model, pinned, telemetry=self.telemetry
                    )
            finally:
                for m, (w_bits, a_bits) in zip(members, saved):
                    self.layers[m][1].w_bits = w_bits
                    self.layers[m][1].a_bits = a_bits
            self.probe_forward_passes += 1
            self.telemetry.histogram("ccq.probe_loss").observe(result.loss)
            return result.loss

        return self.probe_engine.evaluate((index, next_bits), run_eval)

    def _guarded_probe(self, index: int) -> float:
        """A probe that survives divergence.

        A candidate whose evaluation goes NaN/Inf is simply a terrible
        candidate: journal the event and return a large finite penalty
        loss so the competition demotes the expert instead of the whole
        search dying mid-probe.  The penalty is memoized like any other
        probe loss — a deterministic forward pass that diverged once
        would diverge again, so a re-probe within the step serves the
        penalty from the cache without re-running (or re-journaling)
        the doomed evaluation.
        """
        try:
            return self._probe_loss(index)
        except DivergenceError as err:
            self.telemetry.counter(
                "ccq.probe_divergence", expert=self.experts[index][0]
            ).inc()
            self.telemetry.logger.warning(
                "probe diverged; penalizing candidate",
                expert=self.experts[index][0], step=self._step,
            )
            if self.store is not None:
                self.store.journal.append(
                    "probe_divergence",
                    step=self._step,
                    expert=self.experts[index][0],
                    penalty=PROBE_DIVERGENCE_PENALTY,
                    **err.context(),
                )
            current = self._current_bits(index)
            next_bits = (
                self.config.ladder.next_level(current)
                if current is not None else None
            )
            if next_bits is not None:
                self.probe_engine.record(
                    (index, next_bits), PROBE_DIVERGENCE_PENALTY
                )
            return PROBE_DIVERGENCE_PENALTY

    # -- parallel fan-out --------------------------------------------------------

    def _ensure_pool(self) -> Optional[Any]:
        """The worker pool, started on first use; ``None`` means serial.

        One pool serves both workloads — probe fan-out and recovery
        shard rounds — sized for the larger of the two worker counts;
        each fan-out uses at most its own configured width.
        """
        if self._pool is not None:
            return self._pool
        pool_size = max(
            self.config.probe_workers, self.config.recover_workers
        )
        if self._pool_failed or pool_size <= 0:
            return None
        try:
            from ..parallel import create_probe_pool

            self._pool = create_probe_pool(
                self.model,
                pool_size,
                self.config.quantize_activations,
                telemetry=self.telemetry,
            )
        except Exception as err:
            # Graceful degradation (sandboxed CI, fork unavailable,
            # shm forbidden): the serial path computes identical
            # losses, so the run continues instead of dying.
            self._pool_failed = True
            self.telemetry.counter("ccq.probe_pool_fallbacks").inc()
            self.telemetry.logger.warning(
                "probe pool unavailable; falling back to serial probes",
                workers=pool_size, error=str(err),
            )
            return None
        self.telemetry.gauge("ccq.probe_pool_workers").set(
            self._pool.n_workers
        )
        self.telemetry.logger.info(
            "probe pool started", workers=self._pool.n_workers,
        )
        return self._pool

    def _ensure_supervisor(self) -> Any:
        """The run-scoped supervision layer, created on first use."""
        if self._supervisor is None:
            from ..parallel.supervisor import (
                PoolSupervisor,
                SupervisionConfig,
            )

            self._supervisor = PoolSupervisor(
                SupervisionConfig(
                    probe_timeout=self.config.probe_timeout,
                    respawn_budget=self.config.pool_respawn_budget,
                ),
                telemetry=self.telemetry,
            )
        return self._supervisor

    def _recover_trainer(self) -> Optional[Any]:
        """The recovery training strategy; ``None`` = serial train_epoch.

        Built once per run when ``recovery.trainer == "ddp"``.  The
        trainer itself is what the fingerprint captures (via the
        recovery config); the pool it may or may not reach through
        ``_train_pool`` only moves shards between processes.
        """
        if self.config.recovery.trainer != "ddp":
            return None
        if self._ddp_trainer is None:
            from ..parallel.ddp import DDPTrainer

            self._ddp_trainer = DDPTrainer(
                self.model,
                grad_shards=self.config.recovery.grad_shards,
                workers=self.config.recover_workers,
                pool_getter=self._train_pool,
                supervisor_getter=self._ensure_supervisor,
                telemetry=self.telemetry,
                on_fallback=self._on_recover_fallback,
            )
        return self._ddp_trainer

    def _train_pool(self) -> Optional[Any]:
        """The pool as seen by the DDP trainer (None = in-process)."""
        if self.config.recover_workers <= 0:
            return None
        return self._ensure_pool()

    def _on_recover_fallback(self, reason: str) -> None:
        self.telemetry.counter("ccq.recover_pool_fallbacks").inc()

    def _close_pool(self) -> None:
        if self._pool is None:
            return
        try:
            self._pool.close()
        finally:
            self._pool = None

    def _degrade_pool(self, step: int, reason: str) -> None:
        """Drop to serial probing (re-promotion may retry later)."""
        self._pool_failed = True
        self._pool_clean_steps = 0
        self._close_pool()
        self.telemetry.counter("ccq.probe_pool_fallbacks").inc()
        self.telemetry.logger.warning(
            "probe pool degraded; falling back to serial probes",
            step=step, reason=reason,
            repromote_after=self.config.pool_repromote_after,
        )

    def _fan_out_probes(self, step: int) -> None:
        """Evaluate the step's likely candidates on the pool, ahead of
        the draw.

        Within a step the model is frozen, so each of the distinct
        ``(expert, next_bits)`` candidates has one fixed loss no matter
        when (or whether) the Hedge loop draws it — they can be
        computed up front, in parallel.  A step's ``U`` rounds touch at
        most ``min(U, n_awake)`` distinct candidates, so speculation is
        capped there: when more experts are awake than rounds exist,
        only the ``U`` most probable ones (under the distribution round
        0 draws from — a deterministic choice that cannot perturb the
        trajectory) are fanned out, and a drawn candidate that was not
        speculated simply evaluates serially inside the loop.  The
        results are staged in the probe engine and consumed by the
        *unchanged* sequential competition, which keeps the observation
        order, the journal and the trajectory bit-identical to a serial
        run.  Candidates the loop never draws are speculative waste
        (counted in ``probe_forward_passes``, invisible everywhere
        else).

        When the previous step left a speculative round in flight
        (``probe_pipeline``), its results are collected here instead of
        starting a fresh round — the candidate set is a deterministic
        function of state that has not changed since the speculation
        was ranked, so the speculative round *is* this step's fan-out.
        """
        spec = self._spec
        self._spec = None
        if self.config.probe_workers <= 0:
            return
        if self._pool_failed:
            # Re-promotion: after enough clean serial steps the pool
            # deserves another chance (transient faults — an OOM kill,
            # a node hiccup — should not demote a long run forever).
            self._pool_clean_steps += 1
            if (
                self.config.pool_repromote_after <= 0
                or self._pool_clean_steps
                < self.config.pool_repromote_after
            ):
                return
            self._pool_failed = False
            self._pool_clean_steps = 0
            if self._supervisor is not None:
                self._supervisor.reset_budget()
            self.telemetry.counter("ccq.pool_repromotions").inc()
            self.telemetry.logger.info(
                "re-promoting probe pool after serial cooldown",
                step=step,
                cooldown_steps=self.config.pool_repromote_after,
            )
        candidates = self._probe_candidates()
        if len(candidates) < 2:
            return  # nothing to fan out
        if spec is not None and self._collect_spec(step, spec, candidates):
            return
        pool = self._ensure_pool()
        if pool is None:
            return
        telemetry = self.telemetry
        supervisor = self._ensure_supervisor()
        tasks = self._candidate_tasks(candidates)
        try:
            with telemetry.span(
                "probe_fanout", step=step, candidates=len(candidates)
            ) as fanout_span:
                # Cross-process trace context: workers attach their
                # eval spans to this fan-out span by id.  Timestamps
                # and ids only — nothing the trajectory can observe.
                trace = {
                    "trace_id": f"step{step}",
                    "parent_span": getattr(fanout_span, "span_id", None),
                    "step": step,
                }
                report = supervisor.run_round(
                    pool,
                    named_state_arrays(self.model),
                    get_bit_config(self.model),
                    self.probe_engine.pinned.batches,
                    tasks,
                    trace=trace,
                )
        except Exception as err:
            # Unhealable (broadcast kept failing, supervisor machinery
            # fault, or a non-conforming pool double): degrade.
            self._degrade_pool(step, str(err))
            return
        self._account_fanout_report(step, report, supervisor)
        self._prefetch_outcomes(report.outcomes)
        if report.degraded:
            self._degrade_pool(step, "respawn budget exhausted")

    def _probe_candidates(self) -> List[Tuple[int, int]]:
        """The step's distinct fan-out candidates, most probable first.

        Deterministic: ranked by the distribution round 0 draws from,
        ties broken by expert index.  Nothing between the end of one
        step's collaboration and the next step's fan-out touches the
        Hedge state or the bit widths, so a speculative ranking taken
        early is identical to the one taken at fan-out time.
        """
        candidates = [
            (i, self._next_bits(i))
            for i in range(len(self.experts))
            if self._is_awake(i)
        ]
        limit = min(self.config.probes_per_step, len(candidates))
        if len(candidates) > limit:
            awake = [self._is_awake(i) for i in range(len(self.experts))]
            p = self.competition.probabilities(awake)
            # Stable: probability descending, expert index ascending.
            candidates = sorted(
                candidates, key=lambda c: (-p[c[0]], c[0])
            )[:limit]
        return candidates

    def _candidate_tasks(
        self, candidates: List[Tuple[int, int]]
    ) -> List[Tuple[Any, List[str], int]]:
        return [
            (
                (index, bits),
                [self.layers[m][0]
                 for m in self.experts[index][1]],
                bits,
            )
            for index, bits in candidates
        ]

    def _start_speculative_probes(self, next_step: int) -> None:
        """Kick off the next step's probe fan-out before this step ends.

        Called right after a successful collaboration: the model is in
        its final state for this step, the Hedge state is already what
        the next step's round 0 will draw from, and the pinned probe
        subset is reusable — so the next step's candidate losses are
        fully determined and can compute on the workers while the
        parent spends wall-clock on accounting, the checkpoint and the
        next pre-step evaluation.  The handle is collected (or
        discarded, generation-tagged) by the next ``_fan_out_probes``.
        """
        cfg = self.config
        if (
            not cfg.probe_pipeline
            or cfg.probe_workers <= 0
            or self._pool_failed
            or self._stop_requested
            or (cfg.max_steps is not None and next_step >= cfg.max_steps)
        ):
            return
        engine = self.probe_engine
        if getattr(engine, "_pinned", None) is None or not getattr(
            engine, "_pin_reusable", False
        ):
            # The next begin_step would re-pin the probe subset, so a
            # speculative loss could score on different data: don't.
            return
        candidates = self._probe_candidates()
        if len(candidates) < 2:
            return
        pool = self._ensure_pool()
        if pool is None:
            return
        supervisor = self._ensure_supervisor()
        tasks = self._candidate_tasks(candidates)
        try:
            with self.telemetry.span(
                "probe_fanout_start", step=next_step,
                candidates=len(candidates), speculative=True,
            ) as span:
                trace = {
                    "trace_id": f"step{next_step}",
                    "parent_span": getattr(span, "span_id", None),
                    "step": next_step,
                }
                started = supervisor.start_round(
                    pool,
                    named_state_arrays(self.model),
                    get_bit_config(self.model),
                    engine.pinned.batches,
                    tasks,
                    trace=trace,
                )
        except Exception as err:
            self._degrade_pool(next_step, str(err))
            return
        if started is not None:
            self._spec = (next_step, started)

    def _collect_spec(
        self,
        step: int,
        spec: Tuple[int, Any],
        candidates: List[Tuple[int, int]],
    ) -> bool:
        """Collect a speculative round; True when it covered this step.

        Results for candidates the realized step does not rank are
        discarded (their forward passes are still counted — speculative
        waste, like an undrawn prefetch).  Candidates the speculation
        missed evaluate serially inside the Hedge loop, exactly like a
        salvaged fan-out.
        """
        spec_step, started = spec
        pool = self._pool
        if pool is None or spec_step != step:
            return False
        telemetry = self.telemetry
        supervisor = self._ensure_supervisor()
        try:
            with telemetry.span(
                "probe_fanout", step=step, speculative=True,
                candidates=len(candidates),
            ):
                report = supervisor.collect_round(pool, started)
        except Exception as err:
            self._degrade_pool(step, str(err))
            return True
        self._account_fanout_report(step, report, supervisor)
        self._prefetch_outcomes(
            report.outcomes,
            valid_keys={(index, bits) for index, bits in candidates},
        )
        if report.degraded:
            self._degrade_pool(step, "respawn budget exhausted")
        return True

    def _account_fanout_report(
        self, step: int, report: Any, supervisor: Any
    ) -> None:
        """Counters, totals, gauges and logs for one FanOutReport."""
        telemetry = self.telemetry
        if report.respawned:
            telemetry.counter("ccq.pool_respawns").inc(report.respawned)
        if report.salvaged:
            telemetry.counter("ccq.pool_salvaged_results").inc(
                report.salvaged
            )
        if report.requeued:
            telemetry.counter("ccq.pool_requeued").inc(report.requeued)
        if report.quarantined:
            telemetry.counter("ccq.quarantined_candidates").inc(
                len(report.quarantined)
            )
        totals = self._fanout_totals
        totals["rounds"] += 1
        totals["attempted"] += report.attempted
        totals["completed"] += report.completed
        totals["salvaged"] += report.salvaged
        totals["requeued"] += report.requeued
        totals["respawned"] += report.respawned
        totals["quarantined"] += len(report.quarantined)
        totals["missing"] += len(report.missing)
        totals["degraded_rounds"] += 1 if report.degraded else 0
        if telemetry.enabled:
            telemetry.gauge("ccq.pool_deadline_s").set(report.deadline_s)
            if supervisor.ema_batch_s is not None:
                telemetry.gauge("ccq.pool_ema_batch_s").set(
                    supervisor.ema_batch_s
                )
            telemetry.event(
                "fanout_report",
                step=step,
                attempted=report.attempted,
                completed=report.completed,
                salvaged=report.salvaged,
                requeued=report.requeued,
                respawned=report.respawned,
                quarantined=len(report.quarantined),
                missing=len(report.missing),
                degraded=report.degraded,
                deadline_s=report.deadline_s,
                ema_batch_s=supervisor.ema_batch_s,
            )
        for fault in report.faults:
            telemetry.logger.warning(
                "probe pool fault absorbed", step=step, fault=fault,
            )
        if report.missing:
            # Salvage contract: unprefetched candidates simply evaluate
            # serially inside the Hedge loop — identical losses, so the
            # trajectory cannot tell.
            telemetry.logger.info(
                "missing probe results will evaluate serially",
                step=step, missing=len(report.missing),
            )

    def _prefetch_outcomes(
        self,
        raw_outcomes: Dict[Any, Dict[str, Any]],
        valid_keys: Optional[Set[Any]] = None,
    ) -> None:
        """Convert raw worker outcomes and stage them in the engine.

        ``valid_keys`` (speculative collection) filters which results
        reach the engine; everything is still counted as a forward
        pass, since the workers did compute it.
        """
        telemetry = self.telemetry
        outcomes: Dict[Any, ProbeOutcome] = {}
        discarded = 0
        for key, raw in raw_outcomes.items():
            ok = raw["status"] == "ok"
            elapsed = float(raw.get("elapsed", 0.0))
            self.probe_forward_passes += 1
            if telemetry.enabled:
                telemetry.histogram(
                    "ccq.probe_worker_eval_s", worker=raw.get("worker")
                ).observe(elapsed)
                if ok:
                    telemetry.histogram("ccq.probe_loss").observe(
                        float(raw["loss"])
                    )
            if valid_keys is not None and key not in valid_keys:
                discarded += 1
                continue
            outcomes[key] = ProbeOutcome(
                loss=raw.get("loss"),
                elapsed=elapsed,
                diverged=not ok,
                worker=raw.get("worker"),
                message=str(raw.get("message", "")),
                stage=str(raw.get("stage", "")),
                batch_index=raw.get("batch_index"),
                value=raw.get("value"),
            )
        telemetry.counter("ccq.probe_pool_evals").inc(len(outcomes))
        if valid_keys is not None:
            telemetry.counter("ccq.spec_probe_hits").inc(len(outcomes))
            if discarded:
                telemetry.counter("ccq.spec_probe_discarded").inc(
                    discarded
                )
        self.probe_engine.prefetch(outcomes)

    def _fanout_stats(self) -> Dict[str, Any]:
        """Fan-out totals for CCQResult / results JSON (empty if serial)."""
        if not self._fanout_totals["rounds"]:
            return {}
        stats: Dict[str, Any] = dict(self._fanout_totals)
        if (
            self._supervisor is not None
            and self._supervisor.ema_batch_s is not None
        ):
            stats["ema_batch_s"] = self._supervisor.ema_batch_s
        return stats

    # -- quantized-weight cache scoping -----------------------------------------

    def _qcache_reset(self) -> None:
        """(Re-)arm the frozen-weight cache for a pure-inference phase.

        Clears any entries quantized from weights that may since have
        moved; a no-op when the cache is configured off.
        """
        if self.config.qweight_cache:
            enable_weight_cache(self.model, True)

    def _qcache_off(self) -> None:
        """Disarm the cache before a phase that trains the weights.

        Collaboration interleaves weight updates with per-epoch
        evaluations, so serving any cached tensor there would be
        stale; the cache stays off until the next :meth:`_qcache_reset`.
        """
        if self.config.qweight_cache:
            enable_weight_cache(self.model, False)

    def _qweight_totals(self) -> Tuple[int, int]:
        stats = weight_cache_stats(self.model)
        return (
            self._qweight_restored[0] + stats["hits"],
            self._qweight_restored[1] + stats["misses"],
        )

    # -- snapshots / checkpoints ------------------------------------------------

    def _capture_snapshot(self) -> Dict[str, Any]:
        """In-memory pre-step snapshot for divergence rollback."""
        return {
            "model": self.model.state_dict(),
            "optim": self.optimizer.state_dict(),
            "bits": get_bit_config(self.model),
        }

    def _restore_snapshot(self, snapshot: Dict[str, Any]) -> None:
        self.model.load_state_dict(snapshot["model"])
        self.optimizer.load_state_dict(snapshot["optim"])
        set_bit_config(self.model, snapshot["bits"])

    def _fingerprint(self) -> Dict[str, Any]:
        """The trajectory-defining configuration, JSON-normalized.

        A resumed run must match this exactly; budget knobs
        (``max_steps``, ``target_compression``) are deliberately
        excluded so a finished run can be resumed with a larger budget.
        """
        cfg = self.config
        lam = cfg.lambda_schedule
        return {
            "layers": [name for name, _ in self.layers],
            "experts": [name for name, _ in self.experts],
            "target_config": (
                None if self.target_config is None
                else {k: self.target_config[k]
                      for k in sorted(self.target_config)}
            ),
            "ladder": list(cfg.ladder.levels),
            "gamma": cfg.gamma,
            "probes_per_step": cfg.probes_per_step,
            "probe_batches": cfg.probe_batches,
            "lambda_schedule": (
                None if lam is None
                else [lam.start, lam.end, lam.decay_steps]
            ),
            "recovery": asdict(cfg.recovery),
            "lr": cfg.lr,
            "momentum": cfg.momentum,
            "weight_decay": cfg.weight_decay,
            "initial_recovery_epochs": cfg.initial_recovery_epochs,
            "initial_recovery_adaptive": cfg.initial_recovery_adaptive,
            "quantize_activations": cfg.quantize_activations,
            "size_metric": cfg.size_metric,
            "seed": cfg.seed,
            "max_retries": cfg.max_retries,
            "retry_lr_decay": cfg.retry_lr_decay,
        }

    @staticmethod
    def _loader_rng_state(loader: Any) -> Optional[Dict[str, Any]]:
        rng = getattr(loader, "_rng", None)
        if isinstance(rng, np.random.Generator):
            return get_rng_state(rng)
        return None

    @staticmethod
    def _dataset_rng_state(loader: Any) -> Optional[Dict[str, Any]]:
        rng = getattr(getattr(loader, "dataset", None), "_rng", None)
        if isinstance(rng, np.random.Generator):
            return get_rng_state(rng)
        return None

    def _checkpoint(self) -> None:
        """Atomically persist the complete search state (if enabled).

        The ``checkpoint`` span is emitted even when checkpointing is
        disabled (zero duration, ``enabled=False``) so the per-stage
        breakdown always shows the stage.
        """
        with self.telemetry.span(
            "checkpoint", step=self._step, enabled=self.store is not None
        ):
            if self.store is None:
                return
            self._save_seq += 1
            self._checkpoint_inner()
        self.telemetry.counter("ccq.checkpoints").inc()

    def _checkpoint_inner(self) -> None:
        state = {
            "version": 1,
            "fingerprint": self._fingerprint(),
            "step": self._step,
            "best_accuracy": self._best_accuracy,
            "probe_forward_passes": self.probe_forward_passes,
            "probe_cache_hits": self.probe_engine.cache_hits,
            "probe_cache_misses": self.probe_engine.cache_misses,
            "qweight_cache_hits": self._qweight_totals()[0],
            "qweight_cache_misses": self._qweight_totals()[1],
            "fanout_totals": dict(self._fanout_totals),
            "forced_asleep": sorted(self._forced_asleep),
            "initial_eval": eval_to_json(self._initial_eval),
            "records": [record_to_json(r) for r in self._records],
            "hedge": self.competition.state_dict(),
            "train_loader_rng": self._loader_rng_state(self.train_loader),
            "train_dataset_rng": self._dataset_rng_state(self.train_loader),
            # Probes pin their data straight from the dataset, but the
            # full evals (and a shuffling val loader's batch *order*,
            # which shifts loss summation order by a few ulps) still
            # consume this RNG — rewind it too for bit-exact resumes.
            "val_loader_rng": self._loader_rng_state(self.val_loader),
            "val_dataset_rng": self._dataset_rng_state(self.val_loader),
        }
        self.store.save(self.model, self.optimizer, state, seq=self._save_seq)
        self.store.journal.append(
            "checkpoint", step=self._step, save_seq=self._save_seq
        )

    def _restore_from_store(self) -> EvalResult:
        """Load the latest checkpoint and rewind every RNG to match."""
        assert self.store is not None
        state = self.store.load(self.model, self.optimizer)
        for warning in self.store.load_warnings:
            # A snapshot failed integrity verification and the store
            # rolled back to its predecessor: re-running the lost step
            # is cheap, silently trusting corrupt bytes is not.
            self.telemetry.counter(
                "ccq.checkpoint_integrity_failures"
            ).inc()
            self.telemetry.logger.warning(
                "checkpoint failed integrity check; rolled back to "
                "predecessor",
                detail=warning,
            )
        saved_fp = state.get("fingerprint", {})
        current_fp = self._fingerprint()
        if saved_fp != current_fp:
            mismatched = sorted(
                key for key in set(saved_fp) | set(current_fp)
                if saved_fp.get(key) != current_fp.get(key)
            )
            raise CheckpointError(
                f"checkpoint in {self.store.directory} was written by a "
                f"run with a different configuration; mismatched keys: "
                f"{mismatched}"
            )
        self._step = int(state["step"])
        self._best_accuracy = float(state["best_accuracy"])
        self.probe_forward_passes = int(state["probe_forward_passes"])
        # Older checkpoints (pre probe engine) carry no cache counters.
        self.probe_engine.cache_hits = int(state.get("probe_cache_hits", 0))
        self.probe_engine.cache_misses = int(
            state.get("probe_cache_misses", 0)
        )
        # Quantized-weight cache counters resume as an offset: the live
        # per-layer counters restart from whatever this process already
        # accumulated, so zero them and carry the saved totals aside.
        for _, layer in self.layers:
            layer._wq_cache_hits = 0
            layer._wq_cache_misses = 0
        self._qweight_restored = (
            int(state.get("qweight_cache_hits", 0)),
            int(state.get("qweight_cache_misses", 0)),
        )
        # Pre-observability checkpoints carry no fan-out totals.
        saved_fanout = state.get("fanout_totals")
        if isinstance(saved_fanout, dict):
            for key in self._fanout_totals:
                self._fanout_totals[key] = int(saved_fanout.get(key, 0))
        self._qweight_prev = self._qweight_restored
        self._forced_asleep = set(
            int(i) for i in state.get("forced_asleep", [])
        )
        self._initial_eval = eval_from_json(state["initial_eval"])
        self._records = [record_from_json(r) for r in state["records"]]
        self.competition.load_state_dict(state["hedge"])
        loader_rng = state.get("train_loader_rng")
        if loader_rng is not None and hasattr(self.train_loader, "_rng"):
            set_rng_state(self.train_loader._rng, loader_rng)
        dataset_rng = state.get("train_dataset_rng")
        dataset = getattr(self.train_loader, "dataset", None)
        if dataset_rng is not None and hasattr(dataset, "_rng"):
            set_rng_state(dataset._rng, dataset_rng)
        # Absent in pre-engine checkpoints; those ran unshuffled val
        # loaders, for which the fresh seed state is already correct.
        val_rng = state.get("val_loader_rng")
        if val_rng is not None and hasattr(self.val_loader, "_rng"):
            set_rng_state(self.val_loader._rng, val_rng)
        val_dataset_rng = state.get("val_dataset_rng")
        val_dataset = getattr(self.val_loader, "dataset", None)
        if val_dataset_rng is not None and hasattr(val_dataset, "_rng"):
            set_rng_state(val_dataset._rng, val_dataset_rng)
        self._save_seq = int(state.get("save_seq", 0))
        self.store.journal.append(
            "resumed", step=self._step, save_seq=self._save_seq
        )
        return self._initial_eval

    # -- the main loop ------------------------------------------------------------

    def initialize(self) -> EvalResult:
        """Quantize every participating layer to ``N^(0)`` and recover.

        With ``initial_recovery_adaptive`` the post-quantization model is
        fine-tuned toward the *float* accuracy using the same recovery
        configuration as the per-step collaboration; otherwise a fixed
        ``initial_recovery_epochs`` epochs are run.
        """
        with self.telemetry.span("initialize"):
            float_eval = evaluate(
                self.model, self.val_loader, telemetry=self.telemetry
            )
            self.telemetry.gauge("ccq.float_accuracy").set(
                float_eval.accuracy
            )
            self.telemetry.logger.info(
                "float baseline evaluated",
                accuracy=float_eval.accuracy, loss=float_eval.loss,
            )
            start = self.config.ladder.start
            for i in range(len(self.experts)):
                if self._participates(i):
                    self._set_bits(i, start)
            # The initial recovery trains — same cache scoping as a
            # per-step collaboration.
            self._qcache_off()
            if self.config.initial_recovery_adaptive:
                self.optimizer.lr = self._base_lr
                recover(
                    self.model,
                    self.train_loader,
                    self.val_loader,
                    self.optimizer,
                    self.config.recovery,
                    reference_accuracy=float_eval.accuracy,
                    telemetry=self.telemetry,
                    trainer=self._recover_trainer(),
                )
            else:
                train_fn = self._recover_trainer() or train_epoch
                for _ in range(self.config.initial_recovery_epochs):
                    train_fn(
                        self.model, self.train_loader, self.optimizer,
                        max_batches=self.config.recovery.max_batches_per_epoch,
                        telemetry=self.telemetry,
                    )
            self._qcache_reset()
            return evaluate(
                self.model, self.val_loader, telemetry=self.telemetry
            )

    def _execute_step(self, step: int) -> Optional[StepRecord]:
        """One quantization step with rollback-on-divergence.

        Returns the completed :class:`StepRecord`, or ``None`` when every
        retry failed and the step degraded to a journaled skip (the
        winner's bit drop reverted, the expert put to sleep).
        """
        with self.telemetry.span("step", step=step):
            return self._execute_step_inner(step)

    def _execute_step_inner(self, step: int) -> Optional[StepRecord]:
        store = self.store
        telemetry = self.telemetry
        # The previous step's collaboration moved the weights; from
        # here until this step's collaboration the model is frozen, so
        # the whole stage (pre eval, every probe, post-quant eval)
        # shares one quantized-weight cache generation.
        self._qcache_reset()
        try:
            with telemetry.span("eval", stage="pre_step", step=step):
                pre = evaluate(
                    self.model, self.val_loader, telemetry=telemetry
                )
        except DivergenceError as err:
            # The *standing* model diverged before we touched anything —
            # there is no snapshot to roll back to; journal and surface.
            telemetry.counter("ccq.fatal_divergence").inc()
            telemetry.logger.error(
                "standing model diverged before step", step=step,
            )
            if store is not None:
                store.journal.append(
                    "fatal_divergence", step=step, **err.context()
                )
            raise
        # New stage: drop the previous step's memo (the collaboration
        # just changed the weights) and pin this step's probe subset.
        self.probe_engine.begin_step(step)
        # Whole-stage probe wall clock (fan-out + sequential Hedge
        # loop), in both serial and parallel modes — the number the
        # search-cost benchmark compares across worker counts.
        probe_t0 = time.perf_counter()
        self._fan_out_probes(step)
        result = self.competition.run_step(
            evaluate_candidate=self._guarded_probe,
            awake=self._awake_mask(),
            layer_sizes=self._layer_sizes(),
            step=step,
        )
        telemetry.histogram("ccq.probe_stage_s").observe(
            time.perf_counter() - probe_t0
        )
        if telemetry.enabled:
            # Per-expert Hedge weight + current bit gauges, labeled by
            # expert name, so the learned preference is inspectable.
            for (expert_name, _), weight in zip(
                self.experts, self.competition.weights
            ):
                telemetry.gauge(
                    "hedge.expert_weight", expert=expert_name
                ).set(float(weight))
            for layer_name, layer in self.layers:
                bits = layer.w_bits
                telemetry.gauge(
                    "ccq.layer_bits", layer=layer_name
                ).set(float(bits if bits is not None else 32))
        winner = result.winner
        name, _ = self.experts[winner]
        from_bits = self._current_bits(winner)
        to_bits = self._next_bits(winner)

        with telemetry.span("snapshot", step=step):
            snapshot = self._capture_snapshot()
        post: Optional[EvalResult] = None
        report: Optional[RecoveryReport] = None
        for attempt in self.retry_policy.attempts():
            self._set_bits(winner, to_bits)
            self.optimizer.lr = self.retry_policy.lr_for(
                attempt, self._base_lr
            )
            on_epoch = None
            if store is not None:
                on_epoch = (
                    lambda epoch, acc, loss, _attempt=attempt:
                    store.journal.append(
                        "recover_epoch", step=step, layer=name,
                        attempt=_attempt, epoch=epoch,
                        accuracy=acc, train_loss=loss,
                    )
                )
            try:
                with telemetry.span(
                    "eval", stage="post_quant", step=step, layer=name
                ):
                    post = evaluate(
                        self.model, self.val_loader, telemetry=telemetry
                    )
                # Collaboration trains: no cached quantized weight may
                # be served past this point (recover's own per-epoch
                # evals run on moving weights).
                self._qcache_off()
                with telemetry.span(
                    "recover", step=step, layer=name, attempt=attempt
                ):
                    report = recover(
                        self.model,
                        self.train_loader,
                        self.val_loader,
                        self.optimizer,
                        self.config.recovery,
                        reference_accuracy=max(
                            self._best_accuracy, pre.accuracy
                        ),
                        on_epoch=on_epoch,
                        telemetry=telemetry,
                        trainer=self._recover_trainer(),
                    )
                break
            except DivergenceError as err:
                self._restore_snapshot(snapshot)
                # Weights rolled back: re-arm the cache for the next
                # attempt's post-quant eval.
                self._qcache_reset()
                telemetry.counter("ccq.recovery_retry", layer=name).inc()
                telemetry.logger.warning(
                    "recovery diverged; rolled back and retrying",
                    step=step, layer=name, attempt=attempt,
                    retries_left=self.config.max_retries - attempt,
                )
                if store is not None:
                    store.journal.append(
                        "recovery_retry", step=step, layer=name,
                        attempt=attempt,
                        retries_left=self.config.max_retries - attempt,
                        lr=self.retry_policy.lr_for(
                            attempt + 1, self._base_lr
                        ),
                        **err.context(),
                    )
        else:
            # All attempts diverged: the snapshot restore above already
            # reverted the bit drop; retire the expert and move on.
            self._forced_asleep.add(winner)
            telemetry.counter("ccq.expert_skipped", layer=name).inc()
            telemetry.event(
                "expert_skipped", step=step, layer=name,
                from_bits=from_bits, to_bits=to_bits,
            )
            telemetry.logger.warning(
                "expert retired after repeated divergence",
                step=step, layer=name,
                attempts=self.retry_policy.max_attempts,
            )
            if store is not None:
                store.journal.append(
                    "expert_skipped", step=step, layer=name,
                    from_bits=from_bits, to_bits=to_bits,
                    attempts=self.retry_policy.max_attempts,
                )
            return None

        self._best_accuracy = max(self._best_accuracy, report.end_accuracy)
        # Collaboration is done, so the model (and the Hedge state the
        # next round 0 draws from) is final: overlap the step's tail —
        # accounting, checkpoint, next pre-eval — with the next step's
        # probe fan-out on the workers.
        self._start_speculative_probes(step + 1)
        # Post-step accounting (size report, power trace, journaling) is
        # real wall-clock; the ``account`` stage span keeps it out of
        # the report's uncovered remainder.
        with telemetry.span("account", step=step):
            compression = model_size_report(self.model).compression
            record = StepRecord(
                step=step,
                layer_index=winner,
                layer_name=name,
                from_bits=from_bits,
                to_bits=to_bits,
                lambda_used=result.lambda_used,
                pre_accuracy=pre.accuracy,
                post_quant_accuracy=post.accuracy,
                recovered_accuracy=report.end_accuracy,
                recovery=report,
                competition=result,
                compression=compression,
            )
            telemetry.counter("ccq.steps").inc()
            if telemetry.enabled and self.config.qweight_cache:
                hits, misses = self._qweight_totals()
                telemetry.counter("ccq.qweight_cache_hits").inc(
                    hits - self._qweight_prev[0]
                )
                telemetry.counter("ccq.qweight_cache_misses").inc(
                    misses - self._qweight_prev[1]
                )
                self._qweight_prev = (hits, misses)
            telemetry.gauge("ccq.accuracy").set(report.end_accuracy)
            telemetry.gauge("ccq.compression").set(compression)
            telemetry.event(
                "step_complete", step=step, layer=name,
                from_bits=from_bits, to_bits=to_bits,
                lambda_used=result.lambda_used,
                pre_accuracy=pre.accuracy,
                post_quant_accuracy=post.accuracy,
                recovered_accuracy=report.end_accuracy,
                recovery_epochs=report.epochs_used,
                compression=compression,
            )
            self._record_power(step)
            if store is not None:
                store.journal.append(
                    "step_complete", record=record_to_json(record)
                )
        telemetry.logger.info(
            f"step {step:3d}: {name} {from_bits}b->{to_bits}b",
            valley=post.accuracy, peak=report.end_accuracy,
            epochs=report.epochs_used, compression=compression,
        )
        return record

    def _record_power(self, step: int) -> None:
        """Per-step MAC-power gauge (needs ``config.input_shape``)."""
        if not self.telemetry.enabled or self.config.input_shape is None:
            return
        from ..hardware.power import network_power

        network_power(self.model, self.config.input_shape).record(
            self.telemetry, step=step
        )

    def request_stop(self) -> None:
        """Ask the run to wind down at the next step boundary.

        Safe to call from a signal handler: it only sets a flag.  The
        loop finishes the step in flight (checkpointing it as usual),
        journals an ``interrupted`` event, runs the final evaluation
        and returns a complete :class:`CCQResult` — so a SIGTERM'd run
        leaves exactly the same artifacts as a finished one.
        """
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    def run(self, resume: bool = False) -> CCQResult:
        """Execute Algorithm 1 end to end and return the full trace.

        With ``resume=True`` (requires ``CCQConfig.checkpoint_dir``) the
        run restarts from the last atomic checkpoint if one exists, and
        continues the interrupted trajectory exactly; otherwise it starts
        fresh.
        """
        try:
            with self.telemetry.span("run", resume=resume):
                result = self._run_inner(resume)
        finally:
            # The probe pool (if any) must not outlive the run — also
            # on a kill mid-step, so the shared segment is unlinked and
            # the workers reaped before a resuming process starts.
            self._close_pool()
        self.telemetry.flush()
        return result

    def _run_inner(self, resume: bool) -> CCQResult:
        telemetry = self.telemetry
        resumed = False
        if resume:
            if self.store is None:
                raise ValueError(
                    "run(resume=True) requires CCQConfig.checkpoint_dir"
                )
            if self.store.has_checkpoint():
                self._restore_from_store()
                resumed = True
                telemetry.event("resumed", step=self._step)
                telemetry.logger.info(
                    "resumed from checkpoint", step=self._step,
                )
        if not resumed:
            if self.store is not None:
                self.store.journal.append(
                    "run_start", fingerprint=self._fingerprint()
                )
            self._records = []
            self._forced_asleep = set()
            self._step = 0
            initial = self.initialize()
            self._initial_eval = initial
            self._best_accuracy = initial.accuracy
            telemetry.logger.info(
                "initialized at ladder start",
                accuracy=initial.accuracy, loss=initial.loss,
            )
            if self.store is not None:
                self.store.journal.append(
                    "initialized",
                    accuracy=initial.accuracy, loss=initial.loss,
                )
            self._checkpoint()

        records = self._records
        while True:
            if self._stop_requested:
                telemetry.event("interrupted", step=self._step)
                telemetry.logger.warning(
                    "stop requested; winding down after checkpoint",
                    step=self._step,
                )
                if self.store is not None:
                    self.store.journal.append(
                        "interrupted", step=self._step
                    )
                break
            awake = self._awake_mask()
            if not any(awake):
                break
            if (
                self.config.max_steps is not None
                and self._step >= self.config.max_steps
            ):
                break
            if self.config.target_compression is not None:
                # The last completed step already measured the model
                # (a skipped step reverts its bit drop, so the figure
                # stays valid); only a recordless run needs a fresh
                # report.
                current = (
                    records[-1].compression if records
                    else model_size_report(self.model).compression
                )
                if current >= self.config.target_compression:
                    break

            record = self._execute_step(self._step)
            if record is not None:
                records.append(record)
                self._step += 1
                telemetry.progress.update(
                    step=self._step,
                    total=self.config.max_steps,
                    layer=f"{record.layer_name}->{record.to_bits}b",
                    acc=record.recovered_accuracy,
                    compr=f"{record.compression:.2f}x",
                )
            self._checkpoint()
            telemetry.flush()

        telemetry.progress.close()
        self._qcache_reset()
        with telemetry.span("eval", stage="final"):
            final = evaluate(
                self.model, self.val_loader, telemetry=telemetry
            )
        compression = model_size_report(self.model).compression
        telemetry.gauge("ccq.accuracy").set(final.accuracy)
        telemetry.gauge("ccq.compression").set(compression)
        telemetry.event(
            "run_complete", steps=self._step,
            accuracy=final.accuracy, compression=compression,
        )
        telemetry.logger.info(
            "run complete", steps=self._step,
            accuracy=final.accuracy, compression=compression,
        )
        if self.store is not None:
            self.store.journal.append(
                "run_complete",
                steps=self._step,
                accuracy=final.accuracy,
                compression=compression,
            )
        qweight_hits, qweight_misses = self._qweight_totals()
        return CCQResult(
            records=records,
            final_eval=final,
            initial_eval=self._initial_eval,
            bit_config=get_bit_config(self.model),
            compression=compression,
            probe_forward_passes=self.probe_forward_passes,
            probe_cache_hits=self.probe_engine.cache_hits,
            probe_cache_misses=self.probe_engine.cache_misses,
            qweight_cache_hits=qweight_hits,
            qweight_cache_misses=qweight_misses,
            fanout_stats=self._fanout_stats(),
        )
