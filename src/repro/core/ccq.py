"""The Competitive-Collaborative Quantization driver (Algorithm 1).

:class:`CCQQuantizer` orchestrates the full framework of the paper:

1. quantize every layer to the ladder's starting precision ``N^(0)`` and
   briefly fine-tune;
2. repeat until every layer sleeps (or a step/compression budget is hit):

   a. **competition** — probe candidate one-layer quantizations on the
      validation set, update the exponential-weights distribution, mix in
      the memory term (Eq. 7), and draw a winner;
   b. quantize the winner to its next bit level;
   c. **collaboration** — fine-tune all layers (weights + quantizer
      parameters) until the accuracy recovers.

The driver is *policy-agnostic*: it accepts any registered quantization
policy (or an already-converted model) and only ever manipulates per-layer
bit widths.  Passing ``target_config`` pins each layer's final precision,
which is how Table I forces CCQ to reach the exact ``fp-3b-fp``
configuration of the one-shot baselines, but gradually.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.data import DataLoader
from ..nn.modules import Module
from ..quantization.policy import QuantPolicy
from ..quantization.qmodules import (
    get_bit_config,
    quantize_model,
    quantized_layers,
)
from .collaboration import RecoveryConfig, RecoveryReport, recover
from .competition import CompetitionResult, HedgeCompetition, LambdaSchedule
from .compression import model_size_report
from .schedule import DEFAULT_LADDER, BitLadder
from .training import EvalResult, evaluate, make_sgd, train_epoch

__all__ = ["CCQConfig", "StepRecord", "CCQResult", "CCQQuantizer"]

BitTarget = Optional[int]


@dataclass(frozen=True)
class CCQConfig:
    """All knobs of the framework, with the paper's defaults."""

    ladder: BitLadder = DEFAULT_LADDER
    gamma: float = 1.0
    probes_per_step: int = 8
    probe_batches: Optional[int] = 2     # val-subset size for probes
    lambda_schedule: Optional[LambdaSchedule] = None
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 0.0
    max_steps: Optional[int] = None      # T (None = until all layers sleep)
    target_compression: Optional[float] = None
    initial_recovery_epochs: int = 1
    # Recover the initial N^(0) quantization with the full collaboration
    # machinery (adaptive, targeting the float accuracy) instead of a
    # fixed epoch count.  Policies whose activation transform is lossy
    # even at high bits (e.g. DoReFa's [0, 1] clip) need this: without
    # it the run starts from a collapsed reference and the adaptive
    # recoveries never engage.
    initial_recovery_adaptive: bool = True
    quantize_activations: bool = True    # step a_bits together with w_bits
    # What |Q_m| measures in the Eq. 7 memory mixing: "memory" (the
    # paper's storage bits) or "macs" (compute cost — a hardware-aware
    # variant in the spirit of HAQ's latency/energy constraints, which
    # prioritizes quantizing the layers that dominate MAC energy).
    size_metric: str = "memory"
    # Input shape (C, H, W) used to trace per-layer MACs when
    # size_metric="macs"; required in that mode.
    input_shape: Optional[Tuple[int, int, int]] = None
    seed: int = 0


@dataclass
class StepRecord:
    """Everything that happened in one quantization step."""

    step: int
    layer_index: int
    layer_name: str
    from_bits: int
    to_bits: int
    lambda_used: float
    pre_accuracy: float
    post_quant_accuracy: float
    recovered_accuracy: float
    recovery: RecoveryReport
    competition: CompetitionResult
    compression: float


@dataclass
class CCQResult:
    """Final state and full trace of a CCQ run."""

    records: List[StepRecord]
    final_eval: EvalResult
    initial_eval: EvalResult
    bit_config: Dict[str, Tuple[Optional[int], Optional[int]]]
    compression: float
    probe_forward_passes: int

    @property
    def accuracy_trace(self) -> List[Tuple[int, float, str]]:
        """Flattened ``(epoch, accuracy, event)`` series for Fig. 2.

        Each step contributes its post-quantization valley followed by
        the per-epoch recovery accuracies.
        """
        trace: List[Tuple[int, float, str]] = []
        epoch = 0
        trace.append((epoch, self.initial_eval.accuracy, "initial"))
        for rec in self.records:
            epoch += 1
            trace.append((epoch, rec.post_quant_accuracy,
                          f"quantize:{rec.layer_name}->{rec.to_bits}b"))
            for acc in rec.recovery.accuracy_history[1:]:
                epoch += 1
                trace.append((epoch, acc, "recover"))
        return trace


class CCQQuantizer:
    """Run the competitive-collaborative framework on one model."""

    def __init__(
        self,
        model: Module,
        train_loader: DataLoader,
        val_loader: DataLoader,
        config: Optional[CCQConfig] = None,
        policy: "QuantPolicy | str | None" = None,
        target_config: Optional[Dict[str, BitTarget]] = None,
        groups: Optional[Dict[str, Sequence[str]]] = None,
    ) -> None:
        self.config = config or CCQConfig()
        if policy is not None:
            quantize_model(model, policy)
        self.model = model
        self.train_loader = train_loader
        self.val_loader = val_loader
        self.layers = quantized_layers(model)
        if not self.layers:
            raise ValueError(
                "model has no quantized layers; pass a policy or convert "
                "it with quantize_model() first"
            )
        self.target_config = dict(target_config) if target_config else None
        if self.target_config is not None:
            names = {name for name, _ in self.layers}
            unknown = set(self.target_config) - names
            if unknown:
                raise KeyError(f"target_config names unknown layers: {unknown}")
        # Experts: the units that compete.  One per layer by default; a
        # ``groups`` mapping {expert_name: [layer names]} coarsens the
        # granularity to blocks (paper: "different parts of the model,
        # e.g. layers") — grouped layers always share one precision.
        self.experts = self._build_experts(groups)
        self.rng = np.random.default_rng(self.config.seed)
        self.competition = HedgeCompetition(
            n_layers=len(self.experts),
            gamma=self.config.gamma,
            probes_per_step=self.config.probes_per_step,
            lambda_schedule=self.config.lambda_schedule,
            rng=self.rng,
        )
        self.optimizer = make_sgd(
            model,
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self._base_lr = self.config.lr
        self.probe_forward_passes = 0
        if self.config.size_metric not in ("memory", "macs"):
            raise ValueError(
                f"size_metric must be 'memory' or 'macs', "
                f"got {self.config.size_metric!r}"
            )
        self._mac_counts: Optional[Dict[str, int]] = None
        if self.config.size_metric == "macs":
            if self.config.input_shape is None:
                raise ValueError(
                    "size_metric='macs' requires CCQConfig.input_shape"
                )
            from ..hardware.mac import trace_layer_macs

            self._mac_counts = {
                entry.name: entry.macs
                for entry in trace_layer_macs(
                    self.model, self.config.input_shape
                )
            }

    # -- expert bookkeeping -----------------------------------------------------

    def _build_experts(
        self, groups: Optional[Dict[str, Sequence[str]]]
    ) -> List[Tuple[str, List[int]]]:
        """Resolve the competing units: singleton layers or named groups."""
        index_of = {name: i for i, (name, _) in enumerate(self.layers)}
        if not groups:
            return [(name, [i]) for i, (name, _) in enumerate(self.layers)]
        experts: List[Tuple[str, List[int]]] = []
        claimed: Dict[str, str] = {}
        for expert_name, members in groups.items():
            indices = []
            for member in members:
                if member not in index_of:
                    raise KeyError(
                        f"group {expert_name!r} names unknown layer "
                        f"{member!r}"
                    )
                if member in claimed:
                    raise ValueError(
                        f"layer {member!r} appears in groups "
                        f"{claimed[member]!r} and {expert_name!r}"
                    )
                claimed[member] = expert_name
                indices.append(index_of[member])
            if not indices:
                raise ValueError(f"group {expert_name!r} is empty")
            targets = {self._layer_target(i) for i in indices}
            if len(targets) > 1:
                raise ValueError(
                    f"group {expert_name!r} mixes target precisions "
                    f"{sorted(targets, key=str)}"
                )
            experts.append((expert_name, indices))
        # Ungrouped layers compete individually.
        for i, (name, _) in enumerate(self.layers):
            if name not in claimed:
                experts.append((name, [i]))
        return experts

    def _layer_target(self, layer_index: int) -> BitTarget:
        name, _ = self.layers[layer_index]
        if self.target_config is None:
            return self.config.ladder.floor
        return self.target_config.get(name, self.config.ladder.floor)

    def _target_bits(self, index: int) -> BitTarget:
        """Final precision for expert ``index`` (ladder floor by default)."""
        _, members = self.experts[index]
        return self._layer_target(members[0])

    def _participates(self, index: int) -> bool:
        """Whether the expert is quantized at all (fp-pinned ones are not)."""
        return self._target_bits(index) is not None

    def _current_bits(self, index: int) -> Optional[int]:
        _, members = self.experts[index]
        return self.layers[members[0]][1].w_bits

    def _is_awake(self, index: int) -> bool:
        """Awake = can still be quantized one more level toward its target."""
        target = self._target_bits(index)
        if target is None:
            return False
        current = self._current_bits(index)
        if current is None:
            return False  # not yet initialized
        return current > target

    def _awake_mask(self) -> List[bool]:
        return [self._is_awake(i) for i in range(len(self.experts))]

    def _layer_sizes(self) -> List[float]:
        """Per-expert ``|Q_m|`` for the Eq. 7 mixing.

        ``memory``: current storage bits (the paper's definition) —
        quantize big layers sooner to shrink the model fastest.
        ``macs``: compute cost weighted by current precision — quantize
        the layers that dominate MAC energy sooner.
        """
        sizes = []
        for _, members in self.experts:
            total = 0.0
            for m in members:
                name, layer = self.layers[m]
                bits = layer.w_bits if layer.w_bits is not None else 32
                if self._mac_counts is not None:
                    total += float(self._mac_counts[name] * bits)
                else:
                    total += float(layer.weight.size * bits)
            sizes.append(total)
        return sizes

    def _set_bits(self, index: int, bits: int) -> None:
        _, members = self.experts[index]
        for m in members:
            layer = self.layers[m][1]
            layer.w_bits = bits
            if self.config.quantize_activations:
                layer.a_bits = bits

    def _next_bits(self, index: int) -> int:
        current = self._current_bits(index)
        next_level = self.config.ladder.next_level(current)
        if next_level is None:
            raise RuntimeError("asked for the next level of a floor expert")
        return next_level

    # -- probes ----------------------------------------------------------------

    def _probe_loss(self, index: int) -> float:
        """Validation loss with only expert ``index`` at its next level.

        This is Eq. (4)/(5): a cheap feed-forward on a validation subset;
        the expert's precision is restored immediately afterwards.
        """
        _, members = self.experts[index]
        saved = [
            (self.layers[m][1].w_bits, self.layers[m][1].a_bits)
            for m in members
        ]
        self._set_bits(index, self._next_bits(index))
        try:
            result = evaluate(
                self.model, self.val_loader,
                max_batches=self.config.probe_batches,
            )
        finally:
            for m, (w_bits, a_bits) in zip(members, saved):
                self.layers[m][1].w_bits = w_bits
                self.layers[m][1].a_bits = a_bits
        self.probe_forward_passes += 1
        return result.loss

    # -- the main loop ------------------------------------------------------------

    def initialize(self) -> EvalResult:
        """Quantize every participating layer to ``N^(0)`` and recover.

        With ``initial_recovery_adaptive`` the post-quantization model is
        fine-tuned toward the *float* accuracy using the same recovery
        configuration as the per-step collaboration; otherwise a fixed
        ``initial_recovery_epochs`` epochs are run.
        """
        float_eval = evaluate(self.model, self.val_loader)
        start = self.config.ladder.start
        for i in range(len(self.experts)):
            if self._participates(i):
                self._set_bits(i, start)
        if self.config.initial_recovery_adaptive:
            self.optimizer.lr = self._base_lr
            recover(
                self.model,
                self.train_loader,
                self.val_loader,
                self.optimizer,
                self.config.recovery,
                reference_accuracy=float_eval.accuracy,
            )
        else:
            for _ in range(self.config.initial_recovery_epochs):
                train_epoch(
                    self.model, self.train_loader, self.optimizer,
                    max_batches=self.config.recovery.max_batches_per_epoch,
                )
        return evaluate(self.model, self.val_loader)

    def run(self) -> CCQResult:
        """Execute Algorithm 1 end to end and return the full trace."""
        initial = self.initialize()
        records: List[StepRecord] = []
        best_accuracy = initial.accuracy
        step = 0
        while True:
            awake = self._awake_mask()
            if not any(awake):
                break
            if (
                self.config.max_steps is not None
                and step >= self.config.max_steps
            ):
                break
            if self.config.target_compression is not None:
                current = model_size_report(self.model).compression
                if current >= self.config.target_compression:
                    break

            pre = evaluate(self.model, self.val_loader)
            result = self.competition.run_step(
                evaluate_candidate=self._probe_loss,
                awake=awake,
                layer_sizes=self._layer_sizes(),
                step=step,
            )
            winner = result.winner
            name, _ = self.experts[winner]
            from_bits = self._current_bits(winner)
            to_bits = self._next_bits(winner)
            self._set_bits(winner, to_bits)

            post = evaluate(self.model, self.val_loader)
            self.optimizer.lr = self._base_lr
            reference = max(best_accuracy, pre.accuracy)
            report = recover(
                self.model,
                self.train_loader,
                self.val_loader,
                self.optimizer,
                self.config.recovery,
                reference_accuracy=reference,
            )
            best_accuracy = max(best_accuracy, report.end_accuracy)
            records.append(
                StepRecord(
                    step=step,
                    layer_index=winner,
                    layer_name=name,
                    from_bits=from_bits,
                    to_bits=to_bits,
                    lambda_used=result.lambda_used,
                    pre_accuracy=pre.accuracy,
                    post_quant_accuracy=post.accuracy,
                    recovered_accuracy=report.end_accuracy,
                    recovery=report,
                    competition=result,
                    compression=model_size_report(self.model).compression,
                )
            )
            step += 1

        final = evaluate(self.model, self.val_loader)
        return CCQResult(
            records=records,
            final_eval=final,
            initial_eval=initial,
            bit_config=get_bit_config(self.model),
            compression=model_size_report(self.model).compression,
            probe_forward_passes=self.probe_forward_passes,
        )
