"""Layer-sensitivity analysis: the evidence behind mixed precision.

The paper's motivation (Section I, citing "Are all layers created
equal?") is that layers differ in how much quantization hurts them.  This
module measures that directly: quantize one layer at a time to each
ladder level, evaluate the validation loss/accuracy, and restore — the
same probe primitive CCQ's competition uses, exposed as a standalone
analysis a user can run before choosing a ladder or a λ schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..nn.data import DataLoader
from ..nn.modules import Module
from ..quantization.qmodules import quantized_layers
from .schedule import BitLadder, DEFAULT_LADDER
from .training import EvalResult, evaluate

__all__ = ["LayerProbe", "SensitivityReport", "scan_layer_sensitivity"]


@dataclass(frozen=True)
class LayerProbe:
    """One (layer, bits) probe outcome."""

    layer: str
    bits: int
    loss: float
    accuracy: float


@dataclass
class SensitivityReport:
    """All probes plus the reference (current configuration) evaluation."""

    reference: EvalResult
    probes: List[LayerProbe]

    def by_layer(self) -> Dict[str, List[LayerProbe]]:
        out: Dict[str, List[LayerProbe]] = {}
        for probe in self.probes:
            out.setdefault(probe.layer, []).append(probe)
        return out

    def ranking(self, bits: int) -> List[Tuple[str, float]]:
        """Layers ordered most-sensitive-first at one precision.

        Sensitivity is the loss increase over the reference.
        """
        rows = [
            (p.layer, p.loss - self.reference.loss)
            for p in self.probes
            if p.bits == bits
        ]
        return sorted(rows, key=lambda item: -item[1])

    def most_robust(self, bits: int, k: int = 3) -> List[str]:
        """The ``k`` layers cheapest to quantize at ``bits``."""
        return [name for name, _ in self.ranking(bits)[-k:]][::-1]


def scan_layer_sensitivity(
    model: Module,
    val_loader: DataLoader,
    ladder: BitLadder = DEFAULT_LADDER,
    layers: Optional[Sequence[str]] = None,
    max_batches: Optional[int] = None,
    probe_activations: bool = True,
) -> SensitivityReport:
    """Probe every (layer, ladder-level) pair with pure feed-forwards.

    The model's bit configuration is left exactly as found.  ``layers``
    restricts the scan to a subset (dotted names); ``max_batches`` caps
    the validation subset per probe, mirroring CCQ's cheap probes.
    """
    all_layers = dict(quantized_layers(model))
    if not all_layers:
        raise ValueError("model has no quantized layers")
    if layers is None:
        layers = list(all_layers)
    unknown = set(layers) - set(all_layers)
    if unknown:
        raise KeyError(f"unknown layers: {sorted(unknown)}")

    reference = evaluate(model, val_loader, max_batches=max_batches)
    probes: List[LayerProbe] = []
    for name in layers:
        layer = all_layers[name]
        saved = (layer.w_bits, layer.a_bits)
        try:
            for bits in ladder:
                layer.w_bits = bits
                if probe_activations:
                    layer.a_bits = bits
                result = evaluate(model, val_loader, max_batches=max_batches)
                probes.append(
                    LayerProbe(
                        layer=name, bits=bits,
                        loss=result.loss, accuracy=result.accuracy,
                    )
                )
        finally:
            layer.w_bits, layer.a_bits = saved
    return SensitivityReport(reference=reference, probes=probes)
