"""Divergence detection and bounded-retry policies for long CCQ runs.

A multi-hour gradual-quantization search must not die (or, worse,
silently keep optimizing garbage) because one recovery stage produced a
NaN loss.  This module provides the two primitives the fault-tolerant
driver is built from:

* :class:`DivergenceError` — a typed error raised by the training /
  evaluation loops the moment a loss or gradient goes non-finite, so the
  caller can distinguish "the numerics blew up" from a genuine bug;
* :class:`RetryPolicy` — a bounded retry schedule with learning-rate
  backoff: roll the model back to the pre-step snapshot, halve the
  recovery LR, and try the collaboration stage again, up to
  ``max_retries`` times before degrading gracefully.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

__all__ = [
    "DivergenceError",
    "RetryPolicy",
    "ensure_finite",
    "ensure_all_finite",
]


class DivergenceError(RuntimeError):
    """A loss or gradient went NaN/Inf during training or evaluation.

    Carries enough context (which stage, which batch, the offending
    value) for the run journal to record a useful post-mortem entry.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str = "",
        batch_index: Optional[int] = None,
        value: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.batch_index = batch_index
        self.value = value

    def context(self) -> dict:
        """A JSON-ready description of the divergence for the journal."""
        return {
            "message": str(self),
            "stage": self.stage,
            "batch_index": self.batch_index,
            "value": None if self.value is None or math.isfinite(self.value)
            else repr(self.value),
        }


def ensure_finite(
    value: float,
    what: str,
    *,
    stage: str = "",
    batch_index: Optional[int] = None,
) -> float:
    """Return ``value`` unchanged, raising :class:`DivergenceError` if it
    is NaN or infinite."""
    if not math.isfinite(value):
        raise DivergenceError(
            f"{what} diverged to {value!r}"
            + (f" at batch {batch_index}" if batch_index is not None else "")
            + (f" during {stage}" if stage else ""),
            stage=stage,
            batch_index=batch_index,
            value=float(value),
        )
    return value


def ensure_all_finite(
    array: np.ndarray,
    what: str,
    *,
    stage: str = "",
    batch_index: Optional[int] = None,
) -> None:
    """Raise :class:`DivergenceError` if any element of ``array`` is
    NaN or infinite."""
    if not np.isfinite(array).all():
        bad = array[~np.isfinite(array)]
        raise DivergenceError(
            f"{what} contains {bad.size} non-finite values"
            + (f" at batch {batch_index}" if batch_index is not None else "")
            + (f" during {stage}" if stage else ""),
            stage=stage,
            batch_index=batch_index,
            value=float(bad.flat[0]),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with learning-rate backoff for a failed stage.

    ``attempts()`` yields ``max_retries + 1`` attempt indices (the first
    is the original try); ``lr_for(attempt, base_lr)`` decays the
    learning rate by ``lr_decay`` per retry, so each rollback retries the
    collaboration stage from the identical snapshot but with a gentler
    optimizer.
    """

    max_retries: int = 2
    lr_decay: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 < self.lr_decay <= 1.0:
            raise ValueError(
                f"lr_decay must be in (0, 1], got {self.lr_decay}"
            )

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def attempts(self) -> Iterator[int]:
        return iter(range(self.max_attempts))

    def lr_for(self, attempt: int, base_lr: float) -> float:
        """Learning rate for attempt ``attempt`` (0 = the original try)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return base_lr * (self.lr_decay ** attempt)
