"""``repro.core`` — the paper's contribution: the CCQ framework."""

from .analysis import LayerProbe, SensitivityReport, scan_layer_sensitivity
from .ccq import CCQConfig, CCQQuantizer, CCQResult, StepRecord
from .collaboration import RecoveryConfig, RecoveryReport, recover
from .competition import CompetitionResult, HedgeCompetition, LambdaSchedule
from .grouping import group_by_prefix, residual_block_groups
from .probe import PinnedProbeSet, ProbeEngine, pin_probe_batches
from .compression import (
    LayerSize,
    ModelSizeReport,
    compression_ratio,
    model_size_report,
)
from .resilience import DivergenceError, RetryPolicy
from .runstate import RunJournal, RunStateStore
from .schedule import DEFAULT_LADDER, BitLadder
from .training import EvalResult, evaluate, make_sgd, train_epoch

__all__ = [
    "LayerProbe",
    "SensitivityReport",
    "scan_layer_sensitivity",
    "group_by_prefix",
    "residual_block_groups",
    "CCQConfig",
    "CCQQuantizer",
    "CCQResult",
    "StepRecord",
    "RecoveryConfig",
    "RecoveryReport",
    "recover",
    "HedgeCompetition",
    "CompetitionResult",
    "LambdaSchedule",
    "ProbeEngine",
    "PinnedProbeSet",
    "pin_probe_batches",
    "BitLadder",
    "DEFAULT_LADDER",
    "LayerSize",
    "ModelSizeReport",
    "model_size_report",
    "compression_ratio",
    "EvalResult",
    "evaluate",
    "train_epoch",
    "make_sgd",
    "DivergenceError",
    "RetryPolicy",
    "RunJournal",
    "RunStateStore",
]
