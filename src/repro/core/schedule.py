"""Bit-precision ladders for gradual quantization.

The framework quantizes from a high precision ``N^(0)`` down to a low one
``N^(K-1)`` through ``K`` discrete levels (Section III-B), one layer-step
at a time, instead of jumping straight to the target precision.  A
:class:`BitLadder` encodes that ordered level set and answers the
questions the competition needs: what is a layer's next level, and is a
layer already at the bottom (a *sleeping expert*)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = ["BitLadder", "DEFAULT_LADDER"]


@dataclass(frozen=True)
class BitLadder:
    """A strictly decreasing sequence of bit widths, e.g. ``(8, 6, 4, 3, 2)``."""

    levels: Tuple[int, ...] = (8, 6, 4, 3, 2)

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ValueError("a ladder needs at least two levels")
        if any(b <= 0 for b in self.levels):
            raise ValueError(f"bit levels must be positive, got {self.levels}")
        if any(a <= b for a, b in zip(self.levels, self.levels[1:])):
            raise ValueError(
                f"levels must be strictly decreasing, got {self.levels}"
            )

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)

    @property
    def start(self) -> int:
        """The initial (highest) precision ``N^(0)``."""
        return self.levels[0]

    @property
    def floor(self) -> int:
        """The minimum precision ``N^(K-1)``."""
        return self.levels[-1]

    def index_of(self, bits: int) -> int:
        """Position of ``bits`` on the ladder (raises if absent)."""
        try:
            return self.levels.index(bits)
        except ValueError:
            raise ValueError(
                f"{bits} bits is not a ladder level {self.levels}"
            ) from None

    def next_level(self, bits: int) -> Optional[int]:
        """The next (lower) level after ``bits``, or None at the floor."""
        i = self.index_of(bits)
        if i + 1 >= len(self.levels):
            return None
        return self.levels[i + 1]

    def is_floor(self, bits: int) -> bool:
        """Whether ``bits`` is the minimum level (sleeping expert)."""
        return self.index_of(bits) == len(self.levels) - 1

    def levels_between(self, start: int, target: int) -> Tuple[int, ...]:
        """The sub-ladder from ``start`` down to ``target`` inclusive."""
        i, j = self.index_of(start), self.index_of(target)
        if j < i:
            raise ValueError(
                f"target {target} is above start {start} on the ladder"
            )
        return self.levels[i : j + 1]

    @classmethod
    def from_range(cls, start: int, floor: int) -> "BitLadder":
        """Build a dense integer ladder from ``start`` down to ``floor``."""
        if floor >= start:
            raise ValueError("floor must be below start")
        return cls(tuple(range(start, floor - 1, -1)))


DEFAULT_LADDER = BitLadder()
