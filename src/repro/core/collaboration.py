"""The collaboration stage: fine-tuning to recover post-quantization loss.

After a competition quantizes one layer, all layers "collaborate" — i.e.
train jointly under quantization-aware SGD — until the accuracy drop is
recovered (Section III-B(b) and IV-f).  Two recovery modes are provided:

* **manual** — a predetermined epoch budget ``S_t`` per quantization step
  (optionally growing with the step index, the paper's first attempt);
* **adaptive** — keep fine-tuning until validation accuracy re-attains a
  threshold (an absolute target or "within ``slack`` of the pre-step
  accuracy"), bounded by ``max_epochs``.  This is the mode the paper
  recommends, combined with the hybrid plateau-cosine learning rate
  (Fig. 4) to escape recovery plateaus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Literal, Optional

from ..nn.data import DataLoader
from ..nn.modules import Module
from ..nn.optim import Optimizer
from ..nn.schedule import HybridPlateauCosine, LRScheduler
from .training import EvalResult, evaluate, train_epoch

__all__ = ["RecoveryConfig", "RecoveryReport", "recover"]


@dataclass(frozen=True)
class RecoveryConfig:
    """How to run the collaboration stage after each quantization step."""

    mode: Literal["manual", "adaptive"] = "adaptive"
    epochs: int = 2                    # manual: S_t; adaptive: ignored
    max_epochs: int = 8                # adaptive: hard cap per step
    threshold: Optional[float] = None  # adaptive: absolute accuracy target
    slack: float = 0.005               # adaptive: allowed drop vs reference
    use_hybrid_lr: bool = True         # plateau-bump cosine rule (Fig. 4)
    hybrid_patience: int = 2
    hybrid_bump: float = 4.0
    hybrid_cycle: int = 3
    max_batches_per_epoch: Optional[int] = None
    # Training strategy.  "serial" is the whole-batch reference loop;
    # "ddp" shards every batch into ``grad_shards`` slices and combines
    # the gradients with a deterministic fixed-order all-reduce (see
    # docs/ddp.md).  Both fields are trajectory-DEFINING — the shard
    # plan fixes the gradient reduction order — and therefore part of
    # the resume fingerprint, unlike the worker count that merely
    # decides where shards run.
    trainer: Literal["serial", "ddp"] = "serial"
    grad_shards: int = 4

    def target_accuracy(self, reference: float) -> float:
        """The accuracy the adaptive mode must re-attain."""
        if self.threshold is not None:
            return self.threshold
        return reference - self.slack


@dataclass
class RecoveryReport:
    """What happened during one collaboration stage."""

    epochs_used: int
    start_accuracy: float
    end_accuracy: float
    target_accuracy: Optional[float]
    recovered: bool
    accuracy_history: List[float] = field(default_factory=list)
    train_loss_history: List[float] = field(default_factory=list)
    lr_history: List[float] = field(default_factory=list)


def recover(
    model: Module,
    train_loader: DataLoader,
    val_loader: DataLoader,
    optimizer: Optimizer,
    config: RecoveryConfig,
    reference_accuracy: float,
    scheduler: Optional[LRScheduler] = None,
    on_epoch: Optional[Callable[[int, float, float], None]] = None,
    telemetry: Optional[object] = None,
    trainer: Optional[Callable] = None,
) -> RecoveryReport:
    """Run the collaboration stage and report the recovery trajectory.

    ``reference_accuracy`` is the validation accuracy before the layer was
    quantized; the adaptive mode fine-tunes until the model is back within
    ``config.slack`` of it (or hits ``config.max_epochs``).

    ``on_epoch(epoch_index, val_accuracy, train_loss)`` is invoked after
    every completed fine-tuning epoch — the fault-tolerant driver uses it
    to journal recovery progress, so an interrupted run's log shows how
    far the collaboration stage got.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`, optional) times
    each fine-tuning epoch as a ``recover_epoch`` span and tracks the
    hybrid schedule's learning rate as the ``recover.lr`` gauge.

    ``trainer`` is the training strategy: any callable with the
    :func:`~repro.core.training.train_epoch` signature (the default
    when ``None``).  :class:`repro.parallel.ddp.DDPTrainer` plugs in
    here to shard batches across the worker pool.
    """
    train_fn = trainer if trainer is not None else train_epoch
    if telemetry is None:
        from ..telemetry import NULL_TELEMETRY

        telemetry = NULL_TELEMETRY
    if scheduler is None and config.use_hybrid_lr:
        scheduler = HybridPlateauCosine(
            optimizer,
            patience=config.hybrid_patience,
            bump_factor=config.hybrid_bump,
            cycle_length=config.hybrid_cycle,
        )

    start = evaluate(model, val_loader)
    history: List[float] = [start.accuracy]
    train_losses: List[float] = []
    lrs: List[float] = []

    if config.mode == "manual":
        budget = config.epochs
        target: Optional[float] = None
    else:
        budget = config.max_epochs
        target = config.target_accuracy(reference_accuracy)

    epochs_used = 0
    current = start
    for _ in range(budget):
        if target is not None and current.accuracy >= target:
            break
        with telemetry.span("recover_epoch", epoch=epochs_used + 1):
            train_loss = train_fn(
                model, train_loader, optimizer,
                max_batches=config.max_batches_per_epoch,
                telemetry=telemetry,
            )
            current = evaluate(model, val_loader, telemetry=telemetry)
        epochs_used += 1
        history.append(current.accuracy)
        train_losses.append(train_loss)
        if scheduler is not None:
            lr = scheduler.step(metric=current.accuracy)
            lrs.append(lr)
            telemetry.gauge("recover.lr").set(lr)
        if on_epoch is not None:
            on_epoch(epochs_used, current.accuracy, train_loss)
        telemetry.counter("recover.epochs").inc()

    recovered = target is None or current.accuracy >= target
    return RecoveryReport(
        epochs_used=epochs_used,
        start_accuracy=start.accuracy,
        end_accuracy=current.accuracy,
        target_accuracy=target,
        recovered=recovered,
        accuracy_history=history,
        train_loss_history=train_losses,
        lr_history=lrs,
    )
