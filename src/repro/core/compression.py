"""Model-size accounting and compression ratios.

The paper reports "model compression" as the ratio between the
full-precision (32-bit) storage of the network weights and the storage of
the mixed-precision configuration; this module computes both, per layer
and for the whole model, including the unquantized remainder (BatchNorm
affine parameters and biases) which stays at 32 bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..nn.modules import Module
from ..quantization.qmodules import QuantModule, quantized_layers

__all__ = ["LayerSize", "ModelSizeReport", "model_size_report", "compression_ratio"]

_FP_BITS = 32


@dataclass(frozen=True)
class LayerSize:
    """Per-layer storage summary."""

    name: str
    n_params: int
    w_bits: int
    size_bits: float

    @property
    def size_bytes(self) -> float:
        return self.size_bits / 8.0


@dataclass(frozen=True)
class ModelSizeReport:
    """Whole-model storage breakdown at the current bit configuration."""

    layers: Tuple[LayerSize, ...]
    other_params: int            # BN affine, biases, anything unquantized
    include_other: bool

    @property
    def quantized_bits(self) -> float:
        """Total storage of the quantized weights (bits)."""
        return sum(layer.size_bits for layer in self.layers)

    @property
    def total_bits(self) -> float:
        other = self.other_params * _FP_BITS if self.include_other else 0
        return self.quantized_bits + other

    @property
    def baseline_bits(self) -> float:
        """Storage with every parameter at full precision."""
        n_quant = sum(layer.n_params for layer in self.layers)
        other = self.other_params if self.include_other else 0
        return (n_quant + other) * _FP_BITS

    @property
    def compression(self) -> float:
        """``baseline / current`` storage ratio (>= 1 after quantization)."""
        return self.baseline_bits / self.total_bits

    def by_layer(self) -> Dict[str, LayerSize]:
        return {layer.name: layer for layer in self.layers}


def model_size_report(
    model: Module, include_other: bool = False
) -> ModelSizeReport:
    """Compute the storage breakdown of a quantized model.

    ``include_other=True`` adds the unquantized parameters (BN affine
    terms, biases) at 32 bits to both sides of the ratio; the paper's
    headline ratios count the conv/FC weights, which is the default.
    """
    layers: List[LayerSize] = []
    quantized_params = set()
    for name, layer in quantized_layers(model):
        bits = layer.w_bits if layer.w_bits is not None else _FP_BITS
        layers.append(
            LayerSize(
                name=name,
                n_params=layer.weight.size,
                w_bits=bits,
                size_bits=float(layer.weight.size * bits),
            )
        )
        quantized_params.add(id(layer.weight))
    other = sum(
        p.size for p in model.parameters() if id(p) not in quantized_params
    )
    return ModelSizeReport(
        layers=tuple(layers), other_params=other, include_other=include_other
    )


def compression_ratio(model: Module, include_other: bool = False) -> float:
    """Convenience wrapper returning just the compression ratio."""
    return model_size_report(model, include_other=include_other).compression
