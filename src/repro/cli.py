"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``run-ccq``
    Pretrain one of the paper's network/dataset combinations and run the
    full CCQ pipeline on it, logging the step trace, the learned bit
    configuration, compression and a power summary.  With
    ``--telemetry-dir`` the run also emits structured telemetry
    (``events.jsonl`` + ``metrics.json``) for ``report-run``.

``report-run``
    Render a finished run's telemetry directory into a per-stage
    wall-clock breakdown and an accuracy/compression trajectory table
    (optionally an SVG chart).

``profile``
    Run the deterministic op-level profiler over forward (optionally
    forward+backward) passes of a task model and print per-op
    wall-clock, call counts, FLOPs and bytes-moved estimates plus the
    scratch-arena high-water mark and the per-backend kernel table
    (``--kernel-backend`` selects which backend's kernels run).

``watch``
    Live-monitor an in-progress ``run-ccq --telemetry-dir`` run by
    tailing its ``events.jsonl``/``metrics.json``: current step, stage,
    accuracy/compression, bit map, expert weights and pool-health
    counters, refreshed in place.  ``--serve PORT`` additionally
    exposes the snapshot over HTTP in Prometheus text format.

``serve``
    Compile a quantized demo model into the integer-only serving
    engine (``repro.serving``) and expose it over HTTP: ``POST
    /predict``, ``GET /metrics`` (Prometheus text), ``GET /healthz``.
    The micro-batcher coalesces concurrent requests; batching is
    bitwise invisible.

``bench-serve``
    Closed-loop load test of the serving engine: N concurrent clients,
    p50/p90/p99 latency, throughput, and a batch-invariance audit
    (every response replayed solo and compared bitwise).  Non-zero
    exit if any response diverges or any request fails.

``policies``
    List the registered quantization policies (plain stdout, one per
    line, for scripting).

``power``
    Print the MAC-energy table of the hardware model.

Diagnostics go through the structured logger (``--log-level`` filters
them); machine-consumable output (``policies``, the ``power`` table,
``report-run`` tables, ``--output`` JSON) stays plain stdout.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import Optional

from . import __version__
from .core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    LambdaSchedule,
    RecoveryConfig,
)
from .experiments import SCALES, TASK_NAMES, build_task
from .nn.backends import available_backends, set_default_backend
from .hardware import NODE_32NM, NODE_32NM_SYNTH, mac_energy_pj, network_power
from .quantization import available_policies
from .telemetry import (
    LEVELS,
    Telemetry,
    format_report,
    load_run,
    write_trajectory_svg,
)


def _cmd_policies(_: argparse.Namespace) -> int:
    # Deliberately plain stdout (no log formatting): scripts pipe this.
    for name in available_policies():
        print(name)
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    # Data output, not diagnostics — stays plain like ``policies``.
    node = NODE_32NM_SYNTH if args.synth else NODE_32NM
    print(f"MAC energy per op at {node.name}:")
    for bits in (1, 2, 3, 4, 6, 8, 16, None):
        label = "fp32" if bits is None else f"int{bits}"
        print(f"  {label:>5}: {mac_energy_pj(bits, bits, node):8.4f} pJ")
    return 0


def _make_telemetry(args: argparse.Namespace) -> Telemetry:
    """One live telemetry handle for a CLI run.

    Logs go to stdout (errors to stderr); the progress line only
    engages on an interactive stderr so piped/captured output stays
    line-oriented.
    """
    return Telemetry.create(
        directory=getattr(args, "telemetry_dir", None),
        log_level=args.log_level,
        log_stream=sys.stdout,
        error_stream=sys.stderr,
        progress=(
            not getattr(args, "no_progress", False)
            and sys.stderr.isatty()
        ),
        progress_stream=sys.stderr,
    )


class _SignalGuard:
    """Graceful SIGTERM/SIGINT handling around a CCQ run.

    The first signal requests a cooperative stop: the quantizer
    finishes the step in flight, checkpoints it, journals an
    ``interrupted`` event and returns — the journal is flushed and the
    probe pool torn down by the normal ``run()`` exit path, so an
    interrupted run leaves exactly the artifacts a finished one does.
    A second signal stops waiting and raises ``KeyboardInterrupt``
    (``run()``'s ``finally`` still reaps the pool; every journal append
    is already fsynced).
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, quantizer, log) -> None:
        self._quantizer = quantizer
        self._log = log
        self._previous: dict = {}
        self.signum: Optional[int] = None

    def handle(self, signum, frame) -> None:
        if self.signum is not None:
            raise KeyboardInterrupt
        self.signum = signum
        self._quantizer.request_stop()
        self._log.warning(
            "signal received; finishing the current step, writing a "
            "final checkpoint, then exiting (repeat to abort now)",
            signal=signal.Signals(signum).name,
        )

    def __enter__(self) -> "_SignalGuard":
        for signum in self.SIGNALS:
            try:
                self._previous[signum] = signal.signal(
                    signum, self.handle
                )
            except (ValueError, OSError):
                # Not the main thread / unsupported platform: run
                # unguarded rather than refuse to run.
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass


def _cmd_run_ccq(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    # Selected before any model/quantizer construction so fork-based
    # probe workers inherit the same backend.
    set_default_backend(args.kernel_backend)
    telemetry = _make_telemetry(args)
    log = telemetry.logger
    try:
        task = build_task(args.task, scale=args.scale)
        log.info(f"task: {task.name} (scale {args.scale})")
        model, baseline = task.pretrained_model(
            cache_dir=args.checkpoint_dir, log=log
        )
        log.info(f"baseline accuracy: {baseline:.3f}")

        train, val = task.loaders()
        if args.prefetch:
            # One-batch lookahead for the collaboration-stage training
            # loader.  The synthetic tasks are transform-free, so this
            # is exactly RNG-neutral (see nn.data.DataLoader).
            train.prefetch = True
        config = CCQConfig(
            ladder=DEFAULT_LADDER,
            probes_per_step=args.probes,
            probe_batches=1,
            lambda_schedule=LambdaSchedule(start=0.7, end=0.2,
                                           decay_steps=15),
            recovery=RecoveryConfig(
                mode="adaptive",
                max_epochs=task.scale.finetune_epochs + 1,
                slack=0.01,
                trainer=args.recover_trainer,
                grad_shards=args.recover_grad_shards,
            ),
            lr=args.lr,
            target_compression=args.target_compression,
            max_steps=args.max_steps,
            seed=args.seed,
            probe_cache=not args.no_probe_cache,
            probe_workers=args.probe_workers,
            probe_timeout=args.probe_timeout,
            recover_workers=args.recover_workers,
            probe_pipeline=not args.no_probe_pipeline,
            qweight_cache=not args.no_qweight_cache,
            checkpoint_dir=args.checkpoint_dir,
            max_retries=args.max_retries,
            input_shape=task.input_shape,
        )
        groups = None
        if args.block_granularity:
            from .core import residual_block_groups
            from .quantization import quantize_model

            quantize_model(model, args.policy)
            groups = residual_block_groups(model)
            log.info(f"block granularity: {len(groups)} experts")
        ccq = CCQQuantizer(
            model, train, val, config=config, policy=args.policy,
            groups=groups, telemetry=telemetry,
        )
        if (
            args.resume and ccq.store is not None
            and ccq.store.has_checkpoint()
        ):
            log.info(f"resuming from checkpoint in {args.checkpoint_dir}")
        # Per-step progress is logged live by the quantizer itself
        # (through the same logger), so no post-run replay is needed.
        with _SignalGuard(ccq, log) as guard:
            try:
                result = ccq.run(resume=args.resume)
            except KeyboardInterrupt:
                log.error(
                    "aborted by repeated signal; resume with --resume"
                )
                return 130

        log.info(f"final accuracy: {result.final_eval.accuracy:.3f} "
                 f"(degradation {baseline - result.final_eval.accuracy:+.3f})")
        log.info(f"compression:    {result.compression:.2f}x")
        log.info(
            f"probe rounds:   {result.probe_rounds} "
            f"({result.probe_forward_passes} forward passes, "
            f"{result.probe_cache_hits} cache hits)"
        )
        power = network_power(model, task.input_shape, node=NODE_32NM_SYNTH)
        power.record(telemetry)
        log.info(f"MAC power:      {power.total_watts*1e3:.3f} mW @30fps")

        if args.output:
            payload = {
                "task": task.name,
                "scale": args.scale,
                "policy": args.policy,
                "baseline": baseline,
                "final_accuracy": result.final_eval.accuracy,
                "compression": result.compression,
                "bit_config": {
                    k: list(v) for k, v in result.bit_config.items()
                },
                "probe_rounds": result.probe_rounds,
                "probe_forward_passes": result.probe_forward_passes,
                "probe_cache_hits": result.probe_cache_hits,
                "probe_workers": args.probe_workers,
                "recover_workers": args.recover_workers,
                "recover_trainer": args.recover_trainer,
                "qweight_cache_hits": result.qweight_cache_hits,
                "qweight_cache_misses": result.qweight_cache_misses,
            }
            if result.fanout_stats:
                payload["fanout"] = result.fanout_stats
            if telemetry.directory is not None:
                payload["telemetry_dir"] = str(telemetry.directory)
            with open(args.output, "w") as f:
                json.dump(payload, f, indent=2)
            log.info(f"wrote {args.output}")
        if telemetry.directory is not None:
            log.info(
                f"telemetry written to {telemetry.directory} "
                f"(inspect with: repro report-run {telemetry.directory})"
            )
        if guard.signum is not None:
            log.warning(
                "run interrupted by signal; checkpointed state is "
                "complete — continue with --resume"
            )
            return 128 + guard.signum
        return 0
    finally:
        telemetry.close()


def _cmd_report_run(args: argparse.Namespace) -> int:
    try:
        run = load_run(args.directory)
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    # The rendered report is the data output — plain stdout.
    print(format_report(run))
    if args.svg:
        written = write_trajectory_svg(run, args.svg)
        if written is not None:
            print(f"wrote {written}")
        else:
            print("no completed steps to plot; skipped SVG",
                  file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import numpy as np

    from .telemetry.profiler import profile_model

    set_default_backend(args.kernel_backend)
    task = build_task(args.task, scale=args.scale)
    model = task.make_model()
    if args.policy:
        from .quantization import quantize_model

        quantize_model(model, args.policy)
    _, val = task.loaders()
    images, labels = next(iter(val))
    if args.batch_size:
        images = images[: args.batch_size]
        labels = labels[: args.batch_size]
    profiler = profile_model(
        model,
        np.asarray(images),
        labels=np.asarray(labels),
        train=args.train,
        repeats=args.repeats,
        warmup=args.warmup,
    )
    if args.json:
        payload = profiler.summary()
        payload["task"] = task.name
        payload["scale"] = args.scale
        payload["batch"] = int(images.shape[0])
        payload["train"] = bool(args.train)
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
    # The table is the data output — plain stdout, like report-run.
    mode = "train (fwd+bwd)" if args.train else "inference"
    print(
        f"profile: {task.name} scale={args.scale} "
        f"batch={images.shape[0]} mode={mode} repeats={args.repeats}"
    )
    print(profiler.format_table())
    if args.json:
        print(f"wrote {args.json}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .telemetry.monitor import serve_metrics, watch

    server = None
    if args.serve is not None:
        import threading

        try:
            server = serve_metrics(
                args.directory, port=args.serve, host=args.host
            )
        except OSError as err:
            print(f"error: cannot bind {args.host}:{args.serve}: {err}",
                  file=sys.stderr)
            return 2
        host, port = server.server_address[:2]
        print(f"serving metrics on http://{host}:{port}/metrics "
              f"(state: /state)", file=sys.stderr)
        threading.Thread(
            target=server.serve_forever, daemon=True
        ).start()
    try:
        watch(
            args.directory,
            interval_s=args.interval,
            once=args.once,
            follow_until_complete=args.until_complete,
            max_seconds=args.max_seconds,
        )
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
    return 0


def _build_demo_compiled(args: argparse.Namespace):
    """Compile a self-contained quantized demo model for serving.

    The paper's headline tasks are residual ResNets, which the chain
    compiler rejects by design; the demo SmallConvNet exercises the
    full deployment path (BN folding, quantized conv/GAP chain,
    integer requantization) at CLI speed with no dataset dependency.
    Returns ``(compiled, rng)``.
    """
    import numpy as np

    from . import models
    from .nn import Tensor, no_grad
    from .quantization import quantize_model, set_uniform_bits
    from .serving import compile_model

    rng = np.random.default_rng(args.seed)
    shape = (args.calib_batch, 3, args.image_size, args.image_size)
    net = models.SmallConvNet(
        in_channels=3, num_classes=args.classes, width=args.width, rng=rng
    )
    net.train()
    with no_grad():
        for _ in range(3):  # give BN folding nontrivial running stats
            net(Tensor(rng.normal(size=shape)))
    net.eval()
    quantize_model(net, args.policy)
    set_uniform_bits(net, args.w_bits, args.a_bits)
    calibration = rng.normal(size=shape)
    with no_grad():
        net(Tensor(calibration))  # initialize lazy quantizer state (LSQ)
    return compile_model(net, calibration), rng


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import ServingEngine
    from .serving.http import make_server

    telemetry = _make_telemetry(args)
    compiled, _ = _build_demo_compiled(args)
    engine = ServingEngine(
        compiled,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        backend=args.kernel_backend,
        telemetry=telemetry,
    )
    try:
        server = make_server(
            engine, telemetry.registry, host=args.host, port=args.port
        )
    except OSError as err:
        print(f"error: cannot bind {args.host}:{args.port}: {err}",
              file=sys.stderr)
        engine.close()
        return 2
    host, port = server.server_address[:2]
    print(
        f"serving {args.policy} w{args.w_bits}a{args.a_bits} SmallConvNet "
        f"(input {'x'.join(map(str, compiled.input_shape))}, backend "
        f"{args.kernel_backend}) on http://{host}:{port} — POST /predict, "
        f"GET /metrics, GET /healthz",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        engine.close()
        telemetry.close()
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import math

    import numpy as np

    from .serving import ServingEngine, batch_invariance_errors, run_load

    telemetry = _make_telemetry(args)
    compiled, rng = _build_demo_compiled(args)
    engine = ServingEngine(
        compiled,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        backend=args.kernel_backend,
        telemetry=telemetry,
    )
    inputs = [rng.normal(size=compiled.input_shape) for _ in range(args.pool)]
    try:
        result = run_load(
            engine, inputs,
            n_clients=args.clients,
            requests_per_client=args.requests,
        )
    finally:
        engine.close()
        telemetry.close()
    mismatches = batch_invariance_errors(compiled, inputs, result)
    summary = result.summary()
    summary["batch_invariant"] = not mismatches
    summary["n_mismatches"] = len(mismatches)
    # Data output (parseable), like ``policies``/``power``.
    print(f"clients:          {result.n_clients}")
    print(f"requests:         {result.n_requests}")
    print(f"failures:         {result.n_failures}")
    print(f"throughput_rps:   {result.throughput_rps:.1f}")
    print(f"latency_p50_ms:   {result.latency_p50_ms:.3f}")
    print(f"latency_p90_ms:   {result.latency_p90_ms:.3f}")
    print(f"latency_p99_ms:   {result.latency_p99_ms:.3f}")
    print(f"batch_invariant:  {not mismatches}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    ok = (
        not mismatches
        and result.n_failures == 0
        and math.isfinite(result.latency_p99_ms)
    )
    return 0 if ok else 1


def _add_serving_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--policy", default="pact", choices=available_policies(),
                   help="quantization policy for the demo model")
    p.add_argument("--w-bits", type=int, default=4)
    p.add_argument("--a-bits", type=int, default=4)
    p.add_argument("--width", type=int, default=8,
                   help="SmallConvNet base width")
    p.add_argument("--image-size", type=int, default=16)
    p.add_argument("--classes", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--calib-batch", type=int, default=8,
                   help="calibration batch size (fixes the served shape)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="micro-batch flush size")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="micro-batch flush deadline")
    p.add_argument("--kernel-backend", default="threaded",
                   choices=available_backends(),
                   help="kernel backend for the integer stages")
    p.add_argument("--telemetry-dir", default=None,
                   help="also persist metrics/events for report-run")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CCQ (DAC 2020) reproduction CLI"
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--log-level", default="info",
        choices=[name for name in LEVELS if name != "silent"],
        help="minimum level for diagnostic log lines (default: info)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run-ccq", help="run the full CCQ pipeline")
    p_run.add_argument("--task", choices=TASK_NAMES,
                       default="resnet20_cifar10")
    p_run.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    p_run.add_argument("--policy", default="pact")
    p_run.add_argument("--target-compression", type=float, default=9.0)
    p_run.add_argument("--max-steps", type=int, default=40)
    p_run.add_argument("--probes", type=int, default=4)
    p_run.add_argument("--lr", type=float, default=0.02)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--block-granularity", action="store_true",
        help="compete at residual-block granularity instead of per layer",
    )
    p_run.add_argument(
        "--checkpoint-dir",
        help="journal the run and write atomic checkpoints here "
             "(enables crash-safe resume; also caches the pretrained "
             "float baseline)",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint in --checkpoint-dir "
             "(starts fresh if none exists)",
    )
    p_run.add_argument(
        "--no-probe-cache", action="store_true",
        help="disable per-step probe memoization (every probe round "
             "runs a forward pass; the trajectory is identical either "
             "way — this exists for verification and benchmarking)",
    )
    p_run.add_argument(
        "--probe-workers", type=int, default=0,
        help="fan competition probes out across this many persistent "
             "worker processes (0 = serial, the default; losses are "
             "bit-identical to serial for any worker count, and the "
             "run falls back to serial if the pool cannot start)",
    )
    p_run.add_argument(
        "--probe-timeout", type=float, default=None,
        help="fixed per-candidate deadline (seconds) for pool probe "
             "evaluations; default derives it adaptively from the "
             "pinned-batch count times a measured per-batch EMA.  "
             "Trajectory-invariant (fingerprint-excluded): a timed-out "
             "candidate is re-evaluated serially with identical loss",
    )
    p_run.add_argument(
        "--recover-workers", type=int, default=0,
        help="shard recovery training batches across this many pool "
             "workers when --recover-trainer=ddp (0 = compute shards "
             "in-process, the default).  Trajectory-invariant "
             "(fingerprint-excluded): the fixed-order all-reduce makes "
             "the SGD trajectory bit-identical for any worker count",
    )
    p_run.add_argument(
        "--recover-trainer", choices=("serial", "ddp"), default="serial",
        help="recovery training strategy.  'ddp' shards every batch "
             "into --recover-grad-shards slices with a deterministic "
             "all-reduce; the shard plan changes the gradient rounding, "
             "so this IS part of the resume fingerprint (see "
             "docs/ddp.md)",
    )
    p_run.add_argument(
        "--recover-grad-shards", type=int, default=4,
        help="gradient shards per recovery batch under "
             "--recover-trainer=ddp (trajectory-DEFINING, default: 4)",
    )
    p_run.add_argument(
        "--no-probe-pipeline", action="store_true",
        help="disable speculative probing: by default the next step's "
             "likely probe candidates start on the pool while the "
             "current step finishes accounting/checkpointing.  "
             "Trajectory-invariant (fingerprint-excluded)",
    )
    p_run.add_argument(
        "--no-qweight-cache", action="store_true",
        help="disable the per-step frozen-layer quantized-weight cache "
             "(every no-grad forward re-quantizes every layer; the "
             "trajectory is identical either way — this exists for "
             "verification and benchmarking)",
    )
    p_run.add_argument(
        "--kernel-backend", default="reference",
        choices=available_backends(),
        help="compute-kernel backend for every repro.nn op (default: "
             "reference).  Trajectory-invariant (fingerprint-excluded): "
             "all backends are bit-identical, so this only changes "
             "speed",
    )
    p_run.add_argument(
        "--prefetch", action="store_true",
        help="assemble training batches one batch ahead on a "
             "background thread during collaboration (RNG-neutral for "
             "the built-in transform-free tasks)",
    )
    p_run.add_argument(
        "--max-retries", type=int, default=2,
        help="rollback retries for a diverged recovery stage before the "
             "step is skipped (default: 2)",
    )
    p_run.add_argument(
        "--telemetry-dir",
        help="write structured telemetry here (events.jsonl + "
             "metrics.json/csv); render later with 'repro report-run'",
    )
    p_run.add_argument(
        "--no-progress", action="store_true",
        help="disable the live progress line (it is auto-disabled when "
             "stderr is not a terminal)",
    )
    p_run.add_argument("--output", help="write a JSON summary here")
    p_run.set_defaults(func=_cmd_run_ccq)

    p_rep = sub.add_parser(
        "report-run",
        help="render a finished run's telemetry directory",
    )
    p_rep.add_argument(
        "directory",
        help="the --telemetry-dir of a finished run-ccq run",
    )
    p_rep.add_argument(
        "--svg",
        help="also write the accuracy/compression trajectory chart here",
    )
    p_rep.set_defaults(func=_cmd_report_run)

    p_prof = sub.add_parser(
        "profile",
        help="op-level profile of a task model's forward passes",
    )
    p_prof.add_argument("--task", choices=TASK_NAMES,
                        default="resnet20_cifar10")
    p_prof.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    p_prof.add_argument(
        "--policy", default=None,
        help="quantize the model with this policy before profiling "
             "(default: profile the float model)",
    )
    p_prof.add_argument(
        "--batch-size", type=int, default=None,
        help="truncate the profiled batch to this many samples "
             "(default: one full validation batch)",
    )
    p_prof.add_argument(
        "--train", action="store_true",
        help="profile grad-mode forward + cross-entropy backward "
             "instead of the no-grad inference path",
    )
    p_prof.add_argument("--repeats", type=int, default=3,
                        help="measured passes (default: 3)")
    p_prof.add_argument(
        "--warmup", type=int, default=1,
        help="un-measured warmup passes so one-time scratch "
             "allocation does not skew the numbers (default: 1)",
    )
    p_prof.add_argument(
        "--kernel-backend", default="reference",
        choices=available_backends(),
        help="compute-kernel backend to profile (default: reference); "
             "the per-kernel table in the output is keyed by this name",
    )
    p_prof.add_argument("--json", help="also write the summary JSON here")
    p_prof.set_defaults(func=_cmd_profile)

    p_watch = sub.add_parser(
        "watch",
        help="live-monitor an in-progress run's telemetry directory",
    )
    p_watch.add_argument(
        "directory",
        help="the --telemetry-dir of a running (or finished) run-ccq",
    )
    p_watch.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh interval in seconds (default: 1.0)",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit (for scripts)",
    )
    p_watch.add_argument(
        "--until-complete", action="store_true",
        help="exit automatically when the run completes or is "
             "interrupted",
    )
    p_watch.add_argument(
        "--max-seconds", type=float, default=None,
        help="stop watching after this many seconds regardless",
    )
    p_watch.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="also serve the snapshot over HTTP: /metrics in "
             "Prometheus text format, /state as JSON (0 picks a free "
             "port)",
    )
    p_watch.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for --serve (default: loopback only)",
    )
    p_watch.set_defaults(func=_cmd_watch)

    p_srv = sub.add_parser(
        "serve",
        help="serve a quantized demo model over HTTP "
             "(integer-only engine)",
    )
    _add_serving_args(p_srv)
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback only)")
    p_srv.add_argument("--port", type=int, default=8551,
                       help="bind port (0 picks a free port)")
    p_srv.set_defaults(func=_cmd_serve)

    p_bsrv = sub.add_parser(
        "bench-serve",
        help="closed-loop load test of the serving engine "
             "(latency percentiles + batch-invariance audit)",
    )
    _add_serving_args(p_bsrv)
    p_bsrv.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop clients")
    p_bsrv.add_argument("--requests", type=int, default=16,
                        help="requests per client")
    p_bsrv.add_argument("--pool", type=int, default=32,
                        help="distinct inputs cycled across clients")
    p_bsrv.add_argument("--output", default=None,
                        help="also write the summary as JSON")
    p_bsrv.set_defaults(func=_cmd_bench_serve)

    p_pol = sub.add_parser("policies", help="list quantization policies")
    p_pol.set_defaults(func=_cmd_policies)

    p_pow = sub.add_parser("power", help="print the MAC energy table")
    p_pow.add_argument("--synth", action="store_true",
                       help="use the synthesis-calibrated node")
    p_pow.set_defaults(func=_cmd_power)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-print; silence the
        # interpreter's own complaint on shutdown and exit cleanly.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
