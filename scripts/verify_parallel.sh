#!/usr/bin/env bash
# Prove the parallel probe backend is trajectory-invariant end to end
# through the CLI:
#
#   1. serial:   a micro-scale CCQ run with --probe-workers 0 (default)
#   2. parallel: the identical run with --probe-workers 2
#
# The two runs must report the identical bit configuration, final
# accuracy, compression and probe rounds; the parallel run may only
# differ in probe_forward_passes (speculative worker evaluations).
# Also checks the serial run's quantized-weight cache saw traffic.
# Finishes in a few minutes on one CPU.
#
#   bash scripts/verify_parallel.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

COMMON=(run-ccq --task resnet20_cifar10 --scale micro --probes 6
        --max-steps 4 --seed 0)

echo "== 1/2 serial run (--probe-workers 0, the default) =="
python3 -m repro.cli "${COMMON[@]}" --output "$WORK/serial.json"

echo "== 2/2 parallel run (--probe-workers 2) =="
python3 -m repro.cli "${COMMON[@]}" --probe-workers 2 \
    --output "$WORK/parallel.json"

python3 - "$WORK/serial.json" "$WORK/parallel.json" <<'EOF'
import json
import sys

serial, parallel = (json.load(open(path)) for path in sys.argv[1:3])

mismatches = [
    key for key in ("bit_config", "final_accuracy", "compression",
                    "probe_rounds", "probe_cache_hits")
    if serial[key] != parallel[key]
]
if mismatches:
    for key in mismatches:
        print(f"MISMATCH {key}: serial={serial[key]!r} "
              f"parallel={parallel[key]!r}")
    sys.exit(1)

if parallel["probe_forward_passes"] < serial["probe_forward_passes"]:
    print(f"parallel run evaluated fewer candidates than serial: "
          f"{parallel['probe_forward_passes']} < "
          f"{serial['probe_forward_passes']}")
    sys.exit(1)

if serial["qweight_cache_hits"] <= 0:
    print("qweight cache saw no hits on the serial path")
    sys.exit(1)

speculative = (parallel["probe_forward_passes"]
               - serial["probe_forward_passes"])
print(f"OK: identical trajectory with --probe-workers 2 "
      f"({speculative} speculative worker evaluations; serial qweight "
      f"cache: {serial['qweight_cache_hits']} hits / "
      f"{serial['qweight_cache_misses']} misses)")
EOF
