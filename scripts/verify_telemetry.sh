#!/usr/bin/env bash
# Prove the telemetry layer end to end through the CLI:
#
#   1. a micro-scale CCQ run with --telemetry-dir (and a checkpoint dir,
#      so checkpoint spans time real work)
#   2. assert events.jsonl carries spans for every CCQ stage plus
#      step_complete events and mirrored log lines
#   3. assert metrics.json carries the resilience counters, per-layer
#      bit gauges, Hedge expert weights and the probe-loss histogram
#   4. render the run with `repro report-run` (stage table + SVG)
#
# Finishes in well under a minute on one CPU.
#
#   bash scripts/verify_telemetry.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

echo "== 1/3 instrumented micro-scale CCQ run =="
python3 -m repro.cli run-ccq --task resnet20_cifar10 --scale micro \
    --probes 2 --max-steps 3 --seed 0 --no-progress \
    --checkpoint-dir "$WORK/ckpt" --telemetry-dir "$WORK/telem" \
    --output "$WORK/summary.json"

echo "== 2/3 verify emitted telemetry =="
python3 - "$WORK/telem" <<'EOF'
import json
import sys
from pathlib import Path

from repro.telemetry import load_run, read_events, stage_breakdown

directory = Path(sys.argv[1])
events = read_events(directory / "events.jsonl")
assert events, "events.jsonl is empty"

span_names = {e["name"] for e in events if e["type"] == "span"}
required_spans = {"run", "initialize", "probe", "recover", "eval",
                  "snapshot", "checkpoint"}
missing = required_spans - span_names
assert not missing, f"missing stage spans: {sorted(missing)}"

event_names = {e["name"] for e in events if e["type"] == "event"}
assert "step_complete" in event_names, "no step_complete events"
assert any(e["type"] == "log" for e in events), "no mirrored log lines"

metrics = json.loads((directory / "metrics.json").read_text())
counters = {c["name"] for c in metrics["counters"]}
required_counters = {"ccq.steps", "ccq.checkpoints",
                     "ccq.probe_divergence", "ccq.recovery_retry",
                     "ccq.expert_skipped"}
missing = required_counters - counters
assert not missing, f"missing counters: {sorted(missing)}"

gauges = {g["name"] for g in metrics["gauges"]}
required_gauges = {"ccq.accuracy", "ccq.compression", "ccq.layer_bits",
                   "hedge.expert_weight"}
missing = required_gauges - gauges
assert not missing, f"missing gauges: {sorted(missing)}"

histograms = {h["name"] for h in metrics["histograms"]}
assert "ccq.probe_loss" in histograms, "missing probe-loss histogram"

coverage = stage_breakdown(load_run(directory))["coverage"]
assert coverage >= 0.9, f"stage coverage {coverage:.1%} < 90%"
print(f"OK: all required spans/metrics present, "
      f"stage coverage {coverage:.1%}")
EOF

echo "== 3/3 render the report =="
python3 -m repro.cli report-run "$WORK/telem" --svg "$WORK/trajectory.svg"
test -s "$WORK/trajectory.svg"

echo "OK: telemetry layer verified (report + $WORK/trajectory.svg)"
