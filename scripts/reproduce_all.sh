#!/usr/bin/env bash
# One-command reproduction: tests, every table/figure benchmark, the
# paper-vs-measured report and the SVG figures.
#
#   bash scripts/reproduce_all.sh [smoke|bench|paper]
#
# smoke (default) finishes in about an hour on one CPU.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-smoke}"
export REPRO_BENCH_SCALE="$SCALE"

echo "== 1/12 unit + integration tests =="
python3 -m pytest tests/ 2>&1 | tee test_output.txt

echo "== 2/12 telemetry end-to-end check =="
bash scripts/verify_telemetry.sh

echo "== 3/12 parallel observability check =="
bash scripts/verify_observability.sh

echo "== 4/12 probe-cache determinism check =="
bash scripts/verify_probe_cache.sh

echo "== 5/12 parallel probe determinism check =="
bash scripts/verify_parallel.sh

echo "== 6/12 chaos / self-healing pool check =="
bash scripts/verify_chaos.sh

echo "== 7/12 DDP recovery determinism check =="
bash scripts/verify_ddp.sh

echo "== 8/12 kernel-backend equivalence check =="
bash scripts/verify_kernels.sh

echo "== 9/12 integer serving engine check =="
bash scripts/verify_serving.sh

echo "== 10/12 table/figure benchmarks (scale: $SCALE) =="
python3 -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== 11/12 regenerate EXPERIMENTS.md =="
python3 benchmarks/make_experiments_report.py

echo "== 12/12 render figures =="
python3 benchmarks/make_figures.py

echo "done: see EXPERIMENTS.md, benchmarks/figures/, test_output.txt, bench_output.txt"
