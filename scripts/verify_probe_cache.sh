#!/usr/bin/env bash
# Prove the probe cache is trajectory-invariant end to end through the
# CLI:
#
#   1. cached:   a micro-scale CCQ run with probe memoization (default)
#   2. uncached: the identical run with --no-probe-cache
#
# The two runs must report the identical bit configuration, final
# accuracy and compression, while the cached run executes strictly
# fewer probe forward passes over the same number of probe rounds.
# Finishes in about a minute on one CPU.
#
#   bash scripts/verify_probe_cache.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

# --probes above the expert count forces within-step repeats, so the
# cache has hits to serve (6 rounds over fewer distinct candidates).
COMMON=(run-ccq --task resnet20_cifar10 --scale micro --probes 6
        --max-steps 4 --seed 0)

echo "== 1/2 cached run (probe memoization on, the default) =="
python3 -m repro.cli "${COMMON[@]}" --output "$WORK/cached.json"

echo "== 2/2 uncached run (--no-probe-cache) =="
python3 -m repro.cli "${COMMON[@]}" --no-probe-cache \
    --output "$WORK/uncached.json"

python3 - "$WORK/cached.json" "$WORK/uncached.json" <<'EOF'
import json
import sys

cached, uncached = (json.load(open(path)) for path in sys.argv[1:3])

mismatches = [
    key for key in ("bit_config", "final_accuracy", "compression")
    if cached[key] != uncached[key]
]
if mismatches:
    for key in mismatches:
        print(f"MISMATCH {key}: cached={cached[key]!r} "
              f"uncached={uncached[key]!r}")
    sys.exit(1)

rounds = cached["probe_rounds"]
if rounds != uncached["probe_rounds"]:
    print(f"MISMATCH probe_rounds: cached={rounds} "
          f"uncached={uncached['probe_rounds']}")
    sys.exit(1)
if uncached["probe_forward_passes"] != rounds:
    print(f"uncached run should evaluate every round: "
          f"{uncached['probe_forward_passes']} passes != {rounds} rounds")
    sys.exit(1)
if cached["probe_forward_passes"] >= uncached["probe_forward_passes"]:
    print(f"no forward-pass reduction: cached ran "
          f"{cached['probe_forward_passes']} passes, uncached "
          f"{uncached['probe_forward_passes']}")
    sys.exit(1)

saved = uncached["probe_forward_passes"] - cached["probe_forward_passes"]
print(f"OK: identical trajectory; cache saved {saved}/{rounds} probe "
      f"forward passes ({cached['probe_cache_hits']} hits)")
EOF
