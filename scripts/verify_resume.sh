#!/usr/bin/env bash
# Prove kill-and-resume determinism end to end through the CLI:
#
#   1. reference:   an uninterrupted micro-scale CCQ run (4 steps)
#   2. interrupted: the same run stopped after 2 steps, checkpointed
#   3. resumed:     --resume with the budget restored to 4 steps
#
# The resumed run must report the identical bit configuration and final
# accuracy as the reference.  Finishes in about a minute on one CPU.
#
#   bash scripts/verify_resume.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

COMMON=(run-ccq --task resnet20_cifar10 --scale micro --probes 2 --seed 0)

echo "== 1/3 reference run (uninterrupted, 4 steps) =="
python3 -m repro.cli "${COMMON[@]}" --max-steps 4 \
    --checkpoint-dir "$WORK/reference" --output "$WORK/reference.json"

echo "== 2/3 interrupted run (stops after 2 steps) =="
python3 -m repro.cli "${COMMON[@]}" --max-steps 2 \
    --checkpoint-dir "$WORK/resumable" --output /dev/null

echo "== 3/3 resumed run (budget back to 4 steps) =="
python3 -m repro.cli "${COMMON[@]}" --max-steps 4 --resume \
    --checkpoint-dir "$WORK/resumable" --output "$WORK/resumed.json"

python3 - "$WORK/reference.json" "$WORK/resumed.json" <<'EOF'
import json
import sys

reference, resumed = (json.load(open(path)) for path in sys.argv[1:3])
mismatches = [
    key for key in ("bit_config", "final_accuracy", "compression")
    if reference[key] != resumed[key]
]
if mismatches:
    for key in mismatches:
        print(f"MISMATCH {key}: reference={reference[key]!r} "
              f"resumed={resumed[key]!r}")
    sys.exit(1)
print("OK: resumed run matches the uninterrupted reference bit-for-bit")
EOF
