#!/usr/bin/env bash
# Prove the parallel observability surface end to end through the CLI:
#
#   1. a micro-scale 2-worker CCQ run with --telemetry-dir
#   2. assert per-worker event/metrics files exist, merge cleanly
#      (exact post-merge histograms, worker labels), and that every
#      worker evaluation stitches to a parent fan-out span
#   3. assert exclusive stage coverage >= 90% — including the
#      probe_fanout window that holds the in-worker compute — and that
#      report-run renders the worker-lane section
#   4. smoke-test `repro watch` (snapshot + replayed terminal state)
#      and `repro profile` (conv/GEMM hot-path rows present)
#
# Finishes in well under a minute on one CPU.
#
#   bash scripts/verify_observability.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

echo "== 1/4 instrumented 2-worker micro-scale CCQ run =="
python3 -m repro.cli run-ccq --task resnet20_cifar10 --scale micro \
    --probes 2 --max-steps 3 --seed 0 --no-progress --probe-workers 2 \
    --checkpoint-dir "$WORK/ckpt" --telemetry-dir "$WORK/telem" \
    --output "$WORK/summary.json"

echo "== 2/4 verify worker telemetry merges cleanly =="
python3 - "$WORK/telem" "$WORK/summary.json" <<'EOF'
import json
import sys
from pathlib import Path

from repro.telemetry import (
    assemble_traces,
    load_aggregated_run,
    merge_worker_metrics,
    pool_summary,
    worker_lanes,
)

directory = Path(sys.argv[1])
agg = load_aggregated_run(directory)
assert agg.n_workers == 2, f"expected 2 worker files, got {agg.n_workers}"

lanes = worker_lanes(agg)
assert set(lanes) == {0, 1}
assert all(lane.evals > 0 for lane in lanes.values()), \
    "a worker recorded no evaluations"
assert all(lane.busy_s > 0 for lane in lanes.values())

traces = assemble_traces(agg)
assert traces, "no probe_fanout spans in the parent stream"
joined = sum(len(t["children"]) for t in traces)
total = sum(lane.evals for lane in lanes.values())
assert joined == total, \
    f"only {joined}/{total} worker evals stitched to a fan-out round"

merged = merge_worker_metrics(directory)
names = {name for name, _, _, _ in merged.series()}
assert {"worker.evals", "worker.eval_s"} <= names, sorted(names)
workers_seen = {
    labels.get("worker")
    for name, _, labels, _ in merged.series() if name == "worker.evals"
}
assert workers_seen == {"0", "1"}, workers_seen

summary = pool_summary(agg)
assert summary["fanout_rounds"] > 0
assert 0.0 < summary["utilization"] <= 1.0, summary

# The run-ccq --output JSON surfaces the fan-out totals.
payload = json.loads(Path(sys.argv[2]).read_text())
fanout = payload.get("fanout")
assert fanout and fanout["rounds"] > 0, payload.keys()
assert fanout["attempted"] >= fanout["completed"] > 0

print(f"OK: {total} worker evals across 2 lanes, "
      f"{summary['utilization']:.0%} pool utilization, "
      f"{fanout['rounds']} fan-out rounds reported")
EOF

echo "== 3/4 verify stage coverage and the worker-lane report =="
python3 - "$WORK/telem" <<'EOF'
import sys

from repro.telemetry import format_report, load_run, stage_breakdown

run = load_run(sys.argv[1])
breakdown = stage_breakdown(run)
coverage = breakdown["coverage"]
assert coverage >= 0.9, f"stage coverage {coverage:.1%} < 90%"
assert "probe_fanout" in breakdown["stages"], \
    "probe_fanout missing from the stage table"

report = format_report(run)
assert "worker lanes (2 workers)" in report, report[-2000:]
assert "pool utilization" in report
assert "fan-out overhead" in report
print(f"OK: stage coverage {coverage:.1%}, worker lanes rendered")
EOF
python3 -m repro.cli report-run "$WORK/telem" | grep -q "worker lanes"

echo "== 4/4 watch + profile smoke tests =="
python3 -m repro.cli watch "$WORK/telem" --once | tee "$WORK/watch.txt"
grep -q "status: complete" "$WORK/watch.txt"
grep -q "bits:" "$WORK/watch.txt"
python3 -m repro.cli profile --task resnet20_cifar10 --scale micro \
    --batch-size 8 --repeats 2 --json "$WORK/profile.json" \
    | tee "$WORK/profile.txt"
grep -q "conv2d" "$WORK/profile.txt"
grep -q "matmul" "$WORK/profile.txt"
python3 - "$WORK/profile.json" <<'EOF'
import json
import sys

payload = json.loads(open(sys.argv[1]).read())
ops = {op["name"]: op for op in payload["ops"]}
conv = next(op for name, op in ops.items() if name.startswith("conv2d"))
assert conv["flops"] > 0 and conv["calls"] > 0
assert payload["total_s"] > 0
print(f"OK: profiled {len(ops)} op kinds, "
      f"conv at {conv['flops'] / 1e6:.1f} MFLOP/pass-set")
EOF

echo "OK: observability surface verified (lanes, coverage, watch, profile)"
