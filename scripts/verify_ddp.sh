#!/usr/bin/env bash
# Prove data-parallel recovery training is worker-count-invariant end
# to end (docs/ddp.md):
#
#   1. CLI: a micro-scale CCQ run with --recover-trainer ddp must
#      report the identical bit configuration, accuracy, compression
#      and probe rounds for --recover-workers 0 and 2.
#   2. DDPTrainer: updated weight BYTES identical for worker counts
#      {0, 1, 2, 4}, grad_shards=1 bit-equal to the serial loop, and a
#      worker killed mid-round salvaged without perturbing a byte.
#
# Finishes in a few minutes on one CPU.  A stray resource_tracker
# KeyError traceback on stderr is expected from the killed worker.
#
#   bash scripts/verify_ddp.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

# Smoke scale, 12 steps: the first bit drops that actually cost
# accuracy land around step 8, so the adaptive recovery really trains
# (micro never recovers — its accuracy is flat-random).
COMMON=(run-ccq --task resnet20_cifar10 --scale smoke --probes 6
        --max-steps 12 --seed 0 --recover-trainer ddp
        --recover-grad-shards 4)

echo "== 1/3 DDP recovery in-process (--recover-workers 0) =="
python3 -m repro.cli "${COMMON[@]}" --output "$WORK/w0.json"

echo "== 2/3 DDP recovery fanned out (--recover-workers 2) =="
python3 -m repro.cli "${COMMON[@]}" --recover-workers 2 \
    --telemetry-dir "$WORK/telemetry" --output "$WORK/w2.json"

python3 - "$WORK/w0.json" "$WORK/w2.json" "$WORK/telemetry" <<'EOF'
import json
import sys
from pathlib import Path

w0, w2 = (json.load(open(path)) for path in sys.argv[1:3])

mismatches = [
    key for key in ("bit_config", "final_accuracy", "compression",
                    "probe_rounds")
    if w0[key] != w2[key]
]
if mismatches:
    for key in mismatches:
        print(f"MISMATCH {key}: workers=0 {w0[key]!r} "
              f"workers=2 {w2[key]!r}")
    sys.exit(1)

assert w0["recover_trainer"] == w2["recover_trainer"] == "ddp"
assert w2["recover_workers"] == 2

# The comparison must not be vacuous: the pooled run really sharded
# recovery batches (all-reduce rounds recorded) without falling back.
metrics = json.loads(
    (Path(sys.argv[3]) / "metrics.json").read_text()
)
hist = {h["name"]: h["count"] for h in metrics["histograms"]
        if not h.get("labels")}
batches = hist.get("ccq.recover_batch_s", 0)
assert batches > 0, "no recovery batches were DDP-sharded"
assert hist.get("ccq.recover_allreduce_s", 0) == batches, \
    "all-reduce count != sharded batch count"
fallbacks = sum(
    c["value"] for c in metrics["counters"]
    if c["name"] == "ccq.recover_pool_fallbacks"
)
assert fallbacks == 0, "pooled run fell back to in-process shards"
print(f"OK: identical CLI trajectory for --recover-workers 0 and 2 "
      f"({batches} recovery batches sharded across the pool)")
EOF

echo "== 3/3 weight-byte invariance + mid-round worker kill =="
python3 - "$WORK" <<'EOF'
import sys
from pathlib import Path

import numpy as np

import repro.parallel.worker as worker_mod
from repro import models
from repro.core.training import make_sgd, train_epoch
from repro.datasets.synthetic import SyntheticImageConfig, _make_splits
from repro.nn.data import DataLoader
from repro.nn.serialization import named_state_arrays
from repro.parallel import DDPTrainer
from repro.quantization import quantize_model

sys.path.insert(0, ".")
from tests.core.fault_injection import WorkerFaultInjector

work = Path(sys.argv[1])
splits = _make_splits(
    SyntheticImageConfig(n_classes=10, image_size=12, channels=3, seed=0),
    n_train=600, n_val=200, n_test=200, augment=False,
)


def build():
    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    quantize_model(net, "pact")
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    return net, train, make_sgd(net, lr=0.02)


def weight_bytes(net):
    return {name: a.tobytes()
            for name, a in named_state_arrays(net).items()}


# grad_shards=1 must reproduce the serial reference loop bit for bit.
net, train, opt = build()
serial_loss = train_epoch(net, train, opt, max_batches=5)
serial_bytes = weight_bytes(net)
net, train, opt = build()
one_loss = DDPTrainer(net, grad_shards=1, workers=0)(
    net, train, opt, max_batches=5
)
assert one_loss == serial_loss and weight_bytes(net) == serial_bytes, \
    "grad_shards=1 diverged from the serial training loop"
print("OK: grad_shards=1 bit-equal to the serial loop")

# Worker-count invariance at weight-byte granularity, shards fixed.
reference = None
for workers in (0, 1, 2, 4):
    net, train, opt = build()
    if workers == 0:
        trainer = DDPTrainer(net, grad_shards=4, workers=0)
        loss = trainer(net, train, opt, max_batches=5)
    else:
        trainer = DDPTrainer.standalone(net, workers=workers,
                                        grad_shards=4)
        try:
            loss = trainer(net, train, opt, max_batches=5)
        finally:
            trainer.close()
        assert not trainer.degraded, \
            f"{workers}-worker pool silently degraded"
    observed = (loss, weight_bytes(net))
    if reference is None:
        reference = observed
    else:
        assert observed == reference, \
            f"workers={workers} changed the weight bytes"
print("OK: weight bytes identical for recover_workers in {0, 1, 2, 4}")

# A worker killed on its shard is respawned/salvaged bit-identically.
worker_mod.FAULT_HOOK = WorkerFaultInjector(
    work / "faults", kill_on={(0, 1)},
)
net, train, opt = build()
trainer = DDPTrainer.standalone(net, workers=2, grad_shards=4)
try:
    loss = trainer(net, train, opt, max_batches=5)
finally:
    trainer.close()
worker_mod.FAULT_HOOK = None
assert (loss, weight_bytes(net)) == reference, \
    "mid-round worker kill perturbed the trajectory"
print("OK: mid-round worker kill salvaged without perturbing a byte")
EOF
