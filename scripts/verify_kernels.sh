#!/usr/bin/env bash
# Prove the pluggable kernel backend is bit-identical and not slower,
# end to end:
#
#   1. the backend equivalence + integer-lowering test suites
#   2. a headline-shape conv timing check: the fast backend must not be
#      slower than reference (min-of-N on the probe workhorse shape)
#   3. two micro-scale CCQ runs through the CLI — --kernel-backend
#      reference vs fast — whose reported trajectories must match
#      key for key
#
# Finishes in a few minutes on one CPU.
#
#   bash scripts/verify_kernels.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

echo "== 1/3 backend equivalence + integer-lowering tests =="
python3 -m pytest tests/nn/test_backends.py \
    tests/quantization/test_integer_inference.py \
    tests/core/test_backend_invariance.py -q

echo "== 2/3 headline conv shape: fast must not be slower =="
python3 - <<'EOF'
import time

import numpy as np

from repro.nn import Tensor, no_grad
from repro.nn import functional as F
from repro.nn.backends import use_backend

rng = np.random.default_rng(0)
x = Tensor(rng.normal(size=(16, 16, 32, 32)))
w = Tensor(rng.normal(size=(16, 16, 3, 3)) * 0.2)
b = Tensor(rng.normal(size=(16,)) * 0.1)


def best_of(name, repeats=9, warmup=2):
    with use_backend(name), no_grad():
        for _ in range(warmup):
            F.conv2d(x, w, b, padding=1)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            F.conv2d(x, w, b, padding=1)
            best = min(best, time.perf_counter() - t0)
    return best


ref = best_of("reference")
fast = best_of("fast")
print(f"reference {ref * 1e3:.3f} ms   fast {fast * 1e3:.3f} ms   "
      f"speedup {ref / fast:.3f}x")
# 5% slack absorbs scheduler noise on a loaded single-CPU box; a real
# regression (fast slower by design) blows well past it.
if fast > ref * 1.05:
    raise SystemExit("fast backend is slower than reference on the "
                     "headline conv shape")
EOF

echo "== 3/3 CCQ trajectory identical across --kernel-backend =="
COMMON=(run-ccq --task resnet20_cifar10 --scale micro --probes 6
        --max-steps 4 --seed 0)

python3 -m repro.cli "${COMMON[@]}" --kernel-backend reference \
    --output "$WORK/reference.json"
python3 -m repro.cli "${COMMON[@]}" --kernel-backend fast \
    --output "$WORK/fast.json"

python3 - "$WORK/reference.json" "$WORK/fast.json" <<'EOF'
import json
import sys

reference, fast = (json.load(open(path)) for path in sys.argv[1:3])

mismatches = [
    key for key in ("bit_config", "final_accuracy", "compression",
                    "probe_rounds", "probe_forward_passes",
                    "probe_cache_hits")
    if reference[key] != fast[key]
]
if mismatches:
    for key in mismatches:
        print(f"MISMATCH {key}: reference={reference[key]!r} "
              f"fast={fast[key]!r}")
    sys.exit(1)

print(f"OK: identical trajectory under --kernel-backend fast "
      f"(bit config {reference['bit_config']}, "
      f"accuracy {reference['final_accuracy']})")
EOF
