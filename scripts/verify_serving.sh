#!/usr/bin/env bash
# Prove the integer serving engine is a faithful deployment of the
# fake-quant training result, end to end:
#
#   1. the serving test suites: compiler equivalence (hypothesis),
#      micro-batcher concurrency, fault isolation, export round trip
#   2. the slow sustained-stress test (excluded from tier-1 by the
#      `slow` marker)
#   3. a short CLI load test through `repro bench-serve`: >= 8
#      concurrent clients, asserting batch-invariance, zero failures
#      and a finite p99 (the command exits non-zero otherwise)
#
# Finishes in a couple of minutes on one CPU.
#
#   bash scripts/verify_serving.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

echo "== 1/3 serving equivalence + engine + export suites =="
python3 -m pytest tests/serving tests/quantization/test_export_roundtrip.py -q

echo "== 2/3 sustained stress (slow marker) =="
python3 -m pytest tests/serving -m slow -q --override-ini "addopts=-q"

echo "== 3/3 CLI load test: 8 clients through repro bench-serve =="
python3 -m repro.cli bench-serve \
    --clients 8 --requests 8 --max-batch 8 \
    --output "$WORK/bench_serve.json"

python3 - "$WORK/bench_serve.json" <<'EOF'
import json
import math
import sys

load = json.load(open(sys.argv[1]))
assert load["batch_invariant"] is True, "batched outputs diverged"
assert load["n_failures"] == 0, f"failures: {load['n_failures']}"
assert math.isfinite(load["latency_p99_ms"]), "p99 is not finite"
print(f"OK: {load['n_requests']} requests from {load['n_clients']} clients, "
      f"p50 {load['latency_p50_ms']:.2f} ms, p99 {load['latency_p99_ms']:.2f} ms, "
      f"{load['throughput_rps']:.0f} req/s, batch-invariant")
EOF
