#!/usr/bin/env bash
# Prove the self-healing probe pool end to end: a CCQ run whose workers
# are killed and hung by a fault injector must heal itself (respawn +
# salvage) and still produce the bit-identical serial trajectory — and
# a checkpoint with a flipped byte must be rejected by digest
# verification on resume, rolling back to its predecessor and still
# reproducing the reference.
#
#   1. serial reference run (fixed seed)
#   2. 4-worker chaos run (injected worker kills + a hang) -> identical
#      trajectory + journal, >=1 respawn and >=1 salvaged result
#   3. corrupt the newest checkpoint archive, resume -> rollback to the
#      predecessor, reference trajectory reproduced
#
# Finishes in a few minutes on one CPU.  A stray resource_tracker
# KeyError traceback on stderr is expected: it comes from a worker the
# injector killed with os._exit mid-attach, not from the parent.
#
#   bash scripts/verify_chaos.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

python3 - "$WORK" <<'EOF'
import json
import sys
from pathlib import Path

import numpy as np

import repro.parallel.worker as worker_mod
from repro import models
from repro.baselines import PretrainConfig, pretrain
from repro.core import BitLadder, CCQConfig, CCQQuantizer, RecoveryConfig
from repro.datasets.synthetic import SyntheticImageConfig, _make_splits
from repro.nn.data import DataLoader
from repro.quantization import quantize_model
from repro.telemetry import Telemetry

sys.path.insert(0, ".")
from tests.core.fault_injection import WorkerFaultInjector

work = Path(sys.argv[1])
splits = _make_splits(
    SyntheticImageConfig(n_classes=10, image_size=12, channels=3, seed=0),
    n_train=600, n_val=200, n_test=200, augment=False,
)

print("pretraining the float baseline (once)...")
seed_net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
pretrain(
    seed_net,
    DataLoader(splits.train, batch_size=64, shuffle=True, seed=0),
    DataLoader(splits.val, batch_size=100),
    PretrainConfig(epochs=8, lr=0.05, weight_decay=0.0),
)
state = seed_net.state_dict()


def build():
    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    net.load_state_dict(state)
    quantize_model(net, "pact")
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(splits.val, batch_size=100, shuffle=True, seed=7)
    return net, train, val


def config(ckpt=None, **overrides):
    kwargs = dict(
        ladder=BitLadder((8, 4, 2)),
        probes_per_step=6,
        probe_batches=1,
        recovery=RecoveryConfig(mode="manual", epochs=1,
                                use_hybrid_lr=False),
        lr=0.02,
        initial_recovery_epochs=1,
        seed=0,
        max_steps=4,
    )
    if ckpt is not None:
        kwargs["checkpoint_dir"] = str(ckpt)
    kwargs.update(overrides)
    return CCQConfig(**kwargs)


def trajectory(result):
    return (
        [(r.step, r.layer_name, r.from_bits, r.to_bits)
         for r in result.records],
        result.bit_config,
        [r.recovered_accuracy for r in result.records],
        result.final_eval.accuracy,
        result.final_eval.loss,
        result.compression,
    )


def journal_payload(journal):
    return [{k: v for k, v in e.items() if k not in ("ts", "mono")}
            for e in journal.events()]


def counter(telemetry, name):
    return sum(
        e["value"] for e in telemetry.registry.snapshot()["counters"]
        if e["name"] == name
    )


print("== 1/3 serial reference run ==")
net, train, val = build()
serial_q = CCQQuantizer(net, train, val, config=config(work / "serial"))
serial = serial_q.run()

print("== 2/3 chaos run: 4 workers, injected kills + a hang ==")
worker_mod.FAULT_HOOK = WorkerFaultInjector(
    work / "faults",
    kill_on={(0, 0), (1, 2)},
    hang_on={(2, 1)},
    hang_seconds=60.0,
)
net, train, val = build()
telemetry = Telemetry.create(log_level="silent")
chaos_q = CCQQuantizer(
    net, train, val,
    config=config(work / "chaos", probe_workers=4, probe_timeout=2.0),
    telemetry=telemetry,
)
chaos = chaos_q.run()
telemetry.close()
worker_mod.FAULT_HOOK = None

respawns = counter(telemetry, "ccq.pool_respawns")
salvaged = counter(telemetry, "ccq.pool_salvaged_results")
assert respawns >= 1, f"expected >=1 worker respawn, saw {respawns}"
assert salvaged >= 1, f"expected >=1 salvaged result, saw {salvaged}"
assert not chaos_q._pool_failed, "chaos run degraded to serial"
assert trajectory(chaos) == trajectory(serial), \
    "chaos trajectory differs from serial"
assert journal_payload(chaos_q.store.journal) == journal_payload(
    serial_q.store.journal
), "chaos journal differs from serial"
print(f"OK: trajectory + journal bit-identical under chaos "
      f"({respawns:g} respawns, {salvaged:g} salvaged results)")

print("== 3/3 corrupted checkpoint: digest rejection + rollback ==")
ckpt = work / "rollback"
net, train, val = build()
CCQQuantizer(net, train, val, config=config(ckpt, max_steps=3)).run()
state_json = json.loads((ckpt / "state.json").read_text())
archive = ckpt / state_json["model_file"]
blob = bytearray(archive.read_bytes())
blob[200] ^= 0xFF  # one flipped byte
archive.write_bytes(bytes(blob))

net, train, val = build()
telemetry = Telemetry.create(log_level="silent")
resumed_q = CCQQuantizer(
    net, train, val, config=config(ckpt), telemetry=telemetry,
)
resumed = resumed_q.run(resume=True)
telemetry.close()

failures = counter(telemetry, "ccq.checkpoint_integrity_failures")
assert failures >= 1, "corrupted archive was not detected"
assert resumed_q.store.journal.events("checkpoint_rollback"), \
    "rollback was not journaled"
assert trajectory(resumed) == trajectory(serial), \
    "resume after rollback diverged from the reference"
print("OK: flipped byte rejected, rolled back to the predecessor, "
      "reference trajectory reproduced")
EOF
