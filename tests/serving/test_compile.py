"""Compilation pipeline: BN folding, quantizer freezing, error paths.

The bit-exactness of the compiled engine is covered by the hypothesis
suite in ``test_serving_equivalence.py``; this module tests the
compile-time machinery in isolation — folding math, dynamic-quantizer
freezing, the post-op tracer, and every rejection path the compiler
promises to take (branching graphs, unquantized models, missing bit
widths, non-uniform codebooks).
"""

import copy

import numpy as np
import pytest

from repro import models, nn
from repro.nn import Tensor, no_grad
from repro.nn import functional as F
from repro.quantization import quantize_model, quantized_layers, set_uniform_bits
from repro.serving import (
    CompileError,
    compile_model,
    fake_quant_activations,
    fold_batchnorm,
    freeze_dynamic_quantizers,
)
from repro.serving.compile import FrozenActQuantizer


def _warm_bn(net, rng, shape, steps=3):
    net.train()
    with no_grad():
        for _ in range(steps):
            net(Tensor(rng.normal(size=shape)))
    net.eval()
    return net


def _quantized_convnet(rng, policy="pact", w_bits=4, a_bits=4):
    net = models.SmallConvNet(width=8, rng=rng)
    _warm_bn(net, rng, (8, 3, 12, 12))
    quantize_model(net, policy)
    set_uniform_bits(net, w_bits, a_bits)
    calibration = rng.normal(size=(8, 3, 12, 12))
    with no_grad():
        net(Tensor(calibration))
    return net, calibration


class AvgPoolNet(nn.Module):
    """Conv chain exercising the avg-pool post-op (SmallConvNet uses
    GAP and LeNet max-pool, so this path needs its own model).

    The BatchNorms matter beyond fold coverage: folding multiplies the
    weight lattice by data-dependent scales, which keeps the layer
    grids incommensurate so pool averages never land *exactly* on a
    code boundary — the one place float and integer rounding are
    allowed to disagree (see docs/serving.md).
    """

    def __init__(self, rng):
        super().__init__()
        self.conv1 = nn.Conv2d(3, 6, 3, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(6)
        self.conv2 = nn.Conv2d(6, 8, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(8)
        self.fc = nn.Linear(8 * 3 * 3, 10, rng=rng)

    def forward(self, x):
        out = F.avg_pool2d(self.bn1(self.conv1(x)).relu(), 2)
        out = F.avg_pool2d(self.bn2(self.conv2(out)).relu(), 2)
        return self.fc(out.flatten(start_dim=1))


class ResidualNet(nn.Module):
    """Has a skip connection — the chain tracer must reject it."""

    def __init__(self, rng):
        super().__init__()
        self.conv1 = nn.Conv2d(3, 3, 3, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(3, 3, 3, padding=1, rng=rng)
        self.fc = nn.Linear(3 * 12 * 12, 10, rng=rng)

    def forward(self, x):
        out = self.conv1(x).relu()
        out = self.conv2(out) + out  # branch
        return self.fc(out.flatten(start_dim=1))


class TestFoldBatchnorm:
    def test_float_model_equivalence(self, rng):
        net = models.SmallConvNet(width=8, rng=rng)
        _warm_bn(net, rng, (8, 3, 12, 12))
        x = Tensor(rng.normal(size=(4, 3, 12, 12)))
        with no_grad():
            before = net(x).data.copy()
        folded = fold_batchnorm(net, rng.normal(size=(2, 3, 12, 12)))
        with no_grad():
            after = folded(x).data
        np.testing.assert_allclose(after, before, rtol=1e-9, atol=1e-9)

    def test_original_model_untouched(self, rng):
        net = models.SmallConvNet(width=8, rng=rng)
        _warm_bn(net, rng, (8, 3, 12, 12))
        w_before = net.conv1.weight.data.copy()
        fold_batchnorm(net, rng.normal(size=(2, 3, 12, 12)))
        np.testing.assert_array_equal(net.conv1.weight.data, w_before)
        assert any(
            isinstance(m, nn.BatchNorm2d) for _, m in net.named_modules()
        )

    def test_folding_creates_bias(self, rng):
        net, calibration = _quantized_convnet(rng)
        folded = fold_batchnorm(net, calibration)
        for _, layer in quantized_layers(folded):
            if isinstance(layer, nn.Conv2d):
                assert layer.bias is not None

    def test_folded_model_has_no_batchnorm(self, rng):
        net, calibration = _quantized_convnet(rng)
        folded = fold_batchnorm(net, calibration)
        assert not any(
            isinstance(m, nn.BatchNorm2d) for _, m in folded.named_modules()
        )


class TestFreezeDynamicQuantizers:
    def test_dorefa_signed_act_is_frozen(self, rng):
        net, calibration = _quantized_convnet(rng, policy="dorefa")
        frozen = freeze_dynamic_quantizers(net, calibration)
        assert frozen, "dorefa's per-batch-max input quantizer must freeze"
        layers = dict(quantized_layers(net))
        assert any(
            isinstance(layers[name].act_quantizer, FrozenActQuantizer)
            for name in frozen
        )

    def test_static_policies_freeze_nothing(self, rng):
        net, calibration = _quantized_convnet(rng, policy="pact")
        assert freeze_dynamic_quantizers(net, calibration) == []

    def test_frozen_quantizer_is_elementwise(self, rng):
        net, calibration = _quantized_convnet(rng, policy="dorefa")
        frozen = freeze_dynamic_quantizers(net, calibration)
        layers = dict(quantized_layers(net))
        q = layers[frozen[0]].act_quantizer
        bits = layers[frozen[0]].a_bits
        x = rng.normal(size=64)
        with no_grad():
            full = q.quantize(Tensor(x), bits).data
            half = q.quantize(Tensor(x[:32]), bits).data
        np.testing.assert_array_equal(full[:32], half)


class TestCompileSmoke:
    def test_summary_names_stages(self, rng):
        net, calibration = _quantized_convnet(rng)
        compiled = compile_model(net, calibration)
        summary = compiled.summary()
        assert len(summary["layers"]) == len(quantized_layers(net))
        assert [e["name"] for e in summary["layers"]] == compiled.layer_names
        assert compiled.input_shape == (3, 12, 12)

    def test_avgpool_chain_compiles_exactly(self, rng):
        net = AvgPoolNet(rng)
        _warm_bn(net, rng, (8, 3, 12, 12))
        quantize_model(net, "pact")
        set_uniform_bits(net, 4, 4)
        calibration = rng.normal(size=(8, 3, 12, 12))
        with no_grad():
            net(Tensor(calibration))
        compiled = compile_model(net, calibration)
        x = rng.normal(size=(5, 3, 12, 12))
        expected_acts, expected_logits = fake_quant_activations(
            compiled.reference_model, x
        )
        trace, logits = compiled.forward_codes(x)
        np.testing.assert_allclose(logits, expected_logits, atol=1e-8)
        for grid, codes, acts in zip(compiled.grids, trace, expected_acts):
            np.testing.assert_array_equal(codes, grid.codes_from_values(acts))

    def test_batch_independence(self, rng):
        net, calibration = _quantized_convnet(rng)
        compiled = compile_model(net, calibration)
        xs = rng.normal(size=(6, 3, 12, 12))
        batched = compiled.forward(xs)
        for i in range(6):
            solo = compiled.forward(xs[i : i + 1])
            np.testing.assert_array_equal(batched[i], solo[0])


class TestCompileErrors:
    def test_residual_graph_rejected(self, rng):
        net = ResidualNet(rng)
        quantize_model(net, "pact")
        set_uniform_bits(net, 4, 4)
        calibration = rng.normal(size=(4, 3, 12, 12))
        with no_grad():
            net(Tensor(calibration))
        with pytest.raises(CompileError):
            compile_model(net, calibration)

    def test_unquantized_model_rejected(self, rng):
        net = models.SmallConvNet(width=8, rng=rng)
        _warm_bn(net, rng, (4, 3, 12, 12))
        with pytest.raises(CompileError):
            compile_model(net, rng.normal(size=(4, 3, 12, 12)))

    def test_full_precision_layer_rejected(self, rng):
        net, calibration = _quantized_convnet(rng)
        quantized_layers(net)[0][1].w_bits = None
        with pytest.raises(CompileError):
            compile_model(net, calibration)

    def test_non_uniform_codebook_rejected(self, rng):
        net, calibration = _quantized_convnet(rng, policy="lqnets")
        with pytest.raises(CompileError, match="uniform"):
            compile_model(net, calibration)

    def test_forward_shape_check(self, rng):
        net, calibration = _quantized_convnet(rng)
        compiled = compile_model(net, calibration)
        with pytest.raises(ValueError):
            compiled.forward(rng.normal(size=(2, 3, 5, 5)))


def test_reference_model_is_a_copy(rng):
    net, calibration = _quantized_convnet(rng)
    compiled = compile_model(net, calibration)
    assert compiled.reference_model is not net
    original = copy.deepcopy(net.state_dict())
    for key, value in net.state_dict().items():
        np.testing.assert_array_equal(value, original[key])
