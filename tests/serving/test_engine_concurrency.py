"""Micro-batcher under concurrent load: exactness, ordering, deadlines.

The engine's whole pitch is that batching is a latency optimization
with *zero* numerical consequence: every response under interleaved
concurrent load must be bitwise identical to running that input alone,
responses must come back to the right client in submission order, and
the deadline flush must fire when the queue is under-full instead of
waiting forever for a full batch.
"""

import threading
import time

import numpy as np
import pytest

from repro import models
from repro.nn import Tensor, no_grad
from repro.quantization import quantize_model, set_uniform_bits
from repro.serving import (
    ServingEngine,
    batch_invariance_errors,
    compile_model,
    run_load,
)
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(7)
    net = models.SmallConvNet(width=4, rng=rng)
    net.train()
    with no_grad():
        for _ in range(3):
            net(Tensor(rng.normal(size=(8, 3, 8, 8))))
    net.eval()
    quantize_model(net, "pact")
    set_uniform_bits(net, 4, 4)
    calibration = rng.normal(size=(8, 3, 8, 8))
    with no_grad():
        net(Tensor(calibration))
    return compile_model(net, calibration)


@pytest.fixture()
def telemetry():
    t = Telemetry.create(log_level="silent")
    yield t
    t.close()


def _inputs(compiled, n, seed=11):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=compiled.input_shape) for _ in range(n)]


class TestInterleavedClients:
    def test_batched_responses_match_solo_runs(self, compiled):
        inputs = _inputs(compiled, 16)
        with ServingEngine(compiled, max_batch_size=4, max_wait_ms=2.0) as eng:
            result = run_load(
                eng, inputs, n_clients=6, requests_per_client=8
            )
        assert result.n_failures == 0
        assert batch_invariance_errors(compiled, inputs, result) == []

    def test_no_drops_and_per_client_order(self, compiled):
        inputs = _inputs(compiled, 8)
        with ServingEngine(compiled, max_batch_size=4, max_wait_ms=1.0) as eng:
            result = run_load(
                eng, inputs, n_clients=5, requests_per_client=7
            )
        assert result.n_requests == 5 * 7
        for c, trace in enumerate(result.clients):
            # Closed-loop clients submit their inputs in a known order;
            # a drop or cross-client swap breaks either length or the
            # index sequence.
            assert len(trace.outputs) == 7
            assert all(err is None for err in trace.errors)
            expected = [(c + i * 5) % len(inputs) for i in range(7)]
            assert trace.input_indices == expected

    def test_batches_actually_form(self, compiled, telemetry):
        inputs = _inputs(compiled, 8)
        with ServingEngine(
            compiled, max_batch_size=8, max_wait_ms=20.0, telemetry=telemetry
        ) as eng:
            run_load(eng, inputs, n_clients=8, requests_per_client=4)
        sizes = telemetry.registry.histogram("serving.batch_size").values
        assert sizes, "no batches were recorded"
        assert max(sizes) > 1, "concurrent load never coalesced a batch"


class TestDeadlineFlush:
    def test_single_request_is_not_starved(self, compiled, telemetry):
        """An under-full queue must flush at the deadline, not wait for
        max_batch_size requests that will never come."""
        engine = ServingEngine(
            compiled, max_batch_size=64, max_wait_ms=25.0,
            telemetry=telemetry,
        )
        try:
            x = _inputs(compiled, 1)[0]
            t0 = time.monotonic()
            out = engine.predict(x, timeout=10.0)
            elapsed = time.monotonic() - t0
        finally:
            engine.close()
        np.testing.assert_array_equal(out, compiled.forward(x[None])[0])
        assert elapsed < 5.0, "deadline flush did not fire"
        sizes = telemetry.registry.histogram("serving.batch_size").values
        assert sizes and sizes[0] == 1.0

    def test_zero_wait_serves_immediately(self, compiled):
        with ServingEngine(compiled, max_batch_size=8, max_wait_ms=0.0) as eng:
            x = _inputs(compiled, 1)[0]
            out = eng.predict(x, timeout=10.0)
        np.testing.assert_array_equal(out, compiled.forward(x[None])[0])


class TestShutdown:
    def test_close_drains_pending_requests(self, compiled):
        eng = ServingEngine(compiled, max_batch_size=4, max_wait_ms=50.0)
        xs = _inputs(compiled, 6)
        futures = [eng.submit(x) for x in xs]
        eng.close(drain=True)
        for x, fut in zip(xs, futures):
            np.testing.assert_array_equal(
                fut.result(timeout=1.0), compiled.forward(x[None])[0]
            )

    def test_submit_after_close_raises(self, compiled):
        eng = ServingEngine(compiled)
        eng.close()
        with pytest.raises(RuntimeError):
            eng.submit(_inputs(compiled, 1)[0])


@pytest.mark.slow
def test_sustained_stress_stays_exact(compiled):
    """Longer mixed load: many clients, thread-pool backend, reused
    engine — the invariance contract must hold for every response."""
    inputs = _inputs(compiled, 64, seed=23)
    with ServingEngine(
        compiled, max_batch_size=8, max_wait_ms=2.0, backend="threaded"
    ) as eng:
        result = run_load(
            eng, inputs, n_clients=12, requests_per_client=40, timeout=300
        )
    assert result.n_failures == 0
    assert result.n_requests == 12 * 40
    assert batch_invariance_errors(compiled, inputs, result) == []
