"""Property test: the integer engine is bit-exact to the fake-quant model.

For random architectures, policies, bit widths and weights, the
compiled engine's per-layer requantized codes must equal the codes the
float fake-quant reference produces (recovered exactly through each
layer's :class:`ActGrid`), and the float logits must agree to float
round-off.  This is the contract that makes the serving engine a
deployment of the CCQ training result rather than an approximation of
it.

Conv architectures carry BatchNorm: beyond covering folding, the
folded data-dependent scales keep successive layer grids
incommensurate, so pool averages never land *exactly* on a requant
boundary — the only inputs where float arithmetic itself cannot
specify the rounding direction (see docs/serving.md).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import models, nn
from repro.nn import Tensor, no_grad
from repro.nn import functional as F
from repro.quantization import quantize_model, set_uniform_bits
from repro.serving import compile_model, fake_quant_activations


class MaxPoolNet(nn.Module):
    """Tiny LeNet-shaped chain: conv/BN/relu/maxpool x2 then linear."""

    def __init__(self, rng):
        super().__init__()
        self.conv1 = nn.Conv2d(3, 4, 3, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(4)
        self.conv2 = nn.Conv2d(4, 8, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(8)
        self.fc = nn.Linear(8 * 2 * 2, 10, rng=rng)

    def forward(self, x):
        out = F.max_pool2d(self.bn1(self.conv1(x)).relu(), 2)
        out = F.max_pool2d(self.bn2(self.conv2(out)).relu(), 2)
        return self.fc(out.flatten(start_dim=1))


def _build(arch, seed):
    rng = np.random.default_rng(seed)
    if arch == "smallconv":
        net = models.SmallConvNet(width=4, rng=rng)
        shape = (3, 8, 8)
    elif arch == "maxpool":
        net = MaxPoolNet(rng)
        shape = (3, 8, 8)
    else:
        net = models.MLP(24, [16], 10, rng=rng)
        shape = (24,)
    if arch != "mlp":
        net.train()
        with no_grad():
            for _ in range(3):
                net(Tensor(rng.normal(size=(8,) + shape)))
        net.eval()
    return net, shape, rng


@settings(max_examples=20, deadline=None, derandomize=True)
@given(
    arch=st.sampled_from(["smallconv", "maxpool", "mlp"]),
    policy=st.sampled_from(["dorefa", "pact", "lsq"]),
    w_bits=st.integers(min_value=2, max_value=8),
    a_bits=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_engine_matches_fake_quant_reference(arch, policy, w_bits, a_bits, seed):
    net, shape, rng = _build(arch, seed)
    quantize_model(net, policy)
    set_uniform_bits(net, w_bits, a_bits)
    calibration = rng.normal(size=(8,) + shape)
    with no_grad():
        net(Tensor(calibration))

    compiled = compile_model(net, calibration)
    x = rng.normal(size=(4,) + shape)
    expected_acts, expected_logits = fake_quant_activations(
        compiled.reference_model, x
    )

    trace, logits = compiled.forward_codes(x)
    assert len(trace) == len(expected_acts)
    for grid, codes, acts in zip(compiled.grids, trace, expected_acts):
        np.testing.assert_array_equal(codes, grid.codes_from_values(acts))
    np.testing.assert_allclose(logits, expected_logits, rtol=1e-8, atol=1e-8)


@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    policy=st.sampled_from(["dorefa", "pact", "lsq"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_fold_preserves_float_model(policy, seed):
    """BN folding must be a float no-op before any quantization enters."""
    net, shape, rng = _build("smallconv", seed)
    x = Tensor(rng.normal(size=(4,) + shape))
    with no_grad():
        before = net(x).data.copy()
    from repro.serving import fold_batchnorm

    folded = fold_batchnorm(net, rng.normal(size=(2,) + shape))
    with no_grad():
        after = folded(x).data
    np.testing.assert_allclose(after, before, rtol=1e-9, atol=1e-9)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    w_bits=st.integers(min_value=2, max_value=6),
    a_bits=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_batched_forward_equals_solo(w_bits, a_bits, seed):
    """The compiled forward must be batch-invariant code-for-code."""
    net, shape, rng = _build("smallconv", seed)
    quantize_model(net, "pact")
    set_uniform_bits(net, w_bits, a_bits)
    calibration = rng.normal(size=(8,) + shape)
    with no_grad():
        net(Tensor(calibration))
    compiled = compile_model(net, calibration)
    xs = rng.normal(size=(5,) + shape)
    batched = compiled.forward(xs)
    for i in range(xs.shape[0]):
        np.testing.assert_array_equal(
            batched[i], compiled.forward(xs[i : i + 1])[0]
        )
