"""Fault isolation: a poisoned request fails alone, the engine lives on.

Three poison classes are covered: requests rejected by validation
(wrong shape, non-finite values), and requests that detonate *inside*
a forward pass (exercised through a stub model, since the real
compiled model validates everything dangerous up front).  In every
case the failing request gets a structured :class:`RequestError`, the
``serving.request_failures`` counter increments, and subsequent
requests are served normally.
"""

import numpy as np
import pytest

from repro import models
from repro.nn import Tensor, no_grad
from repro.quantization import quantize_model, set_uniform_bits
from repro.serving import RequestError, ServingEngine, compile_model
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(3)
    net = models.SmallConvNet(width=4, rng=rng)
    net.train()
    with no_grad():
        for _ in range(3):
            net(Tensor(rng.normal(size=(8, 3, 8, 8))))
    net.eval()
    quantize_model(net, "pact")
    set_uniform_bits(net, 4, 4)
    calibration = rng.normal(size=(8, 3, 8, 8))
    with no_grad():
        net(Tensor(calibration))
    return compile_model(net, calibration)


@pytest.fixture()
def telemetry():
    t = Telemetry.create(log_level="silent")
    yield t
    t.close()


class ExplodingModel:
    """Stub compiled model: any sample whose first value is exactly the
    poison constant blows up the whole batch forward."""

    POISON = 1e6
    input_shape = (4,)

    def forward(self, x, backend=None):
        if np.any(x.reshape(x.shape[0], -1)[:, 0] == self.POISON):
            raise RuntimeError("kernel detonated")
        return x * 2.0


class TestValidationFaults:
    def test_bad_shape_fails_only_that_request(self, compiled, telemetry):
        rng = np.random.default_rng(0)
        good = rng.normal(size=compiled.input_shape)
        with ServingEngine(compiled, telemetry=telemetry) as eng:
            bad_fut = eng.submit(rng.normal(size=(5, 5)))
            with pytest.raises(RequestError) as excinfo:
                bad_fut.result(timeout=10.0)
            # engine must keep serving after the failure
            out = eng.predict(good, timeout=10.0)
        np.testing.assert_array_equal(out, compiled.forward(good[None])[0])
        err = excinfo.value
        assert err.request_id is not None
        assert "shape" in err.message
        assert err.to_dict()["request_id"] == err.request_id
        assert telemetry.registry.counter(
            "serving.request_failures"
        ).value == 1.0

    def test_non_finite_input_rejected(self, compiled, telemetry):
        rng = np.random.default_rng(1)
        poisoned = rng.normal(size=compiled.input_shape)
        poisoned[0, 0, 0] = np.nan
        with ServingEngine(compiled, telemetry=telemetry) as eng:
            with pytest.raises(RequestError, match="finite"):
                eng.predict(poisoned, timeout=10.0)
            # and again with inf, to prove the engine survived
            poisoned[0, 0, 0] = np.inf
            with pytest.raises(RequestError, match="finite"):
                eng.predict(poisoned, timeout=10.0)
        assert telemetry.registry.counter(
            "serving.request_failures"
        ).value == 2.0

    def test_mixed_batch_good_requests_survive(self, compiled, telemetry):
        rng = np.random.default_rng(2)
        goods = [rng.normal(size=compiled.input_shape) for _ in range(3)]
        with ServingEngine(
            compiled, max_batch_size=8, max_wait_ms=20.0, telemetry=telemetry
        ) as eng:
            futures = [eng.submit(goods[0])]
            futures.append(eng.submit(rng.normal(size=(1,))))
            futures.extend(eng.submit(g) for g in goods[1:])
            results = []
            for fut in futures:
                try:
                    results.append(fut.result(timeout=10.0))
                except RequestError:
                    results.append(None)
        assert results[1] is None
        for g, out in zip(goods, [results[0]] + results[2:]):
            np.testing.assert_array_equal(out, compiled.forward(g[None])[0])
        assert telemetry.registry.counter(
            "serving.request_failures"
        ).value == 1.0


class TestForwardFaults:
    def test_batch_explosion_isolates_poisoned_request(self, telemetry):
        model = ExplodingModel()
        poison = np.full(model.input_shape, model.POISON)
        good = np.ones(model.input_shape)
        with ServingEngine(
            model, max_batch_size=8, max_wait_ms=20.0, telemetry=telemetry
        ) as eng:
            futures = [eng.submit(good), eng.submit(poison), eng.submit(good)]
            outs = []
            for fut in futures:
                try:
                    outs.append(fut.result(timeout=10.0))
                except RequestError as err:
                    outs.append(err)
        # the poisoned request failed with a structured error...
        assert isinstance(outs[1], RequestError)
        assert "detonated" in outs[1].message
        # ...while its batchmates were salvaged by the solo retry
        np.testing.assert_array_equal(outs[0], good * 2.0)
        np.testing.assert_array_equal(outs[2], good * 2.0)
        assert telemetry.registry.counter(
            "serving.request_failures"
        ).value == 1.0
        assert telemetry.registry.counter(
            "serving.requests_total"
        ).value == 3.0

    def test_engine_serves_after_explosion(self, telemetry):
        model = ExplodingModel()
        poison = np.full(model.input_shape, model.POISON)
        good = np.arange(4, dtype=np.float64)
        with ServingEngine(model, telemetry=telemetry) as eng:
            with pytest.raises(RequestError):
                eng.predict(poison, timeout=10.0)
            for _ in range(3):
                np.testing.assert_array_equal(
                    eng.predict(good, timeout=10.0), good * 2.0
                )
