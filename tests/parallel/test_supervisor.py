"""The pool supervision layer: deadlines, respawn, salvage, quarantine.

Unit tests cover the pure policy pieces (adaptive deadline math, outcome
schema validation, budget bookkeeping).  Integration tests run a *real*
forked pool with :class:`~tests.core.fault_injection.WorkerFaultInjector`
installed as the worker fault hook and assert the supervisor heals
kills, hangs and corrupt results while keeping every salvaged loss
bit-identical to the serial evaluation.
"""

import numpy as np
import pytest

import repro.parallel.worker as worker_mod
from repro import models
from repro.core.probe import pin_probe_batches
from repro.core.training import evaluate
from repro.datasets.synthetic import SyntheticImageConfig, _make_splits
from repro.nn.data import DataLoader
from repro.nn.serialization import named_state_arrays
from repro.parallel import (
    PoolSupervisor,
    ProbeWorkerPool,
    SupervisionConfig,
)
from repro.parallel.supervisor import outcome_problem
from repro.quantization import (
    get_bit_config,
    quantize_model,
    quantized_layers,
)

from ..core.fault_injection import WorkerFaultInjector


class TestDeadlinePolicy:
    def test_startup_timeout_before_any_observation(self):
        sup = PoolSupervisor(SupervisionConfig(startup_timeout=77.0))
        assert sup.ema_batch_s is None
        assert sup.task_deadline_s(4) == 77.0

    def test_probe_timeout_override_wins(self):
        sup = PoolSupervisor(SupervisionConfig(probe_timeout=3.5))
        sup.observe_elapsed(10.0, 1)  # would derive a huge deadline
        assert sup.task_deadline_s(100) == 3.5

    def test_ema_derived_deadline(self):
        cfg = SupervisionConfig(
            deadline_safety=10.0, deadline_floor=0.5,
            deadline_ceiling=1000.0, ema_alpha=0.5,
        )
        sup = PoolSupervisor(cfg)
        sup.observe_elapsed(1.0, 4)  # 0.25 s/batch
        assert sup.ema_batch_s == pytest.approx(0.25)
        assert sup.task_deadline_s(4) == pytest.approx(10.0)
        sup.observe_elapsed(2.0, 4)  # 0.5 s/batch -> EMA 0.375
        assert sup.ema_batch_s == pytest.approx(0.375)
        assert sup.task_deadline_s(4) == pytest.approx(15.0)

    def test_deadline_clamped_to_floor_and_ceiling(self):
        cfg = SupervisionConfig(
            deadline_safety=1.0, deadline_floor=2.0, deadline_ceiling=5.0,
        )
        sup = PoolSupervisor(cfg)
        sup.observe_elapsed(0.001, 1)  # tiny: would derive ~1 ms
        assert sup.task_deadline_s(1) == 2.0
        sup = PoolSupervisor(cfg)
        sup.observe_elapsed(100.0, 1)  # huge: would derive 100 s
        assert sup.task_deadline_s(1) == 5.0

    def test_round_deadline_scales_with_waves(self):
        sup = PoolSupervisor(SupervisionConfig(probe_timeout=2.0))
        # 5 tasks over 2 workers -> 3 waves.
        assert sup.round_deadline_s(5, 1, 2) == pytest.approx(6.0)
        assert sup.round_deadline_s(2, 1, 2) == pytest.approx(2.0)

    def test_nonpositive_observations_ignored(self):
        sup = PoolSupervisor()
        sup.observe_elapsed(0.0, 4)
        sup.observe_elapsed(-1.0, 4)
        sup.observe_elapsed(1.0, 0)
        assert sup.ema_batch_s is None


class TestOutcomeSchema:
    def _ok(self, **overrides):
        outcome = {
            "task_id": 0, "worker": 1, "status": "ok",
            "loss": 1.25, "elapsed": 0.01,
        }
        outcome.update(overrides)
        return outcome

    def test_well_formed_outcomes_pass(self):
        assert outcome_problem(self._ok()) is None
        assert outcome_problem(self._ok(status="diverged", loss=None)) is None
        assert outcome_problem(self._ok(status="error", loss=None)) is None

    def test_malformed_outcomes_are_described(self):
        assert "not a dict" in outcome_problem(["nope"])
        assert "task_id" in outcome_problem(self._ok(task_id="x"))
        assert "status" in outcome_problem(self._ok(status="weird"))
        assert "loss" in outcome_problem(self._ok(loss=None))
        assert "loss" in outcome_problem(self._ok(loss=float("nan")))
        assert "loss" in outcome_problem(self._ok(loss=float("inf")))


class TestBudgetBookkeeping:
    def test_reset_budget_rearms_the_supervisor(self):
        sup = PoolSupervisor(SupervisionConfig(respawn_budget=2))
        sup.respawns_used = 2
        sup._written_off.add(0)
        sup.reset_budget()
        assert sup.respawns_used == 0
        assert sup._written_off == set()


# -- integration against a real forked pool -----------------------------------


@pytest.fixture(scope="module")
def val_dataset():
    config = SyntheticImageConfig(
        n_classes=10, image_size=12, channels=3, seed=0
    )
    return _make_splits(
        config, n_train=16, n_val=64, n_test=8, augment=False
    ).val


@pytest.fixture()
def quantized_net():
    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    quantize_model(net, "pact")
    return net


@pytest.fixture()
def install_hook(monkeypatch):
    """Install a WorkerFaultInjector as the worker fault hook."""

    def install(injector):
        monkeypatch.setattr(worker_mod, "FAULT_HOOK", injector)
        return injector

    return install


def serial_loss(net, layers, layer_names, bits, pinned):
    saved = [(layers[n].w_bits, layers[n].a_bits) for n in layer_names]
    try:
        for n in layer_names:
            layers[n].w_bits = bits
            layers[n].a_bits = bits
        return float(evaluate(net, pinned).loss)
    finally:
        for n, (w, a) in zip(layer_names, saved):
            layers[n].w_bits = w
            layers[n].a_bits = a


def run_one_round(net, pool, supervisor, tasks, val_dataset):
    pinned = pin_probe_batches(
        DataLoader(val_dataset, batch_size=32), max_batches=1
    )
    report = supervisor.run_round(
        pool, named_state_arrays(net), get_bit_config(net),
        pinned.batches, tasks,
    )
    return report, pinned


class TestSupervisedFaults:
    def test_worker_kill_is_respawned_and_results_salvaged(
        self, quantized_net, val_dataset, install_hook, tmp_path
    ):
        net = quantized_net
        layers = dict(quantized_layers(net))
        names = list(layers)
        install_hook(WorkerFaultInjector(tmp_path / "faults",
                                         kill_on={(0, 0)}))
        pool = ProbeWorkerPool(net, n_workers=2)
        sup = PoolSupervisor(SupervisionConfig(startup_timeout=60.0))
        try:
            tasks = [((i, 4), [name], 4)
                     for i, name in enumerate(names[:4])]
            report, pinned = run_one_round(
                net, pool, sup, tasks, val_dataset
            )
            assert report.respawned >= 1
            assert report.faults  # the death was recorded
            # Every candidate completed: the killed worker's in-flight
            # task was requeued onto a survivor (or its replacement).
            assert set(report.outcomes) == {key for key, _, _ in tasks}
            assert report.salvaged == report.completed == len(tasks)
            assert not report.degraded
            # Salvaged losses are still bit-identical to serial.
            for key, layer_names, bits in tasks:
                expected = serial_loss(net, layers, layer_names, bits,
                                       pinned)
                assert report.outcomes[key]["loss"] == expected
            # The pool is whole again.
            assert pool.alive_workers() == [0, 1]
        finally:
            pool.close()

    def test_hung_worker_is_reaped_at_the_deadline(
        self, quantized_net, val_dataset, install_hook, tmp_path
    ):
        net = quantized_net
        names = list(dict(quantized_layers(net)))
        install_hook(WorkerFaultInjector(
            tmp_path / "faults", hang_on={(0, 0)}, hang_seconds=60.0,
        ))
        pool = ProbeWorkerPool(net, n_workers=2)
        sup = PoolSupervisor(SupervisionConfig(probe_timeout=1.5))
        try:
            tasks = [((i, 4), [name], 4)
                     for i, name in enumerate(names[:3])]
            report, _ = run_one_round(net, pool, sup, tasks, val_dataset)
            assert any("hung" in fault for fault in report.faults)
            assert report.respawned >= 1
            # The healthy worker's results were kept; the hung worker's
            # candidates go serial.
            assert report.completed >= 1
            assert report.missing
            assert set(report.outcomes) | set(report.missing) == {
                key for key, _, _ in tasks
            }
            assert pool.alive_workers() == [0, 1]
        finally:
            pool.close()

    def test_corrupt_result_recycles_worker_and_goes_serial(
        self, quantized_net, val_dataset, install_hook, tmp_path
    ):
        net = quantized_net
        names = list(dict(quantized_layers(net)))
        install_hook(WorkerFaultInjector(tmp_path / "faults",
                                         corrupt_on={(0, 0)}))
        pool = ProbeWorkerPool(net, n_workers=2)
        sup = PoolSupervisor()
        try:
            tasks = [((i, 4), [name], 4)
                     for i, name in enumerate(names[:3])]
            report, _ = run_one_round(net, pool, sup, tasks, val_dataset)
            assert any("corrupt result" in f for f in report.faults)
            # The corrupt candidate is never trusted: it goes serial.
            assert (0, 4) in report.missing
            assert (0, 4) not in report.outcomes
            # Everything else completed.
            assert set(report.outcomes) == {(1, 4), (2, 4)}
            assert report.respawned >= 1
        finally:
            pool.close()

    def test_repeated_crashes_quarantine_the_candidate(
        self, quantized_net, val_dataset, install_hook, tmp_path
    ):
        net = quantized_net
        names = list(dict(quantized_layers(net)))
        poison = names[0]
        install_hook(WorkerFaultInjector(tmp_path / "faults",
                                         kill_layers=[poison]))
        pool = ProbeWorkerPool(net, n_workers=2)
        sup = PoolSupervisor(SupervisionConfig(quarantine_threshold=2))
        try:
            tasks = [((i, 4), [name], 4)
                     for i, name in enumerate(names[:3])]
            report, _ = run_one_round(net, pool, sup, tasks, val_dataset)
            assert report.quarantined == [(0, 4)]
            assert sup.is_quarantined((0, 4))
            assert (0, 4) in report.missing
            assert report.respawned >= 2  # both crashes healed

            # A later round never fans the quarantined candidate out.
            report2, _ = run_one_round(net, pool, sup, tasks, val_dataset)
            assert report2.attempted == 2
            assert set(report2.outcomes) == {(1, 4), (2, 4)}
            assert report2.respawned == 0
        finally:
            pool.close()

    def test_kill_during_respawn_is_retried_under_budget(
        self, quantized_net, val_dataset, install_hook, tmp_path
    ):
        net = quantized_net
        names = list(dict(quantized_layers(net)))
        # Worker 0's first eval kills it; its first *respawn* (start
        # index 1) dies before the handshake, so the supervisor must
        # retry the respawn itself.
        install_hook(WorkerFaultInjector(
            tmp_path / "faults", kill_on={(0, 0)}, start_kill={(0, 1)},
        ))
        pool = ProbeWorkerPool(net, n_workers=2)
        sup = PoolSupervisor(SupervisionConfig(respawn_budget=4))
        try:
            tasks = [((i, 4), [name], 4)
                     for i, name in enumerate(names[:3])]
            report, _ = run_one_round(net, pool, sup, tasks, val_dataset)
            assert any("respawn of worker 0 failed" in f
                       for f in report.faults)
            assert report.respawned >= 1
            assert sup.respawns_used >= 2  # failed attempt consumed budget
            assert not report.degraded
            assert set(report.outcomes) == {key for key, _, _ in tasks}
            assert pool.alive_workers() == [0, 1]
        finally:
            pool.close()

    def test_exhausted_budget_degrades_but_still_salvages(
        self, quantized_net, val_dataset, install_hook, tmp_path
    ):
        net = quantized_net
        names = list(dict(quantized_layers(net)))
        install_hook(WorkerFaultInjector(tmp_path / "faults",
                                         kill_on={(0, 0)}))
        pool = ProbeWorkerPool(net, n_workers=2)
        sup = PoolSupervisor(SupervisionConfig(respawn_budget=0))
        try:
            tasks = [((i, 4), [name], 4)
                     for i, name in enumerate(names[:4])]
            report, _ = run_one_round(net, pool, sup, tasks, val_dataset)
            assert report.degraded
            assert report.respawned == 0
            # The dead worker's tasks were still requeued onto the
            # survivor: nothing was thrown away.
            assert set(report.outcomes) == {key for key, _, _ in tasks}
            assert pool.alive_workers() == [1]
        finally:
            pool.close()
