"""The probe worker pool: bit-identical worker evals, failure modes."""

import numpy as np
import pytest

from repro import models
from repro.core.probe import pin_probe_batches
from repro.core.training import evaluate
from repro.datasets.synthetic import SyntheticImageConfig, _make_splits
from repro.nn.data import DataLoader
from repro.nn.serialization import named_state_arrays
from repro.parallel import PoolError, ProbeWorkerPool, create_probe_pool
from repro.quantization import (
    get_bit_config,
    quantize_model,
    quantized_layers,
)


@pytest.fixture(scope="module")
def val_dataset():
    config = SyntheticImageConfig(
        n_classes=10, image_size=12, channels=3, seed=0
    )
    return _make_splits(
        config, n_train=16, n_val=64, n_test=8, augment=False
    ).val


@pytest.fixture()
def quantized_net():
    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    quantize_model(net, "pact")
    return net


def serial_loss(net, layers, layer_names, bits, pinned):
    saved = [(layers[n].w_bits, layers[n].a_bits) for n in layer_names]
    try:
        for n in layer_names:
            layers[n].w_bits = bits
            layers[n].a_bits = bits
        return float(evaluate(net, pinned).loss)
    finally:
        for n, (w, a) in zip(layer_names, saved):
            layers[n].w_bits = w
            layers[n].a_bits = a


class TestPoolEvaluation:
    def test_worker_losses_bit_identical_to_serial(
        self, quantized_net, val_dataset
    ):
        net = quantized_net
        layers = dict(quantized_layers(net))
        names = list(layers)
        pinned = pin_probe_batches(
            DataLoader(val_dataset, batch_size=32), max_batches=1
        )
        pool = create_probe_pool(net, n_workers=2)
        try:
            pool.broadcast(
                named_state_arrays(net), get_bit_config(net),
                pinned.batches,
            )
            tasks = [
                ((i, 4), [name], 4) for i, name in enumerate(names[:3])
            ]
            outcomes = pool.evaluate_candidates(tasks)
            assert set(outcomes) == {key for key, _, _ in tasks}
            for (key, layer_names, bits) in tasks:
                outcome = outcomes[key]
                assert outcome["status"] == "ok"
                assert outcome["elapsed"] > 0
                expected = serial_loss(net, layers, layer_names, bits,
                                       pinned)
                assert outcome["loss"] == expected

            # The candidates landed on both workers (round-robin over 2).
            assert {o["worker"] for o in outcomes.values()} == {0, 1}
        finally:
            pool.close()

    def test_rebroadcast_picks_up_new_state(
        self, quantized_net, val_dataset
    ):
        net = quantized_net
        layers = dict(quantized_layers(net))
        name = next(iter(layers))
        pinned = pin_probe_batches(
            DataLoader(val_dataset, batch_size=32), max_batches=1
        )
        pool = ProbeWorkerPool(net, n_workers=1)
        try:
            pool.broadcast(named_state_arrays(net), get_bit_config(net),
                           pinned.batches)
            first = pool.evaluate_candidates([(("k", 4), [name], 4)])

            # Perturb the model, re-broadcast (same layout -> same
            # segment), and the worker must score the *new* weights.
            for _, p in net.named_parameters():
                p.data += 0.05
            pool.broadcast(named_state_arrays(net), get_bit_config(net),
                           pinned.batches)
            second = pool.evaluate_candidates([(("k", 4), [name], 4)])

            assert first[("k", 4)]["loss"] != second[("k", 4)]["loss"]
            expected = serial_loss(net, layers, [name], 4, pinned)
            assert second[("k", 4)]["loss"] == expected
        finally:
            pool.close()


class TestPoolFailure:
    def test_unknown_layer_ships_error_and_raises(
        self, quantized_net, val_dataset
    ):
        pinned = pin_probe_batches(
            DataLoader(val_dataset, batch_size=32), max_batches=1
        )
        pool = ProbeWorkerPool(quantized_net, n_workers=1)
        try:
            pool.broadcast(
                named_state_arrays(quantized_net),
                get_bit_config(quantized_net), pinned.batches,
            )
            with pytest.raises(PoolError, match="failed"):
                pool.evaluate_candidates([(("k", 4), ["no.such.layer"], 4)])
        finally:
            pool.close()

    def test_closed_pool_rejects_work(self, quantized_net):
        pool = ProbeWorkerPool(quantized_net, n_workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(PoolError):
            pool.evaluate_candidates([])

    def test_invalid_worker_count(self, quantized_net):
        with pytest.raises(ValueError):
            ProbeWorkerPool(quantized_net, n_workers=0)
