"""Shared-memory broadcast: pack/attach roundtrip and block reuse."""

import numpy as np
import pytest

from repro.parallel import SharedArrayStore, attach_arrays, views_from
from repro.parallel.sharedmem import _ALIGN


def sample_arrays(scale=1.0):
    rng = np.random.default_rng(0)
    return {
        "conv.weight": (scale * rng.normal(size=(4, 3, 3, 3))),
        "fc.weight": (scale * rng.normal(size=(10, 36))).astype(np.float32),
        "buffer.bn.running_mean": rng.normal(size=(4,)),
        "pinned.0.labels": np.arange(16, dtype=np.int64),
    }


class TestRoundtrip:
    def test_attach_sees_identical_values(self):
        store = SharedArrayStore()
        try:
            arrays = sample_arrays()
            name, manifest, remapped = store.ensure(arrays)
            assert remapped
            shm, views = attach_arrays(name, manifest)
            try:
                assert set(views) == set(arrays)
                for key, a in arrays.items():
                    np.testing.assert_array_equal(views[key], a)
                    assert views[key].dtype == a.dtype
            finally:
                del views
                shm.close()
        finally:
            store.unlink()

    def test_offsets_are_aligned(self):
        store = SharedArrayStore()
        try:
            _, manifest, _ = store.ensure(sample_arrays())
            for entry in manifest:
                assert int(entry["offset"]) % _ALIGN == 0
        finally:
            store.unlink()

    def test_non_contiguous_input_packed_correctly(self):
        store = SharedArrayStore()
        try:
            base = np.arange(64, dtype=np.float64).reshape(8, 8)
            strided = base[:, ::2]  # non-contiguous view
            name, manifest, _ = store.ensure({"w": strided})
            shm, views = attach_arrays(name, manifest)
            try:
                np.testing.assert_array_equal(views["w"], strided)
            finally:
                del views
                shm.close()
        finally:
            store.unlink()


class TestBlockReuse:
    def test_same_layout_reuses_segment(self):
        store = SharedArrayStore()
        try:
            name1, manifest1, remapped1 = store.ensure(sample_arrays())
            name2, manifest2, remapped2 = store.ensure(sample_arrays(2.0))
            assert remapped1 and not remapped2
            assert name1 == name2
            assert manifest1 == manifest2
            # The refreshed values are visible through a fresh attach.
            shm, views = attach_arrays(name2, manifest2)
            try:
                np.testing.assert_array_equal(
                    views["conv.weight"], sample_arrays(2.0)["conv.weight"]
                )
            finally:
                del views
                shm.close()
        finally:
            store.unlink()

    def test_layout_change_remaps(self):
        store = SharedArrayStore()
        try:
            store.ensure(sample_arrays())
            changed = sample_arrays()
            changed["conv.weight"] = np.zeros((2, 2))
            name, manifest, remapped = store.ensure(changed)
            assert remapped
            shm, views = attach_arrays(name, manifest)
            try:
                assert views["conv.weight"].shape == (2, 2)
            finally:
                del views
                shm.close()
        finally:
            store.unlink()

    def test_views_from_existing_mapping(self):
        """The worker's refresh path: new views over the same segment."""
        store = SharedArrayStore()
        try:
            name, manifest, _ = store.ensure(sample_arrays())
            shm, views = attach_arrays(name, manifest)
            try:
                del views
                store.ensure(sample_arrays(3.0))
                refreshed = views_from(shm, manifest)
                np.testing.assert_array_equal(
                    refreshed["fc.weight"],
                    sample_arrays(3.0)["fc.weight"],
                )
                del refreshed
            finally:
                shm.close()
        finally:
            store.unlink()


class TestLifecycle:
    def test_unlink_idempotent(self):
        store = SharedArrayStore()
        store.ensure(sample_arrays())
        store.unlink()
        store.unlink()
        assert store.name is None

    def test_attach_unknown_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_arrays("repro-no-such-segment", [])
