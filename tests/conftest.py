"""Shared fixtures: tiny datasets and pretrained models.

Session-scoped so the expensive bits (pretraining a float network) run
once per pytest invocation.
"""

import numpy as np
import pytest

from repro import models
from repro.baselines import PretrainConfig, pretrain
from repro.datasets.synthetic import SyntheticImageConfig, _make_splits
from repro.nn.data import DataLoader


TINY_IMAGE_SIZE = 12


@pytest.fixture(scope="session")
def tiny_splits():
    """A small, learnable synthetic task (12x12, 10 classes)."""
    config = SyntheticImageConfig(
        n_classes=10, image_size=TINY_IMAGE_SIZE, channels=3, seed=0
    )
    return _make_splits(config, n_train=600, n_val=200, n_test=200, augment=False)


@pytest.fixture(scope="session")
def tiny_loaders(tiny_splits):
    train = DataLoader(tiny_splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(tiny_splits.val, batch_size=100)
    return train, val


@pytest.fixture(scope="session")
def pretrained_state(tiny_loaders):
    """State dict + baseline accuracy of a pretrained SmallConvNet."""
    train, val = tiny_loaders
    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    result = pretrain(
        net, train, val,
        PretrainConfig(epochs=8, lr=0.05, weight_decay=0.0),
    )
    return net.state_dict(), result.baseline_accuracy


@pytest.fixture()
def pretrained_net(pretrained_state):
    """A fresh pretrained SmallConvNet (safe to mutate per test)."""
    state, baseline = pretrained_state
    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    net.load_state_dict(state)
    return net, baseline


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
