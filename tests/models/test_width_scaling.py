"""Width scaling and the paper's scaled-substitute assumptions."""

import numpy as np
import pytest

from repro import models
from repro.nn.tensor import Tensor


class TestWidthMult:
    @pytest.mark.parametrize("mult", [0.25, 0.5, 1.0])
    def test_cifar_resnet_forward_at_all_widths(self, mult):
        net = models.resnet20(width_mult=mult, rng=np.random.default_rng(0))
        out = net(Tensor(np.zeros((1, 3, 16, 16))))
        assert out.shape == (1, 10)

    def test_channels_never_below_floor(self):
        net = models.resnet50(
            num_classes=10, width_mult=0.01, small_input=True,
            rng=np.random.default_rng(0),
        )
        convs = [
            m for _, m in net.named_modules()
            if m.__class__.__name__ == "Conv2d"
        ]
        assert all(c.out_channels >= 4 for c in convs)

    def test_relative_layer_size_spectrum_preserved(self):
        """The λ knob relies on the layer-size skew; width scaling must
        not flatten it."""
        def skew(mult):
            net = models.resnet18(
                width_mult=mult, small_input=True,
                rng=np.random.default_rng(0),
            )
            sizes = sorted(
                m.weight.size for _, m in net.named_modules()
                if m.__class__.__name__ == "Conv2d"
            )
            return sizes[-1] / sizes[0]

        assert skew(0.25) > 20
        assert skew(1.0) > 20

    def test_last_stage_dominates_storage(self):
        """In ResNets most parameters live in the last stage — the skew
        the memory-aware competition exploits."""
        net = models.resnet20(width_mult=0.5, rng=np.random.default_rng(0))
        stage_params = {}
        for name, p in net.named_parameters():
            stage = name.split(".")[0]
            stage_params[stage] = stage_params.get(stage, 0) + p.size
        assert stage_params["layer3"] > stage_params["layer1"]
        assert stage_params["layer3"] > stage_params["layer2"]
