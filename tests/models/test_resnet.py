"""ResNet family: shapes, parameter counts, topology properties."""

import numpy as np
import pytest

from repro import models
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def rng():
    return np.random.default_rng(0)


class TestCifarResNets:
    @pytest.mark.parametrize("ctor,blocks", [
        (models.resnet20, 3), (models.resnet32, 5),
        (models.resnet44, 7), (models.resnet56, 9),
    ])
    def test_depth_formula(self, ctor, blocks):
        net = ctor(width_mult=0.25, rng=rng())
        convs = [
            m for _, m in net.named_modules()
            if m.__class__.__name__ == "Conv2d"
        ]
        # 6n + 2 layers: 6n conv (+ shortcut projections) + stem + fc.
        # Count only the non-shortcut convs: stem + 6n.
        n_main = 1 + 6 * blocks
        n_shortcut = 2  # one projection per stage transition
        assert len(convs) == n_main + n_shortcut

    def test_forward_shape(self):
        net = models.resnet20(num_classes=10, width_mult=0.25, rng=rng())
        out = net(Tensor(np.random.default_rng(1).normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_resnet20_param_count_full_width(self):
        net = models.resnet20(width_mult=1.0, rng=rng())
        # Published ResNet-20 has ~0.27M parameters.
        assert 0.25e6 < net.num_parameters() < 0.30e6

    def test_width_mult_scales_params(self):
        full = models.resnet20(width_mult=1.0, rng=rng()).num_parameters()
        half = models.resnet20(width_mult=0.5, rng=rng()).num_parameters()
        assert half < full / 3  # conv params scale ~quadratically

    def test_spatial_downsampling(self):
        net = models.resnet20(width_mult=0.25, rng=rng())
        # Stage strides halve the spatial dims twice: 16 -> 8 -> 4.
        x = Tensor(np.zeros((1, 3, 16, 16)))
        out = net.layer3(net.layer2(net.layer1(net.bn1(net.conv1(x)).relu())))
        assert out.shape[2:] == (4, 4)

    def test_trains_one_step(self):
        net = models.resnet20(width_mult=0.25, rng=rng())
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3, 16, 16)))
        y = np.array([1, 2])
        loss = F.cross_entropy(net(x), y)
        loss.backward()
        grads = [p.grad for p in net.parameters()]
        assert all(g is not None for g in grads)


class TestImageNetResNets:
    def test_resnet18_small_input_shape(self):
        net = models.resnet18(
            num_classes=100, width_mult=0.125, small_input=True, rng=rng()
        )
        out = net(Tensor(np.zeros((1, 3, 32, 32))))
        assert out.shape == (1, 100)

    def test_resnet18_full_stem_downsamples(self):
        net = models.resnet18(
            num_classes=10, width_mult=0.125, small_input=False, rng=rng()
        )
        out = net(Tensor(np.zeros((1, 3, 64, 64))))
        assert out.shape == (1, 10)

    def test_resnet50_uses_bottlenecks(self):
        net = models.resnet50(
            num_classes=10, width_mult=0.0625, small_input=True, rng=rng()
        )
        bottlenecks = [
            m for _, m in net.named_modules()
            if isinstance(m, models.Bottleneck)
        ]
        assert len(bottlenecks) == 3 + 4 + 6 + 3

    def test_resnet18_block_counts(self):
        net = models.resnet18(width_mult=0.125, small_input=True, rng=rng())
        basics = [
            m for _, m in net.named_modules()
            if isinstance(m, models.BasicBlock)
        ]
        assert len(basics) == 8

    def test_bottleneck_expansion(self):
        block = models.Bottleneck(16, 8, rng=rng())
        out = block(Tensor(np.zeros((1, 16, 4, 4))))
        assert out.shape == (1, 32, 4, 4)

    def test_layer_size_skew_exists(self):
        # The ImageNet topology has strongly size-skewed layers, which the
        # memory-aware lambda relies on.
        net = models.resnet18(width_mult=0.25, small_input=True, rng=rng())
        sizes = [
            m.weight.size for _, m in net.named_modules()
            if m.__class__.__name__ == "Conv2d"
        ]
        assert max(sizes) / min(sizes) > 50


class TestBlocks:
    def test_basic_block_identity_shortcut(self):
        block = models.BasicBlock(8, 8, stride=1, rng=rng())
        assert block.shortcut.__class__.__name__ == "Identity"

    def test_basic_block_projection_shortcut(self):
        block = models.BasicBlock(8, 16, stride=2, rng=rng())
        assert block.shortcut.__class__.__name__ == "Sequential"
        out = block(Tensor(np.zeros((1, 8, 8, 8))))
        assert out.shape == (1, 16, 4, 4)

    def test_relu_output_nonnegative(self):
        block = models.BasicBlock(4, 4, rng=rng())
        out = block(Tensor(np.random.default_rng(0).normal(size=(2, 4, 6, 6))))
        assert out.data.min() >= 0.0
