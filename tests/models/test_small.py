"""Small reference networks."""

import numpy as np

from repro import models
from repro.nn.tensor import Tensor


def rng():
    return np.random.default_rng(0)


class TestMLP:
    def test_forward_shape(self):
        net = models.MLP(12, [16, 8], 4, rng=rng())
        out = net(Tensor(np.zeros((5, 3, 2, 2))))
        assert out.shape == (5, 4)

    def test_hidden_layer_count(self):
        net = models.MLP(4, [8, 8, 8], 2, rng=rng())
        linears = [
            m for _, m in net.named_modules()
            if m.__class__.__name__ == "Linear"
        ]
        assert len(linears) == 4


class TestSmallConvNet:
    def test_forward_shape(self):
        net = models.SmallConvNet(width=8, rng=rng())
        out = net(Tensor(np.zeros((3, 3, 12, 12))))
        assert out.shape == (3, 10)

    def test_layer_size_diversity(self):
        net = models.SmallConvNet(width=8, rng=rng())
        sizes = {
            name: m.weight.size for name, m in net.named_modules()
            if hasattr(m, "weight") and m.weight is not None
            and m.__class__.__name__ in ("Conv2d", "Linear")
        }
        assert len(set(sizes.values())) >= 3  # genuinely different layers


class TestLeNet:
    def test_forward_shape_32px(self):
        net = models.LeNet(rng=rng())
        out = net(Tensor(np.zeros((2, 3, 32, 32))))
        assert out.shape == (2, 10)
