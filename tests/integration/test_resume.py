"""Kill-and-resume determinism for the fault-tolerant CCQ runtime.

Acceptance: a CCQ run interrupted at an arbitrary step and resumed from
its checkpoint directory yields the same final bit configuration, step
log, and accuracy as the uninterrupted reference run — bit for bit.
"""

import numpy as np
import pytest

from repro import models
from repro.core import (
    BitLadder,
    CCQConfig,
    CCQQuantizer,
    RecoveryConfig,
)
from repro.nn.data import DataLoader
from repro.nn.serialization import CheckpointError
from repro.quantization import quantize_model

from ..core.fault_injection import FaultyLoader, SimulatedKill


def make_config(checkpoint_dir=None, **overrides):
    defaults = dict(
        ladder=BitLadder((8, 4, 2)),
        probes_per_step=3,
        probe_batches=1,
        recovery=RecoveryConfig(mode="manual", epochs=1, use_hybrid_lr=False),
        lr=0.02,
        initial_recovery_epochs=1,
        seed=0,
    )
    if checkpoint_dir is not None:
        defaults["checkpoint_dir"] = str(checkpoint_dir)
    defaults.update(overrides)
    return CCQConfig(**defaults)


@pytest.fixture()
def run_factory(pretrained_state, tiny_splits):
    """Builds (model, train, val) triples with identical fresh state."""
    state, _ = pretrained_state

    def build():
        net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net.load_state_dict(state)
        quantize_model(net, "pact")
        train = DataLoader(tiny_splits.train, batch_size=64, shuffle=True,
                           seed=0)
        val = DataLoader(tiny_splits.val, batch_size=100)
        return net, train, val

    return build


def step_log(result):
    return [
        (r.step, r.layer_name, r.from_bits, r.to_bits) for r in result.records
    ]


class TestKillAndResume:
    def test_resumed_run_matches_uninterrupted_reference(
        self, run_factory, tmp_path
    ):
        ckpt = tmp_path / "ckpt"

        # Uninterrupted reference (no checkpointing at all).
        net, train, val = run_factory()
        reference = CCQQuantizer(net, train, val, config=make_config()).run()
        assert len(reference.records) == 8

        # Interrupted run: a simulated kill fires mid-step (batch 25
        # lands inside step 1's recovery epoch).
        net, train, val = run_factory()
        killed_train = FaultyLoader(train, fail_at_batch=25, mode="kill")
        interrupted = CCQQuantizer(
            net, killed_train, val, config=make_config(ckpt)
        )
        with pytest.raises(SimulatedKill):
            interrupted.run()
        # At least one step committed before the kill.
        assert interrupted.store.journal.events("step_complete")

        # Resume in a fresh process model: new objects, fault-free loader.
        net, train, val = run_factory()
        resumed = CCQQuantizer(net, train, val, config=make_config(ckpt))
        result = resumed.run(resume=True)

        assert result.bit_config == reference.bit_config
        assert step_log(result) == step_log(reference)
        assert len(result.records) == len(reference.records)
        assert result.final_eval.accuracy == reference.final_eval.accuracy
        assert result.final_eval.loss == reference.final_eval.loss
        assert result.compression == reference.compression
        assert (
            result.initial_eval.accuracy == reference.initial_eval.accuracy
        )
        # Per-step accuracies match bit-for-bit too.
        for mine, theirs in zip(result.records, reference.records):
            assert mine.pre_accuracy == theirs.pre_accuracy
            assert mine.post_quant_accuracy == theirs.post_quant_accuracy
            assert mine.recovered_accuracy == theirs.recovered_accuracy
        journal = resumed.store.journal
        assert journal.events("resumed")
        assert journal.events("run_complete")

    def test_resume_continues_step_numbering(self, run_factory, tmp_path):
        ckpt = tmp_path / "ckpt"
        net, train, val = run_factory()
        first = CCQQuantizer(
            net, train, val, config=make_config(ckpt, max_steps=3)
        ).run()
        assert len(first.records) == 3

        net, train, val = run_factory()
        second = CCQQuantizer(net, train, val, config=make_config(ckpt))
        result = second.run(resume=True)
        assert [r.step for r in result.records] == list(range(8))

    def test_resume_with_mismatched_config_is_rejected(
        self, run_factory, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        net, train, val = run_factory()
        CCQQuantizer(
            net, train, val, config=make_config(ckpt, max_steps=1)
        ).run()

        net, train, val = run_factory()
        other = CCQQuantizer(
            net, train, val, config=make_config(ckpt, seed=1)
        )
        with pytest.raises(CheckpointError, match="seed"):
            other.run(resume=True)

    def test_resume_without_checkpoint_dir_is_rejected(self, run_factory):
        net, train, val = run_factory()
        ccq = CCQQuantizer(net, train, val, config=make_config())
        with pytest.raises(ValueError, match="checkpoint_dir"):
            ccq.run(resume=True)

    def test_resume_with_empty_directory_starts_fresh(
        self, run_factory, tmp_path
    ):
        ckpt = tmp_path / "fresh"
        net, train, val = run_factory()
        ccq = CCQQuantizer(
            net, train, val, config=make_config(ckpt, max_steps=2)
        )
        result = ccq.run(resume=True)
        assert len(result.records) == 2
        assert ccq.store.journal.events("run_start")


class TestCorruptedCheckpointRollback:
    def test_flipped_byte_rolls_back_and_reproduces_reference(
        self, run_factory, tmp_path
    ):
        """Regression: a corrupted newest checkpoint must not kill the
        resume — digest verification rejects it, the predecessor loads,
        and the deterministic re-run of the lost step reproduces the
        uninterrupted reference bit for bit."""
        from repro.telemetry import Telemetry

        ckpt = tmp_path / "ckpt"

        net, train, val = run_factory()
        reference = CCQQuantizer(net, train, val, config=make_config()).run()

        net, train, val = run_factory()
        CCQQuantizer(
            net, train, val, config=make_config(ckpt, max_steps=3)
        ).run()

        # Bit rot: flip one byte in the newest model archive.
        import json as json_module

        state = json_module.loads((ckpt / "state.json").read_text())
        archive = ckpt / state["model_file"]
        data = bytearray(archive.read_bytes())
        data[200] ^= 0xFF
        archive.write_bytes(bytes(data))

        net, train, val = run_factory()
        telemetry = Telemetry.create(log_level="silent")
        resumed = CCQQuantizer(
            net, train, val, config=make_config(ckpt),
            telemetry=telemetry,
        )
        result = resumed.run(resume=True)
        telemetry.close()

        # The corruption was detected, counted, and journaled ...
        failures = [
            entry["value"]
            for entry in telemetry.registry.snapshot()["counters"]
            if entry["name"] == "ccq.checkpoint_integrity_failures"
        ]
        assert failures and failures[0] >= 1
        assert resumed.store.journal.events("checkpoint_rollback")
        # ... and the run resumed from the predecessor all the way to
        # the reference trajectory.
        assert step_log(result) == step_log(reference)
        assert result.bit_config == reference.bit_config
        assert result.final_eval.accuracy == reference.final_eval.accuracy
        assert result.final_eval.loss == reference.final_eval.loss
        assert result.compression == reference.compression
