"""Report and figure generation from benchmark result JSONs."""

import importlib.util
import json
import pathlib
import sys

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def _load_module(name: str):
    spec = importlib.util.spec_from_file_location(
        name, _BENCH_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def fake_results(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "table1.json").write_text(json.dumps({
        "rows": [
            {"policy": "pact", "baseline": 0.9, "oneshot": 0.8,
             "gradual": 0.88, "steps": 10},
        ]
    }))
    (results / "fig1.json").write_text(json.dumps({
        "rows": [
            {"lambda": 0.0, "accuracy": 0.9, "baseline": 0.9,
             "compression": 6.0, "steps": 20},
            {"lambda": 1.0, "accuracy": 0.85, "baseline": 0.9,
             "compression": 9.0, "steps": 20},
        ]
    }))
    (results / "fig5.json").write_text(json.dumps({
        "rows": [
            {
                "network": "Net",
                "unquantized": {"total_mw": 10.0, "edge_mw": 1, "middle_mw": 9,
                                "edge_to_middle": 0.1},
                "fp-4b-fp": {"total_mw": 1.0, "edge_mw": 0.9, "middle_mw": 0.1,
                             "edge_to_middle": 9.0},
                "fp-2b-fp": {"total_mw": 0.9, "edge_mw": 0.85,
                             "middle_mw": 0.05, "edge_to_middle": 17.0},
                "fully-quantized": {"total_mw": 0.1, "edge_mw": 0.01,
                                    "middle_mw": 0.09, "edge_to_middle": 0.1},
            }
        ]
    }))
    return results


class TestExperimentsReport:
    def test_generates_measured_sections(self, fake_results, tmp_path):
        mod = _load_module("make_experiments_report")
        mod.RESULTS = fake_results
        experiments = tmp_path / "EXPERIMENTS.md"
        experiments.write_text("# header\n\n<!-- measured-results -->\n")
        mod.EXPERIMENTS = experiments
        assert mod.main() == 0
        text = experiments.read_text()
        assert "# header" in text               # preserved
        assert "Table I (measured)" in text
        assert "88.00" in text                   # gradual accuracy
        assert "_not yet run_" in text           # missing sections flagged

    def test_marker_appended_when_missing(self, fake_results, tmp_path):
        mod = _load_module("make_experiments_report")
        mod.RESULTS = fake_results
        experiments = tmp_path / "E.md"
        experiments.write_text("# no marker here\n")
        mod.EXPERIMENTS = experiments
        mod.main()
        assert "<!-- measured-results -->" in experiments.read_text()


class TestFigureGeneration:
    def test_writes_available_figures(self, fake_results, tmp_path):
        mod = _load_module("make_figures")
        mod.RESULTS = fake_results
        mod.FIGURES = tmp_path / "figures"
        assert mod.main() == 0
        written = {p.name for p in mod.FIGURES.glob("*.svg")}
        assert "fig1_lambda.svg" in written
        assert "fig5_power.svg" in written
        # fig2/3/4 had no results and are skipped without error.
        assert "fig2_curve.svg" not in written

    def test_no_results_returns_error(self, tmp_path):
        mod = _load_module("make_figures")
        mod.RESULTS = tmp_path / "empty"
        mod.FIGURES = tmp_path / "figures"
        assert mod.main() == 1
