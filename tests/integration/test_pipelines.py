"""Integration: calibration, export, integer inference and task caching."""

import numpy as np
import pytest

from repro import models
from repro.core import evaluate
from repro.experiments import build_task
from repro.nn.tensor import Tensor
from repro.quantization import (
    calibrate_activations,
    pack_model,
    quantize_model,
    quantized_layers,
    set_uniform_bits,
    unpack_into,
)


class TestStaticPipeline:
    def test_calibrated_static_model_close_to_qat_at_8bit(
        self, pretrained_net, tiny_loaders
    ):
        """8-bit static calibration must be nearly free, like the paper's
        related-work static methods at high precision."""
        net, baseline = pretrained_net
        train, val = tiny_loaders
        float_acc = evaluate(net, val).accuracy
        quantize_model(net, "pact_sawb")
        set_uniform_bits(net, 8, None)
        calibrate_activations(net, train, bits=8, method="kl", max_batches=2)
        static_acc = evaluate(net, val).accuracy
        assert static_acc >= float_acc - 0.05

    def test_low_bit_static_worse_than_high_bit(self, pretrained_net,
                                                tiny_loaders):
        net, _ = pretrained_net
        train, val = tiny_loaders
        quantize_model(net, "pact_sawb")
        set_uniform_bits(net, 8, None)
        calibrate_activations(net, train, bits=8, method="aciq",
                              max_batches=2)
        acc8 = evaluate(net, val).accuracy
        set_uniform_bits(net, 2, None)
        calibrate_activations(net, train, bits=2, method="aciq",
                              max_batches=2)
        acc2 = evaluate(net, val).accuracy
        assert acc2 <= acc8 + 0.02


class TestDeploymentPipeline:
    def test_pack_unpack_preserves_accuracy(self, pretrained_net,
                                            tiny_loaders):
        net, _ = pretrained_net
        _, val = tiny_loaders
        quantize_model(net, "pact_sawb")
        set_uniform_bits(net, 4, None)
        before = evaluate(net, val).accuracy
        packed = pack_model(net)
        # Simulate shipping: unpack into a fresh network.
        fresh = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        quantize_model(fresh, "pact_sawb")
        # Copy the non-weight state (BN stats, biases) the packed payload
        # does not carry.
        fresh.load_state_dict(net.state_dict())
        unpack_into(fresh, packed)
        # The deployed weights ARE the quantized values; evaluate them
        # directly (re-quantizing would re-derive SAWB's clip from the
        # already-quantized statistics, which is not exactly idempotent).
        set_uniform_bits(fresh, None, None)
        after = evaluate(fresh, val).accuracy
        assert after == pytest.approx(before, abs=1e-9)

    def test_realized_compression_tracks_accounting(self, pretrained_net):
        from repro.core import model_size_report

        net, _ = pretrained_net
        quantize_model(net, "pact_sawb")
        set_uniform_bits(net, 2, 2)
        accounting = model_size_report(net).compression
        realized = pack_model(net).realized_compression
        # Codebook overhead costs a little; same order of magnitude.
        assert realized == pytest.approx(accounting, rel=0.35)


class TestTaskCaching:
    def test_pretrained_model_cached(self):
        import repro.experiments as ex

        small = ex.Scale(
            name="tiny", n_train=64, n_val=32, n_test=32,
            cifar_image=8, imagenet_image=8, imagenet_classes=10,
            width_r20=0.25, width_r18=0.125, width_r50=0.0625,
            pretrain_epochs=1, finetune_epochs=1,
        )
        task = ex.build_task("resnet20_cifar10", scale=small)
        model1, baseline1 = task.pretrained_model()
        # Mutating the returned model must not poison the cache.
        for p in model1.parameters():
            p.data[...] = 0.0
        model2, baseline2 = task.pretrained_model()
        assert baseline1 == baseline2
        assert any(np.abs(p.data).sum() > 0 for p in model2.parameters())
