"""Cross-module integration: the full paper pipeline on a tiny scale.

These tests exercise the exact composition the benchmarks use:
pretrain -> quantize -> CCQ/one-shot -> compression -> power, asserting
the paper's qualitative claims hold end to end.
"""

import numpy as np
import pytest

from repro import models
from repro.baselines import (
    OneShotConfig,
    edge_aware_config,
    one_shot_quantize,
)
from repro.core import (
    BitLadder,
    CCQConfig,
    CCQQuantizer,
    LambdaSchedule,
    RecoveryConfig,
    evaluate,
)
from repro.hardware import NODE_32NM_SYNTH, power_of_config, trace_layer_macs
from repro.quantization import get_bit_config, quantize_model, quantized_layers


def ccq_config(**overrides):
    defaults = dict(
        ladder=BitLadder((8, 4, 2)),
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=LambdaSchedule(start=0.7, end=0.2, decay_steps=8),
        recovery=RecoveryConfig(mode="adaptive", max_epochs=3, slack=0.02),
        lr=0.02,
        initial_recovery_epochs=1,
        seed=0,
    )
    defaults.update(overrides)
    return CCQConfig(**defaults)


class TestCCQPipeline:
    def test_ccq_compresses_while_retaining_accuracy(
        self, pretrained_net, tiny_loaders
    ):
        net, baseline = pretrained_net
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val,
            config=ccq_config(target_compression=6.0),
            policy="pact",
        )
        result = ccq.run()
        assert result.compression >= 6.0
        # Accuracy within a loose band of the float baseline.
        assert result.final_eval.accuracy >= baseline - 0.15

    def test_gradual_beats_or_matches_oneshot_at_same_config(
        self, pretrained_state, tiny_loaders
    ):
        """The Table I claim on a tiny scale (single seed, loose margin)."""
        state, baseline = pretrained_state
        train, val = tiny_loaders

        # One-shot to fp-2b-fp.
        net_os = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net_os.load_state_dict(state)
        quantize_model(net_os, "pact")
        target = edge_aware_config(net_os, middle_bits=2)
        oneshot = one_shot_quantize(
            net_os, train, val, target,
            config=OneShotConfig(epochs=4, lr=0.02),
        )

        # CCQ forced to the same configuration.
        net_ccq = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net_ccq.load_state_dict(state)
        quantize_model(net_ccq, "pact")
        names = [n for n, _ in quantized_layers(net_ccq)]
        target_bits = {names[0]: None, names[-1]: None}
        for mid in names[1:-1]:
            target_bits[mid] = 2
        ccq = CCQQuantizer(
            net_ccq, train, val, config=ccq_config(),
            target_config=target_bits,
        )
        gradual = ccq.run()

        # Identical final bit configuration...
        assert {k: v[0] for k, v in get_bit_config(net_ccq).items()} == {
            k: v[0] for k, v in target.items()
        }
        # ...and the gradual path is not worse (small slack for noise).
        assert gradual.final_eval.accuracy >= oneshot.final.accuracy - 0.05

    def test_ccq_then_power_pipeline(self, pretrained_net, tiny_loaders):
        net, _ = pretrained_net
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val, config=ccq_config(max_steps=4), policy="pact"
        )
        ccq.run()
        report = power_of_config(
            net,
            (3, 12, 12),
            [(l.w_bits, l.a_bits) for _, l in quantized_layers(net)],
            node=NODE_32NM_SYNTH,
        )
        fp_report = power_of_config(
            net, (3, 12, 12),
            [(None, None)] * len(quantized_layers(net)),
            node=NODE_32NM_SYNTH,
        )
        assert report.total_watts < fp_report.total_watts

    def test_quantizer_state_survives_snapshot_roundtrip(
        self, pretrained_net, tiny_loaders
    ):
        net, _ = pretrained_net
        train, val = tiny_loaders
        quantize_model(net, "pact")
        from repro.quantization import set_uniform_bits

        set_uniform_bits(net, 4, 4)
        state = net.state_dict()
        before = evaluate(net, val).accuracy
        for p in net.parameters():
            p.data += 0.3
        net.load_state_dict(state)
        after = evaluate(net, val).accuracy
        assert after == pytest.approx(before)

    def test_eval_determinism_across_probe_cycles(
        self, pretrained_net, tiny_loaders
    ):
        """Probing must not leave residue: same eval before and after."""
        net, _ = pretrained_net
        train, val = tiny_loaders
        ccq = CCQQuantizer(net, train, val, config=ccq_config(), policy="pact")
        ccq.initialize()
        before = evaluate(net, val).accuracy
        for i in range(len(ccq.layers)):
            if ccq._is_awake(i):
                ccq._probe_loss(i)
        after = evaluate(net, val).accuracy
        assert after == pytest.approx(before)
