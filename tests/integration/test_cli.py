"""CLI end-to-end at micro scale (seconds, exercises every code path)."""

import json

import pytest

from repro.cli import main


class TestRunCCQ:
    def test_full_pipeline_micro(self, capsys, tmp_path):
        out_file = tmp_path / "summary.json"
        code = main([
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--policy", "pact",
            "--target-compression", "6.0",
            "--max-steps", "4",
            "--probes", "2",
            "--output", str(out_file),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "baseline accuracy" in printed
        assert "compression" in printed
        payload = json.loads(out_file.read_text())
        assert payload["task"] == "resnet20_cifar10"
        assert payload["compression"] > 1.0
        assert set(payload["bit_config"])  # non-empty

    def test_checkpoint_and_resume_flags(self, capsys, tmp_path):
        ckpt = tmp_path / "run"
        base_args = [
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--probes", "2",
            "--checkpoint-dir", str(ckpt),
        ]
        code = main(base_args + ["--max-steps", "2"])
        assert code == 0
        capsys.readouterr()
        assert (ckpt / "state.json").exists()
        assert (ckpt / "journal.jsonl").exists()
        # The pretrained float baseline was cached alongside.
        caches = list(ckpt.glob("pretrain-*.npz"))
        assert len(caches) == 1

        # Resume extends the budget and picks up where the run stopped.
        code = main(base_args + ["--max-steps", "4", "--resume"])
        assert code == 0
        printed = capsys.readouterr().out
        assert f"resuming from checkpoint in {ckpt}" in printed
        assert "step   2:" in printed

    def test_resume_without_checkpoint_dir_errors(self, capsys):
        code = main([
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--resume",
        ])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_block_granularity_flag(self, capsys):
        code = main([
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--max-steps", "2",
            "--probes", "1",
            "--block-granularity",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "block granularity" in printed
