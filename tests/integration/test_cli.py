"""CLI end-to-end at micro scale (seconds, exercises every code path)."""

import json

import pytest

from repro.cli import main


class TestRunCCQ:
    def test_full_pipeline_micro(self, capsys, tmp_path):
        out_file = tmp_path / "summary.json"
        code = main([
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--policy", "pact",
            "--target-compression", "6.0",
            "--max-steps", "4",
            "--probes", "2",
            "--output", str(out_file),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "baseline accuracy" in printed
        assert "compression" in printed
        payload = json.loads(out_file.read_text())
        assert payload["task"] == "resnet20_cifar10"
        assert payload["compression"] > 1.0
        assert set(payload["bit_config"])  # non-empty

    def test_checkpoint_and_resume_flags(self, capsys, tmp_path):
        ckpt = tmp_path / "run"
        base_args = [
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--probes", "2",
            "--checkpoint-dir", str(ckpt),
        ]
        code = main(base_args + ["--max-steps", "2"])
        assert code == 0
        capsys.readouterr()
        assert (ckpt / "state.json").exists()
        assert (ckpt / "journal.jsonl").exists()
        # The pretrained float baseline was cached alongside.
        caches = list(ckpt.glob("pretrain-*.npz"))
        assert len(caches) == 1

        # Resume extends the budget and picks up where the run stopped.
        code = main(base_args + ["--max-steps", "4", "--resume"])
        assert code == 0
        printed = capsys.readouterr().out
        assert f"resuming from checkpoint in {ckpt}" in printed
        assert "step   2:" in printed

    def test_resume_without_checkpoint_dir_errors(self, capsys):
        code = main([
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--resume",
        ])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_block_granularity_flag(self, capsys):
        code = main([
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--max-steps", "2",
            "--probes", "1",
            "--block-granularity",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "block granularity" in printed

    def test_probe_timeout_flag_reaches_the_config(self, capsys):
        code = main([
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--max-steps", "2",
            "--probes", "2",
            "--probe-timeout", "45.5",
        ])
        assert code == 0
        capsys.readouterr()


class TestSignalGuard:
    """The graceful SIGTERM/SIGINT path around ``run-ccq``."""

    class _FakeQuantizer:
        def __init__(self):
            self.stop_requests = 0

        def request_stop(self):
            self.stop_requests += 1

    class _FakeLog:
        def __init__(self):
            self.warnings = []

        def warning(self, msg, **fields):
            self.warnings.append((msg, fields))

    def test_first_signal_requests_stop_second_aborts(self):
        import signal as signal_module

        from repro.cli import _SignalGuard

        quantizer = self._FakeQuantizer()
        log = self._FakeLog()
        guard = _SignalGuard(quantizer, log)

        guard.handle(signal_module.SIGTERM, None)
        assert quantizer.stop_requests == 1
        assert guard.signum == signal_module.SIGTERM
        assert log.warnings  # the operator was told what happens next

        import pytest

        with pytest.raises(KeyboardInterrupt):
            guard.handle(signal_module.SIGTERM, None)

    def test_handlers_installed_and_restored(self):
        import signal as signal_module

        from repro.cli import _SignalGuard

        previous = {
            s: signal_module.getsignal(s)
            for s in _SignalGuard.SIGNALS
        }
        guard = _SignalGuard(self._FakeQuantizer(), self._FakeLog())
        with guard:
            for s in _SignalGuard.SIGNALS:
                assert signal_module.getsignal(s) == guard.handle
        for s, handler in previous.items():
            assert signal_module.getsignal(s) == handler


class TestTelemetryCLI:
    """--telemetry-dir + report-run end-to-end (PR 2 tentpole)."""

    def test_run_writes_telemetry_and_report_parses_it(
        self, capsys, tmp_path
    ):
        telem = tmp_path / "telem"
        code = main([
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--probes", "2",
            "--max-steps", "3",
            "--no-progress",
            "--telemetry-dir", str(telem),
        ])
        assert code == 0
        capsys.readouterr()

        events_file = telem / "events.jsonl"
        metrics_file = telem / "metrics.json"
        assert events_file.exists() and metrics_file.exists()

        from repro.telemetry import read_events

        events = read_events(events_file)
        span_names = {
            e["name"] for e in events if e["type"] == "span"
        }
        # Every CCQ stage produced spans, plus the enclosing run.
        assert {"run", "initialize", "probe", "recover", "eval",
                "checkpoint"} <= span_names
        assert any(
            e["type"] == "event" and e["name"] == "step_complete"
            for e in events
        )
        # Log lines are mirrored into the sink.
        assert any(e["type"] == "log" for e in events)

        metrics = json.loads(metrics_file.read_text())
        counter_names = {c["name"] for c in metrics["counters"]}
        # Resilience counters exist even when the run was clean.
        assert {"ccq.steps", "ccq.probe_divergence", "ccq.recovery_retry",
                "ccq.expert_skipped"} <= counter_names
        gauge_names = {g["name"] for g in metrics["gauges"]}
        assert {"ccq.accuracy", "ccq.compression", "ccq.layer_bits",
                "hedge.expert_weight"} <= gauge_names
        hist_names = {h["name"] for h in metrics["histograms"]}
        assert "ccq.probe_loss" in hist_names

        # report-run renders the directory (and writes the SVG).
        svg = tmp_path / "traj.svg"
        code = main(["report-run", str(telem), "--svg", str(svg)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "per-stage wall-clock breakdown" in printed
        assert "accuracy / compression trajectory" in printed
        assert svg.exists()

    def test_report_run_on_missing_directory_errors(self, capsys, tmp_path):
        code = main(["report-run", str(tmp_path / "nope")])
        assert code == 2
        assert "telemetry" in capsys.readouterr().err

    def test_run_without_telemetry_dir_writes_nothing(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code = main([
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--probes", "1",
            "--max-steps", "1",
            "--no-progress",
        ])
        assert code == 0
        capsys.readouterr()
        assert not list(tmp_path.glob("**/events.jsonl"))
        assert not list(tmp_path.glob("**/metrics.json"))

    def test_log_level_filters_diagnostics(self, capsys):
        code = main([
            "--log-level", "error",
            "run-ccq",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--probes", "1",
            "--max-steps", "1",
            "--no-progress",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "baseline accuracy" not in printed


class TestProfileCommand:
    def test_profile_prints_conv_and_gemm_rows(self, capsys, tmp_path):
        json_out = tmp_path / "profile.json"
        code = main([
            "profile",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--batch-size", "4",
            "--repeats", "1",
            "--json", str(json_out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "conv2d" in printed
        assert "matmul" in printed
        assert "GFLOP" in printed
        payload = json.loads(json_out.read_text())
        names = {op["name"] for op in payload["ops"]}
        assert any(n.startswith("conv2d") for n in names)
        assert payload["total_flops"] > 0
        assert payload["batch"] == 4

    def test_train_mode_profiles_backward_too(self, capsys):
        code = main([
            "profile",
            "--task", "resnet20_cifar10",
            "--scale", "micro",
            "--batch-size", "4",
            "--repeats", "1",
            "--train",
        ])
        assert code == 0
        assert "train (fwd+bwd)" in capsys.readouterr().out


class TestWatchCommand:
    def _write_replay(self, directory):
        directory.mkdir(parents=True, exist_ok=True)
        events = [
            {"type": "event", "name": "step_complete", "ts": 1.0,
             "mono": 1.0,
             "fields": {"step": 0, "layer": "conv1", "from_bits": 8,
                        "to_bits": 4, "recovered_accuracy": 0.7,
                        "compression": 2.0}},
            {"type": "event", "name": "run_complete", "ts": 2.0,
             "mono": 2.0, "fields": {"steps": 1}},
        ]
        with open(directory / "events.jsonl", "w") as f:
            for event in events:
                f.write(json.dumps(event) + "\n")

    def test_watch_once_renders_replayed_run(self, capsys, tmp_path):
        run_dir = tmp_path / "telem"
        self._write_replay(run_dir)
        code = main(["watch", str(run_dir), "--once"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "status: complete" in printed
        assert "step: 0" in printed
        assert "conv1=4b" in printed

    def test_watch_until_complete_with_server(self, capsys, tmp_path):
        import urllib.request

        run_dir = tmp_path / "telem"
        self._write_replay(run_dir)
        # --serve 0 binds an ephemeral loopback port; --until-complete
        # exits on the replayed run_complete, so this cannot hang.
        code = main([
            "watch", str(run_dir), "--until-complete",
            "--interval", "0.01", "--serve", "0",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "serving metrics on http://" in err
