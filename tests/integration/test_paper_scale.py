"""The `paper` scale configuration is buildable and runnable.

No training happens here (paper-scale pretraining is hours on CPU); the
test verifies the advertised configuration constructs, generates its
datasets, and completes forward/backward passes — i.e. a user launching
`--scale paper` will not hit a config error three hours in.
"""

import numpy as np
import pytest

from repro.experiments import SCALES, build_task
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestPaperScale:
    def test_resnet20_paper_task_builds_and_steps(self):
        task = build_task("resnet20_cifar10", scale="paper")
        scale = SCALES["paper"]
        assert len(task.splits.train) == scale.n_train
        assert task.input_shape == (3, 32, 32)

        model = task.make_model()
        # Published ResNet-20 parameter count at full width.
        assert 0.25e6 < model.num_parameters() < 0.30e6

        train, _ = task.loaders()
        images, labels = next(iter(train))
        loss = F.cross_entropy(model(Tensor(images[:8])), labels[:8])
        loss.backward()
        assert np.isfinite(loss.item())

    def test_imagenet_paper_configs_construct(self):
        for name in ("resnet18_imagenet", "resnet50_imagenet"):
            task = build_task(name, scale="paper")
            assert task.splits.n_classes == SCALES["paper"].imagenet_classes
            model = task.make_model()
            out = model(Tensor(np.zeros((1, *task.input_shape))))
            assert out.shape == (1, SCALES["paper"].imagenet_classes)
