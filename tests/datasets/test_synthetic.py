"""Synthetic dataset generator: determinism, learnability hooks, splits."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticImageConfig,
    generate_class_templates,
    generate_dataset,
    make_synthetic_cifar10,
    make_synthetic_imagenet,
)


class TestTemplates:
    def test_shape(self):
        config = SyntheticImageConfig(n_classes=4, image_size=8,
                                      templates_per_class=2)
        t = generate_class_templates(config)
        assert t.shape == (4, 2, 3, 8, 8)

    def test_deterministic(self):
        config = SyntheticImageConfig(seed=7, image_size=8)
        a = generate_class_templates(config)
        b = generate_class_templates(config)
        np.testing.assert_allclose(a, b)

    def test_seed_changes_templates(self):
        a = generate_class_templates(SyntheticImageConfig(seed=1, image_size=8))
        b = generate_class_templates(SyntheticImageConfig(seed=2, image_size=8))
        assert not np.allclose(a, b)

    def test_standardized(self):
        t = generate_class_templates(SyntheticImageConfig(image_size=16))
        stds = t.std(axis=(-1, -2))
        np.testing.assert_allclose(stds, 1.0, atol=1e-6)


class TestGeneration:
    def test_shapes_and_dtypes(self):
        config = SyntheticImageConfig(n_classes=5, image_size=8)
        images, labels = generate_dataset(config, 32)
        assert images.shape == (32, 3, 8, 8)
        assert labels.shape == (32,)
        assert labels.dtype == np.int64
        assert set(np.unique(labels)).issubset(range(5))

    def test_globally_standardized(self):
        images, _ = generate_dataset(SyntheticImageConfig(image_size=8), 200)
        assert images.mean() == pytest.approx(0.0, abs=1e-10)
        assert images.std() == pytest.approx(1.0, abs=1e-10)

    def test_split_seeds_differ(self):
        config = SyntheticImageConfig(image_size=8)
        a, _ = generate_dataset(config, 16, split_seed=1)
        b, _ = generate_dataset(config, 16, split_seed=2)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces(self):
        config = SyntheticImageConfig(image_size=8)
        a, la = generate_dataset(config, 16, split_seed=5)
        b, lb = generate_dataset(config, 16, split_seed=5)
        np.testing.assert_allclose(a, b)
        np.testing.assert_array_equal(la, lb)

    def test_class_signal_present(self):
        # Same-class samples must be more correlated than cross-class ones
        # (otherwise nothing is learnable).
        config = SyntheticImageConfig(image_size=12, noise_std=0.5, max_shift=0)
        images, labels = generate_dataset(config, 300)
        flat = images.reshape(len(images), -1)
        same, cross = [], []
        for i in range(0, 100):
            for j in range(i + 1, 100):
                corr = np.corrcoef(flat[i], flat[j])[0, 1]
                (same if labels[i] == labels[j] else cross).append(corr)
        assert np.mean(same) > np.mean(cross) + 0.1


class TestFactories:
    def test_cifar10_splits(self):
        splits = make_synthetic_cifar10(
            n_train=50, n_val=20, n_test=20, image_size=8, augment=False
        )
        assert len(splits.train) == 50
        assert len(splits.val) == 20
        assert len(splits.test) == 20
        assert splits.n_classes == 10
        assert splits.image_size == 8

    def test_cifar10_augmentation_attached(self):
        splits = make_synthetic_cifar10(
            n_train=10, n_val=5, n_test=5, image_size=8, augment=True
        )
        assert splits.train.transform is not None
        assert splits.val.transform is None

    def test_imagenet_class_count(self):
        splits = make_synthetic_imagenet(
            n_classes=20, n_train=40, n_val=10, n_test=10,
            image_size=8, augment=False,
        )
        assert splits.n_classes == 20

    def test_imagenet_differs_from_cifar(self):
        c = make_synthetic_cifar10(n_train=5, n_val=5, n_test=5,
                                   image_size=8, augment=False)
        i = make_synthetic_imagenet(n_classes=10, n_train=5, n_val=5,
                                    n_test=5, image_size=8, augment=False)
        assert not np.allclose(c.train.images, i.train.images)
