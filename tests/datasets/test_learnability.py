"""Learnability guarantees of the synthetic tasks.

The reproduction's validity hinges on the synthetic datasets exercising
the same code paths as the paper's real datasets: a network must be able
to learn them (well above chance), they must not be trivially separable
(quantization needs something to break), and the val split must behave
like held-out data.
"""

import numpy as np
import pytest

from repro import models
from repro.core.training import evaluate, make_sgd, train_epoch
from repro.datasets.synthetic import SyntheticImageConfig, _make_splits
from repro.nn.data import DataLoader


@pytest.fixture(scope="module")
def trained_setup():
    config = SyntheticImageConfig(n_classes=10, image_size=12, seed=3)
    splits = _make_splits(config, n_train=500, n_val=200, n_test=200,
                          augment=False)
    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(splits.val, batch_size=128)
    test = DataLoader(splits.test, batch_size=128)
    opt = make_sgd(net, lr=0.05, momentum=0.9)
    for _ in range(8):
        train_epoch(net, train, opt)
    return net, train, val, test


class TestLearnability:
    def test_well_above_chance(self, trained_setup):
        net, _, val, _ = trained_setup
        assert evaluate(net, val).accuracy > 0.6  # chance is 0.1

    def test_not_trivially_saturated(self, trained_setup):
        net, _, val, _ = trained_setup
        # Quantization experiments need headroom below 100%.
        assert evaluate(net, val).accuracy < 0.999

    def test_val_and_test_consistent(self, trained_setup):
        net, _, val, test = trained_setup
        val_acc = evaluate(net, val).accuracy
        test_acc = evaluate(net, test).accuracy
        assert abs(val_acc - test_acc) < 0.15

    def test_quantization_hurts_at_low_bits(self, trained_setup):
        from repro.quantization import (
            quantize_model,
            set_uniform_bits,
        )

        net, _, val, _ = trained_setup
        float_acc = evaluate(net, val).accuracy
        quantize_model(net, "pact")
        set_uniform_bits(net, 2, 2)
        quant_acc = evaluate(net, val).accuracy
        # The reproduction depends on a measurable quantization valley.
        assert quant_acc < float_acc - 0.05
        # Restore for other tests in the module-scoped fixture.
        set_uniform_bits(net, None, None)

    def test_labels_balanced_enough(self):
        config = SyntheticImageConfig(n_classes=10, image_size=8)
        splits = _make_splits(config, n_train=1000, n_val=100, n_test=100,
                              augment=False)
        counts = np.bincount(splits.train.labels, minlength=10)
        assert counts.min() > 50  # no empty/starved class
