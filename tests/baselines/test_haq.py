"""HAQ-style RL bit search."""

import numpy as np
import pytest

from repro import models
from repro.baselines import HAQConfig, haq_search
from repro.baselines.haq import _repair_to_budget
from repro.quantization import quantize_model


class TestBudgetRepair:
    def test_in_budget_unchanged(self):
        sizes = np.array([100.0, 100.0])
        menu = [2, 4, 8]
        choice = np.array([0, 0])  # all 2-bit
        repaired = _repair_to_budget(choice, sizes, menu, budget_bits=1e9)
        np.testing.assert_array_equal(repaired, choice)

    def test_demotes_largest_layer_first(self):
        sizes = np.array([1000.0, 10.0])
        menu = [2, 4, 8]
        choice = np.array([2, 2])  # both 8-bit -> 8080 bits
        repaired = _repair_to_budget(choice, sizes, menu, budget_bits=4200.0)
        # The big layer must come down; the small one can stay.
        assert repaired[0] < 2
        assert repaired[1] == 2

    def test_respects_budget_when_feasible(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(10, 1000, size=6).astype(float)
        menu = [2, 3, 4, 8]
        budget = sizes.sum() * 32.0 / 8.0
        choice = np.full(6, 3)
        repaired = _repair_to_budget(choice, sizes, menu, budget)
        total = (sizes * np.asarray(menu)[repaired]).sum()
        assert total <= budget

    def test_stops_at_floor(self):
        sizes = np.array([100.0])
        menu = [2, 4]
        repaired = _repair_to_budget(np.array([1]), sizes, menu, budget_bits=1.0)
        assert repaired[0] == 0  # floor, even though still over budget


class TestSearch:
    @pytest.fixture()
    def make_pretrained(self, pretrained_state):
        state, _ = pretrained_state

        def factory():
            net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
            net.load_state_dict(state)
            quantize_model(net, "pact")
            return net

        return factory

    def test_search_returns_in_budget_configs(self, make_pretrained,
                                              tiny_loaders):
        train, val = tiny_loaders
        config = HAQConfig(
            episodes=3, finetune_epochs=1, target_compression=8.0,
            max_batches_per_epoch=2,
        )
        result = haq_search(make_pretrained, train, val, config)
        assert len(result.episodes) == 3
        assert result.best.compression >= 8.0 - 1e-6
        assert 0.0 <= result.best.accuracy <= 1.0

    def test_search_cost_accounting(self, make_pretrained, tiny_loaders):
        train, val = tiny_loaders
        config = HAQConfig(
            episodes=2, finetune_epochs=2, max_batches_per_epoch=1,
        )
        result = haq_search(make_pretrained, train, val, config)
        assert result.search_cost_epochs == 4

    def test_best_is_argmax_of_episodes(self, make_pretrained, tiny_loaders):
        train, val = tiny_loaders
        config = HAQConfig(episodes=3, finetune_epochs=1,
                           max_batches_per_epoch=1)
        result = haq_search(make_pretrained, train, val, config)
        assert result.best.accuracy == max(
            e.accuracy for e in result.episodes
        )

    def test_rejects_unquantized_factory(self, tiny_loaders):
        train, val = tiny_loaders

        def bad_factory():
            return models.SmallConvNet(width=4)

        with pytest.raises(ValueError):
            haq_search(bad_factory, train, val, HAQConfig(episodes=1))
