"""Baselines: pretraining, one-shot, uniform rows, HAWQ proxy."""

import numpy as np
import pytest

from repro import models
from repro.baselines import (
    OneShotConfig,
    PretrainConfig,
    TableRow,
    assign_bits_by_sensitivity,
    edge_aware_config,
    estimate_layer_sensitivities,
    hawq_quantize,
    one_shot_quantize,
    pretrain,
    uniform_quantize,
)
from repro.baselines.hawq import LayerSensitivity
from repro.quantization import quantize_model, quantized_layers


class TestPretrain:
    def test_learns_tiny_task(self, tiny_loaders):
        train, val = tiny_loaders
        net = models.SmallConvNet(width=8, rng=np.random.default_rng(9))
        result = pretrain(
            net, train, val, PretrainConfig(epochs=6, lr=0.05, weight_decay=0)
        )
        assert result.baseline_accuracy > 0.5
        assert len(result.accuracy_history) == 6
        assert result.loss_history[-1] < result.loss_history[0]


class TestEdgeAwareConfig:
    def test_fp_edges(self, pretrained_net):
        net, _ = pretrained_net
        quantize_model(net, "dorefa")
        config = edge_aware_config(net, middle_bits=3)
        names = [n for n, _ in quantized_layers(net)]
        assert config[names[0]] == (None, None)
        assert config[names[-1]] == (None, None)
        assert config[names[1]] == (3, 3)

    def test_custom_edges(self, pretrained_net):
        net, _ = pretrained_net
        quantize_model(net, "dorefa")
        config = edge_aware_config(net, 2, first_bits=8, last_bits=4)
        names = [n for n, _ in quantized_layers(net)]
        assert config[names[0]] == (8, 8)
        assert config[names[-1]] == (4, 4)

    def test_requires_quantized_model(self):
        net = models.SmallConvNet(width=4)
        with pytest.raises(ValueError):
            edge_aware_config(net, 3)


class TestOneShot:
    def test_quantizes_and_recovers(self, pretrained_net, tiny_loaders):
        net, baseline = pretrained_net
        train, val = tiny_loaders
        quantize_model(net, "pact")
        config = edge_aware_config(net, middle_bits=3)
        result = one_shot_quantize(
            net, train, val, config,
            config=OneShotConfig(epochs=2, lr=0.02),
        )
        assert result.final.accuracy >= result.post_quant.accuracy - 0.05
        assert result.compression > 1.0
        assert len(result.accuracy_history) == 2

    def test_unknown_layer_rejected(self, pretrained_net, tiny_loaders):
        net, _ = pretrained_net
        train, val = tiny_loaders
        quantize_model(net, "pact")
        with pytest.raises(KeyError):
            one_shot_quantize(net, train, val, {"missing": (4, 4)})


class TestUniform:
    def test_row_fields(self, pretrained_net, tiny_loaders):
        net, baseline = pretrained_net
        train, val = tiny_loaders
        row, result = uniform_quantize(
            net, train, val, policy="dorefa", bits=4,
            baseline_accuracy=baseline,
            config=OneShotConfig(epochs=1, lr=0.02),
        )
        assert row.bits == "4/4"
        assert row.first_last == "32/32"
        assert row.degradation == pytest.approx(
            baseline - result.final.accuracy
        )
        assert "dorefa" in row.formatted()
        assert "Framework" in TableRow.header()


class TestHAWQ:
    def test_sensitivities_for_every_layer(self, pretrained_net, tiny_loaders):
        net, _ = pretrained_net
        train, _ = tiny_loaders
        quantize_model(net, "pact")
        sens = estimate_layer_sensitivities(net, train, n_probes=1)
        assert len(sens) == 4
        assert all(np.isfinite(s.trace) for s in sens)

    def test_assignment_respects_budget(self):
        sens = [
            LayerSensitivity("a", 1000, trace=100.0),
            LayerSensitivity("b", 1000, trace=1.0),
            LayerSensitivity("c", 1000, trace=10.0),
        ]
        config = assign_bits_by_sensitivity(
            sens, bit_menu=(2, 4, 8), target_compression=8.0
        )
        total_bits = sum(1000 * w for w, _ in config.values())
        assert total_bits <= 3000 * 32 / 8.0

    def test_sensitive_layers_get_more_bits(self):
        sens = [
            LayerSensitivity("hot", 100, trace=1000.0),
            LayerSensitivity("cold", 100, trace=0.001),
        ]
        config = assign_bits_by_sensitivity(
            sens, bit_menu=(2, 4, 8), target_compression=6.0
        )
        assert config["hot"][0] >= config["cold"][0]

    def test_empty_menu_rejected(self):
        with pytest.raises(ValueError):
            assign_bits_by_sensitivity([], bit_menu=())

    def test_full_pipeline(self, pretrained_net, tiny_loaders):
        net, baseline = pretrained_net
        train, val = tiny_loaders
        result = hawq_quantize(
            net, train, val, policy="pact",
            target_compression=6.0,
            config=OneShotConfig(epochs=1, lr=0.02),
            n_probes=1,
        )
        assert result.compression >= 5.0
        assert np.isfinite(result.final.accuracy)
        # Mixed precision: at least two distinct bit widths assigned.
        widths = {w for w, _ in result.bit_config.values()}
        assert len(widths) >= 1
