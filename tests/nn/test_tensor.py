"""Tensor arithmetic, shapes and gradient correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn.tensor import Tensor, _unbroadcast, as_tensor


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar-valued fn of ndarray x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        f_plus = fn()
        x[i] = old - eps
        f_minus = fn()
        x[i] = old
        grad[i] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_from_scalar(self):
        t = as_tensor(3.5)
        assert t.shape == ()
        assert t.item() == 3.5

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad
        assert d._grad_fn is None

    def test_item_scalar(self):
        assert Tensor(np.asarray(2.0)).item() == 2.0

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_copy_inplace(self):
        t = Tensor(np.zeros(3))
        t.copy_(np.ones(3))
        assert (t.data == 1).all()

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestArithmeticForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_radd_scalar(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])

    def test_rsub(self):
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_broadcast(self):
        out = Tensor(np.ones((2, 3))) * Tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_div(self):
        np.testing.assert_allclose((Tensor([6.0]) / 2.0).data, [3.0])

    def test_rdiv(self):
        np.testing.assert_allclose((6.0 / Tensor([2.0])).data, [3.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0]) ** 3).data, [8.0])

    def test_matmul(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_comparisons_return_ndarray(self):
        mask = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(mask, np.ndarray)
        assert mask.tolist() == [False, True]


class TestGradients:
    @pytest.mark.parametrize(
        "op",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: a * b,
            lambda a, b: a / b,
        ],
    )
    def test_binary_op_grads(self, op, rng):
        a = Tensor(rng.normal(size=(3, 4)) + 3.0, requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)) + 3.0, requires_grad=True)
        out = (op(a, b) ** 2).sum()
        out.backward()
        for t in (a, b):
            num = numerical_grad(lambda: (op(a, b) ** 2).sum().item(), t.data)
            np.testing.assert_allclose(t.grad, num, atol=1e-5)

    def test_broadcast_grad_shapes(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0))

    def test_scalar_parameter_grad_keeps_ndim(self, rng):
        # Regression test: scalar (0-d) parameters like PACT's alpha must
        # receive 0-d gradients.
        a = Tensor(np.asarray(1.0), requires_grad=True)
        x = Tensor(rng.normal(size=(4,)))
        ((x - a) ** 2).sum().backward()
        assert a.grad.shape == ()

    def test_matmul_grads(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 2)))

    def test_reused_tensor_accumulates(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = (a * a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_backward_requires_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (a * 2).backward()

    def test_elementwise_grads(self, rng):
        funcs = [
            lambda t: t.exp(),
            lambda t: (t.abs() + 1.0).log(),
            lambda t: t.tanh(),
            lambda t: t.sigmoid(),
            lambda t: t.abs(),
            lambda t: t.relu(),
            lambda t: t.clip(-0.5, 0.5),
            lambda t: (t * t + 1.0).sqrt(),
        ]
        for fn in funcs:
            t = Tensor(rng.normal(size=(5,)) + 0.1, requires_grad=True)
            (fn(t) ** 2).sum().backward()
            num = numerical_grad(lambda: (fn(t) ** 2).sum().item(), t.data)
            np.testing.assert_allclose(t.grad, num, atol=1e-5)


class TestShapes:
    def test_reshape_roundtrip_grad(self, rng):
        t = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        t.reshape(3, 4).sum().backward()
        assert t.grad.shape == (2, 6)

    def test_reshape_tuple_arg(self):
        t = Tensor(np.zeros((2, 6)))
        assert t.reshape((4, 3)).shape == (4, 3)

    def test_transpose_grad(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        (t.transpose(2, 0, 1) ** 2).sum().backward()
        num = numerical_grad(
            lambda: (t.transpose(2, 0, 1) ** 2).sum().item(), t.data
        )
        np.testing.assert_allclose(t.grad, num, atol=1e-5)

    def test_T_matches_numpy(self, rng):
        t = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(t.T.data, t.data.T)

    def test_flatten(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.flatten(start_dim=1).shape == (2, 12)

    def test_getitem_grad_scatter(self, rng):
        t = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        t[1:3].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_fancy_index_accumulates(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = t.sum(axis=(0, 2), keepdims=True)
        assert out.shape == (1, 3, 1)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3, 4)))

    def test_mean_grad_scaling(self, rng):
        t = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((4, 5), 1 / 20))

    def test_mean_axis(self, rng):
        t = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        t.mean(axis=0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((4, 5), 1 / 4))

    def test_max_forward(self, rng):
        data = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            Tensor(data).max(axis=1).data, data.max(axis=1)
        )

    def test_max_grad_goes_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_max_grad_splits_ties(self):
        t = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])

    def test_min(self, rng):
        data = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            Tensor(data).min(axis=1).data, data.min(axis=1)
        )


class TestUnbroadcast:
    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=3, max_side=4),
               elements=st.floats(-10, 10)),
    )
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, base):
        # Broadcasting base up then unbroadcasting the all-ones grad must
        # give the multiplicity of each element.
        target_shape = (2,) + base.shape
        grad = np.ones(target_shape)
        result = _unbroadcast(grad, base.shape)
        assert result.shape == base.shape
        np.testing.assert_allclose(result, np.full(base.shape, 2.0))

    def test_unbroadcast_inner_axis(self):
        grad = np.ones((3, 4))
        result = _unbroadcast(grad, (3, 1))
        assert result.shape == (3, 1)
        np.testing.assert_allclose(result, np.full((3, 1), 4.0))

    def test_unbroadcast_to_scalar(self):
        assert _unbroadcast(np.ones((2, 3)), ()).shape == ()
