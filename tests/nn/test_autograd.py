"""Autograd engine: tape mechanics, no_grad, graph edge cases."""

import numpy as np
import pytest

from repro.nn import no_grad
from repro.nn.autograd import Context, Function, is_grad_enabled
from repro.nn.tensor import Tensor


class TestGradMode:
    def test_no_grad_disables_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._grad_fn is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nesting(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()


class TestGraph:
    def test_output_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_no_grad_inputs_no_graph(self):
        a = Tensor([1.0])
        out = a * 2
        assert out._grad_fn is None

    def test_deep_chain_no_recursion_error(self):
        # The iterative topo sort must handle graphs deeper than the
        # Python recursion limit.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3
        b = x * 5
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_disconnected_leaf_gets_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        y = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        assert y.grad is None

    def test_backward_through_detach_stops(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x * 2).detach()
        z = Tensor(y.data, requires_grad=True)
        (z * 5).sum().backward()
        assert x.grad is None


class TestCustomFunction:
    def test_custom_function_roundtrip(self):
        class Square(Function):
            @staticmethod
            def forward(ctx: Context, a):
                ctx.save(a)
                return a * a

            @staticmethod
            def backward(ctx: Context, grad):
                (a,) = ctx.saved
                return (2 * a * grad,)

        x = Tensor([3.0], requires_grad=True)
        Square.apply(x).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_wrong_grad_count_raises(self):
        class Bad(Function):
            @staticmethod
            def forward(ctx: Context, a, b):
                return a + b

            @staticmethod
            def backward(ctx: Context, grad):
                return (grad,)  # should be two

        x = Tensor([1.0], requires_grad=True)
        y = Tensor([1.0], requires_grad=True)
        out = Bad.apply(x, y)
        with pytest.raises(RuntimeError, match="returned 1 grads"):
            out.sum().backward()

    def test_wrong_grad_shape_raises(self):
        class BadShape(Function):
            @staticmethod
            def forward(ctx: Context, a):
                return a.copy()

            @staticmethod
            def backward(ctx: Context, grad):
                return (np.zeros(99),)

        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="shape"):
            BadShape.apply(x).sum().backward()

    def test_none_grad_skipped(self):
        class HalfGrad(Function):
            @staticmethod
            def forward(ctx: Context, a, b):
                return a + b

            @staticmethod
            def backward(ctx: Context, grad):
                return grad, None

        x = Tensor([1.0], requires_grad=True)
        y = Tensor([1.0], requires_grad=True)
        HalfGrad.apply(x, y).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])
        assert y.grad is None

    def test_non_tensor_kwargs_passed_through(self):
        class Scale(Function):
            @staticmethod
            def forward(ctx: Context, a, factor):
                ctx.save(factor)
                return a * factor

            @staticmethod
            def backward(ctx: Context, grad):
                (factor,) = ctx.saved
                return (grad * factor,)

        x = Tensor([2.0], requires_grad=True)
        out = Scale.apply(x, factor=4.0)
        np.testing.assert_allclose(out.data, [8.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_needs_input_grad_flags(self):
        seen = {}

        class Probe(Function):
            @staticmethod
            def forward(ctx: Context, a, b):
                seen["flags"] = ctx.needs_input_grad
                return a + b

            @staticmethod
            def backward(ctx: Context, grad):
                return grad, grad

        x = Tensor([1.0], requires_grad=True)
        y = Tensor([1.0])
        Probe.apply(x, y)
        assert seen["flags"] == (True, False)


class TestInferenceFastPath:
    """no_grad dispatch skips the tape entirely but must be
    numerically invisible."""

    def test_dispatch_counter_increments_only_in_no_grad(self):
        from repro.nn.autograd import inference_dispatch_count

        x = Tensor([1.0, 2.0], requires_grad=True)
        before = inference_dispatch_count()
        _ = x * 2  # grad mode: full apply
        assert inference_dispatch_count() == before
        with no_grad():
            _ = x * 2
        assert inference_dispatch_count() == before + 1

    def test_values_match_grad_mode(self, rng=np.random.default_rng(5)):
        from repro.nn import functional as F

        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)) * 0.1)
        b = Tensor(rng.normal(size=(4,)) * 0.1)
        full = F.conv2d(x, w, b, stride=1, padding=1)
        with no_grad():
            fast = F.conv2d(x, w, b, stride=1, padding=1)
        np.testing.assert_array_equal(fast.data, full.data)
        assert fast._grad_fn is None
        assert not fast.requires_grad

    def test_scratch_reuse_does_not_corrupt_sequential_results(self):
        # Same-shape consecutive conv calls share one im2col scratch
        # buffer in no_grad mode; each result must reflect its own
        # input, and grad-mode results must be byte-identical.
        from repro.nn import functional as F

        rng = np.random.default_rng(6)
        w = Tensor(rng.normal(size=(2, 3, 3, 3)) * 0.1)
        xs = [Tensor(rng.normal(size=(2, 3, 6, 6))) for _ in range(3)]
        reference = [F.conv2d(x, w, padding=1).data.copy() for x in xs]
        with no_grad():
            fast = [F.conv2d(x, w, padding=1).data for x in xs]
        for got, want in zip(fast, reference):
            np.testing.assert_array_equal(got, want)

    def test_kwargs_and_non_tensor_args_unwrap(self):
        class Scale(Function):
            @staticmethod
            def forward(ctx: Context, a, factor):
                return a * factor

            @staticmethod
            def backward(ctx: Context, grad):
                return (grad,)

        with no_grad():
            out = Scale.apply(Tensor([2.0]), factor=3.0)
        np.testing.assert_allclose(out.data, [6.0])

    def test_saves_in_fast_path_are_discarded(self):
        # Functions save for backward unconditionally; the shared
        # inference context must swallow those saves without growing.
        class Saver(Function):
            @staticmethod
            def forward(ctx: Context, a):
                ctx.save(a, a * 2)
                return a

            @staticmethod
            def backward(ctx: Context, grad):
                return (grad,)

        from repro.nn.autograd import _INFERENCE_CTX

        with no_grad():
            for _ in range(4):
                Saver.apply(Tensor([1.0]))
        assert _INFERENCE_CTX.saved == ()
