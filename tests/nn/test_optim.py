"""Optimizer semantics: SGD momentum/weight decay/nesterov, Adam."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def make_param(value=1.0):
    p = Tensor(np.asarray([value]), requires_grad=True)
    return p


class TestSGD:
    def test_plain_step(self):
        p = make_param(1.0)
        p.grad = np.asarray([0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_skips_params_without_grad(self):
        p = make_param(1.0)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_weight_decay(self):
        p = make_param(2.0)
        p.grad = np.asarray([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_momentum_accumulates(self):
        p = make_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.asarray([1.0])
        opt.step()  # v = 1, p = -1
        p.grad = np.asarray([1.0])
        opt.step()  # v = 1.9, p = -2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_nesterov_differs_from_plain_momentum(self):
        results = []
        for nesterov in (False, True):
            p = make_param(0.0)
            opt = SGD([p], lr=1.0, momentum=0.9, nesterov=nesterov)
            for _ in range(2):
                p.grad = np.asarray([1.0])
                opt.step()
            results.append(p.data.copy())
        assert not np.allclose(results[0], results[1])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, nesterov=True)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = make_param()
        p.grad = np.asarray([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_converges_on_quadratic(self):
        p = Tensor(np.asarray([5.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step magnitude is ~lr.
        p = make_param(0.0)
        opt = Adam([p], lr=0.01)
        p.grad = np.asarray([3.0])
        opt.step()
        np.testing.assert_allclose(abs(p.data), [0.01], rtol=1e-5)

    def test_converges_on_quadratic(self):
        p = Tensor(np.asarray([5.0]), requires_grad=True)
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay(self):
        p = make_param(1.0)
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        p.grad = np.asarray([0.0])
        opt.step()
        assert p.data[0] < 1.0
