"""Module system: registration, traversal, state dicts, layer semantics."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestRegistration:
    def test_parameters_found(self):
        layer = nn.Linear(3, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_module_names(self):
        net = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        names = [n for n, _ in net.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_no_bias_not_registered(self):
        layer = nn.Linear(3, 2, bias=False)
        assert "bias" not in dict(layer.named_parameters())
        assert layer.bias is None

    def test_reassign_to_none_deregisters(self):
        layer = nn.Linear(3, 2)
        layer.bias = None
        assert "bias" not in dict(layer.named_parameters())

    def test_named_modules_includes_self(self):
        net = nn.Sequential(nn.Linear(2, 2))
        names = [n for n, _ in net.named_modules()]
        assert "" in names and "0" in names

    def test_buffers_traversed(self):
        bn = nn.BatchNorm2d(4)
        buffers = dict(bn.named_buffers())
        assert set(buffers) == {"running_mean", "running_var"}

    def test_num_parameters(self):
        layer = nn.Linear(3, 2)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_children(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        assert len(list(net.children())) == 2


class TestModes:
    def test_train_eval_recursive(self):
        net = nn.Sequential(nn.BatchNorm2d(2))
        net.eval()
        assert not net.training and not net[0].training
        net.train()
        assert net.training and net[0].training

    def test_zero_grad(self, rng):
        layer = nn.Linear(3, 2)
        x = Tensor(rng.normal(size=(2, 3)))
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestStateDict:
    def test_roundtrip(self, rng):
        net = nn.Sequential(nn.Conv2d(3, 4, 3, rng=rng), nn.BatchNorm2d(4))
        state = net.state_dict()
        for p in net.parameters():
            p.data += 1.0
        net.load_state_dict(state)
        np.testing.assert_allclose(
            net[0].weight.data, state["0.weight"]
        )

    def test_snapshot_is_copy(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        layer.weight.data += 5.0
        assert not np.allclose(state["weight"], layer.weight.data)

    def test_buffers_roundtrip(self):
        bn = nn.BatchNorm2d(3)
        bn.running_mean += 2.0
        state = bn.state_dict()
        bn2 = nn.BatchNorm2d(3)
        bn2.load_state_dict(state)
        np.testing.assert_allclose(bn2.running_mean, bn.running_mean)

    def test_unknown_key_raises(self):
        layer = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({"nope": np.zeros(2)})


class TestConv2d:
    def test_forward_shape(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_repr(self):
        assert "Conv2d(3, 8" in repr(nn.Conv2d(3, 8, 3))


class TestBatchNorm2d:
    def test_normalizes_in_training(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5)))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_update(self, rng):
        bn = nn.BatchNorm2d(2, momentum=1.0)  # adopt batch stats fully
        x = Tensor(rng.normal(loc=5.0, size=(16, 2, 4, 4)))
        bn(x)
        np.testing.assert_allclose(bn.running_mean, x.data.mean(axis=(0, 2, 3)),
                                   atol=1e-10)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2, momentum=1.0)
        x = Tensor(rng.normal(size=(16, 2, 4, 4)))
        bn(x)
        bn.eval()
        y = Tensor(rng.normal(size=(4, 2, 4, 4)))
        out = bn(y).data
        mean = bn.running_mean.reshape(1, 2, 1, 1)
        std = np.sqrt(bn.running_var.reshape(1, 2, 1, 1) + bn.eps)
        np.testing.assert_allclose(out, (y.data - mean) / std, atol=1e-10)

    def test_affine_params_learn(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)))
        bn(x).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None


class TestContainers:
    def test_sequential_order(self, rng):
        net = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        out = net(Tensor(rng.normal(size=(5, 3))))
        assert out.shape == (5, 2)

    def test_sequential_getitem_and_iter(self):
        net = nn.Sequential(nn.ReLU(), nn.Identity())
        assert isinstance(net[1], nn.Identity)
        assert len(list(iter(net))) == 2

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert (nn.Identity()(x).data == x.data).all()

    def test_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert nn.Flatten()(x).shape == (2, 12)

    def test_pool_modules(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 3, 3)
        assert nn.AvgPool2d(3)(x).shape == (1, 2, 2, 2)
        assert nn.GlobalAvgPool2d()(x).shape == (1, 2)
