"""Numerical-gradient verification of BatchNorm2d (full backward path).

BatchNorm's backward flows through the batch mean *and* variance, which
is easy to get subtly wrong; these tests verify it against central
differences for inputs, gamma and beta.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor

from .test_tensor import numerical_grad


@pytest.fixture()
def bn_setup(rng):
    bn = nn.BatchNorm2d(3)
    bn.weight.data[...] = rng.normal(size=3) + 1.0
    bn.bias.data[...] = rng.normal(size=3)
    x = Tensor(rng.normal(loc=1.0, scale=2.0, size=(4, 3, 5, 5)),
               requires_grad=True)
    return bn, x


class TestBatchNormGradients:
    def test_input_gradient(self, bn_setup):
        bn, x = bn_setup
        running = (bn.running_mean.copy(), bn.running_var.copy())

        def loss():
            # Freeze running-stat side effects for clean differencing.
            bn.running_mean[...] = running[0]
            bn.running_var[...] = running[1]
            return (bn(x) ** 2).sum().item()

        (bn(x) ** 2).sum().backward()
        num = numerical_grad(loss, x.data[:1, :1])
        np.testing.assert_allclose(x.grad[:1, :1], num, atol=1e-5)

    def test_affine_gradients(self, bn_setup):
        bn, x = bn_setup
        running = (bn.running_mean.copy(), bn.running_var.copy())

        def loss():
            bn.running_mean[...] = running[0]
            bn.running_var[...] = running[1]
            return (bn(x) ** 2).sum().item()

        (bn(x) ** 2).sum().backward()
        for p in (bn.weight, bn.bias):
            num = numerical_grad(loss, p.data)
            np.testing.assert_allclose(p.grad, num, atol=1e-5)

    def test_eval_mode_gradient_is_affine(self, bn_setup):
        bn, x = bn_setup
        bn.eval()
        (bn(x)).sum().backward()
        # In eval mode d out / d x = gamma / sqrt(var + eps), constant per
        # channel.
        expected = (
            bn.weight.data / np.sqrt(bn.running_var + bn.eps)
        ).reshape(1, 3, 1, 1)
        np.testing.assert_allclose(
            x.grad, np.broadcast_to(expected, x.shape), atol=1e-10
        )

    def test_zero_variance_channel_stable(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(np.zeros((4, 2, 3, 3)), requires_grad=True)
        out = bn(x)
        out.sum().backward()
        assert np.isfinite(out.data).all()
        assert np.isfinite(x.grad).all()
