"""Property tests for the convolution lowering (im2col / col2im pair)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.functional import _col2im, im2col
from repro.nn.tensor import Tensor


@st.composite
def conv_configs(draw):
    n = draw(st.integers(1, 2))
    c = draw(st.integers(1, 3))
    k = draw(st.integers(1, 3))
    stride = draw(st.integers(1, 2))
    padding = draw(st.integers(0, 2))
    # Ensure the padded input fits at least one window.
    min_hw = max(k - 2 * padding, 1)
    h = draw(st.integers(min_hw, min_hw + 4))
    w = draw(st.integers(min_hw, min_hw + 4))
    if h + 2 * padding < k or w + 2 * padding < k:
        h = w = k
    return n, c, h, w, k, stride, padding


class TestIm2colAdjointness:
    @given(conv_configs())
    @settings(max_examples=40, deadline=None)
    def test_col2im_is_adjoint_of_im2col(self, config):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint
        property that makes the conv backward correct."""
        n, c, h, w, k, stride, padding = config
        rng = np.random.default_rng(0)
        x = rng.normal(size=(n, c, h, w))
        cols, out_size = im2col(x, (k, k), (stride, stride),
                                (padding, padding))
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = _col2im(y, x.shape, (k, k), (stride, stride),
                       (padding, padding), out_size)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-10)

    @given(conv_configs())
    @settings(max_examples=40, deadline=None)
    def test_output_shape_formula(self, config):
        n, c, h, w, k, stride, padding = config
        x = np.zeros((n, c, h, w))
        _, (oh, ow) = im2col(x, (k, k), (stride, stride), (padding, padding))
        assert oh == F.conv_output_size(h, k, stride, padding)
        assert ow == F.conv_output_size(w, k, stride, padding)


class TestConvLinearity:
    @given(st.floats(-3, 3), st.floats(-3, 3))
    @settings(max_examples=20, deadline=None)
    def test_conv_is_linear_in_input(self, a, b):
        rng = np.random.default_rng(1)
        x1 = rng.normal(size=(1, 2, 5, 5))
        x2 = rng.normal(size=(1, 2, 5, 5))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        combo = F.conv2d(Tensor(a * x1 + b * x2), w, padding=1).data
        parts = (
            a * F.conv2d(Tensor(x1), w, padding=1).data
            + b * F.conv2d(Tensor(x2), w, padding=1).data
        )
        np.testing.assert_allclose(combo, parts, atol=1e-9)

    def test_identity_kernel(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 1, 6, 6))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0  # delta kernel
        out = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_translation_equivariance(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 1, 8, 8))
        w = Tensor(rng.normal(size=(1, 1, 3, 3)))
        out = F.conv2d(Tensor(x), w).data
        shifted = F.conv2d(Tensor(np.roll(x, 1, axis=3)), w).data
        # Interior columns match under the same shift.
        np.testing.assert_allclose(shifted[..., 2:], out[..., 1:-1],
                                   atol=1e-12)
